"""Transimpedance amplifier (current-to-voltage front-end).

The first stage of every amperometric readout: the working-electrode current
flows through a feedback resistor, producing ``V = R_f * I``.  The model
includes single-pole bandwidth limiting, input-referred noise, input offset
current and rail saturation — the non-idealities that shape what the ADC
actually sees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.instrument.noise import NoiseModel, thermal_current_noise_density


@dataclass(frozen=True)
class TransimpedanceAmplifier:
    """Single-pole transimpedance amplifier.

    Attributes:
        gain_v_per_a: transimpedance gain (feedback resistance) [V/A].
        bandwidth_hz: -3 dB bandwidth of the closed loop [Hz].
        rail_v: output saturation (symmetric, +-rail) [V].
        input_noise: input-referred current-noise model; defaults to the
            Johnson noise of the feedback resistor with a 1 Hz 1/f corner.
        offset_current_a: input offset (bias) current [A].
    """

    gain_v_per_a: float
    bandwidth_hz: float = 1000.0
    rail_v: float = 2.5
    input_noise: NoiseModel | None = field(default=None)
    offset_current_a: float = 0.0

    def __post_init__(self) -> None:
        if self.gain_v_per_a <= 0:
            raise ValueError(f"gain must be > 0, got {self.gain_v_per_a}")
        if self.bandwidth_hz <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth_hz}")
        if self.rail_v <= 0:
            raise ValueError(f"rail must be > 0, got {self.rail_v}")

    @property
    def noise(self) -> NoiseModel:
        """Effective input-referred noise model."""
        if self.input_noise is not None:
            return self.input_noise
        return NoiseModel(
            white_density_a_rthz=thermal_current_noise_density(self.gain_v_per_a),
            flicker_corner_hz=1.0,
        )

    @property
    def full_scale_current_a(self) -> float:
        """Largest current [A] representable before rail saturation."""
        return self.rail_v / self.gain_v_per_a

    def amplify(self,
                current_a: np.ndarray,
                sampling_rate_hz: float,
                rng: "np.random.Generator | list[np.random.Generator] | None" = None,
                add_noise: bool = True) -> np.ndarray:
        """Convert a current trace to the output voltage trace [V].

        Applies (in order): offset addition, input-referred noise, the
        single-pole low-pass response, and rail clipping.

        Accepts a 1-D trace or a ``(n_cells, n_samples)`` batch; batches
        are processed vectorized along the last axis.  For a batch, ``rng``
        may be a sequence of per-row generators (deterministic per-cell
        noise) or a single generator shared across rows.
        """
        current_a = np.asarray(current_a, dtype=float)
        if current_a.ndim not in (1, 2):
            raise ValueError(
                "current trace must be 1-D or (n_cells, n_samples)")
        if sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")
        signal = current_a + self.offset_current_a
        if add_noise:
            if signal.ndim == 1:
                if not (rng is None or isinstance(rng, np.random.Generator)):
                    raise ValueError(
                        "per-row generator sequences require a 2-D batch")
                signal = signal + self.noise.sample(
                    signal.size, sampling_rate_hz, rng)
            else:
                signal = signal + self.noise.sample_batch(
                    signal.shape[0], signal.shape[1], sampling_rate_hz, rng)
        filtered = self._single_pole(signal, sampling_rate_hz)
        voltage = self.gain_v_per_a * filtered
        return np.clip(voltage, -self.rail_v, self.rail_v)

    def _single_pole(self, x: np.ndarray, sampling_rate_hz: float) -> np.ndarray:
        """Causal single-pole low-pass at the amplifier bandwidth.

        Filters along the last axis, so 1-D traces and 2-D batches share
        one code path (and one set of filter coefficients).
        """
        from scipy.signal import lfilter

        alpha = 1.0 - math.exp(-2.0 * math.pi * self.bandwidth_hz
                               / sampling_rate_hz)
        if alpha >= 1.0:
            return x.copy()
        b = [alpha]
        a = [1.0, -(1.0 - alpha)]
        # Start the filter settled at the first sample to avoid a synthetic
        # turn-on transient.
        zi = (1.0 - alpha) * x[..., :1]
        y, __ = lfilter(b, a, x, axis=-1, zi=zi)
        return y

    def input_referred_rms(self, f_low_hz: float = 0.01,
                           f_high_hz: float | None = None) -> float:
        """Input-referred noise RMS [A] over the measurement band."""
        high = self.bandwidth_hz if f_high_hz is None else f_high_hz
        return self.noise.rms(f_low_hz, high)

    def saturates(self, current_a: float) -> bool:
        """True when ``current_a`` would hit the output rails."""
        return abs(current_a) > self.full_scale_current_a
