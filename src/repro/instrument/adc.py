"""Successive-approximation ADC model.

The paper notes that biosensor signals are analog, "so the integration of
analog-to-digital converters is required as well" (section 2.5).  The SAR
model quantizes the front-end voltage with configurable resolution,
bipolar range and sampling rate, including clipping and optional sample
decimation from a faster analog simulation grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SarAdc:
    """Bipolar successive-approximation ADC.

    Attributes:
        n_bits: resolution (8-24 bits realistic for biosensor readouts).
        v_ref: reference voltage; input range is [-v_ref, +v_ref).
        sampling_rate_hz: conversion rate [Hz].
    """

    n_bits: int = 16
    v_ref: float = 2.5
    sampling_rate_hz: float = 10.0

    def __post_init__(self) -> None:
        if not 4 <= self.n_bits <= 32:
            raise ValueError(f"n_bits must be in [4, 32], got {self.n_bits}")
        if self.v_ref <= 0:
            raise ValueError(f"v_ref must be > 0, got {self.v_ref}")
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")

    @property
    def n_codes(self) -> int:
        """Number of quantization levels."""
        return 1 << self.n_bits

    @property
    def lsb_v(self) -> float:
        """Least-significant-bit size [V]."""
        return 2.0 * self.v_ref / self.n_codes

    @property
    def quantization_noise_rms_v(self) -> float:
        """Quantization noise RMS [V]: LSB/sqrt(12)."""
        return self.lsb_v / np.sqrt(12.0)

    def quantize(self, voltage: np.ndarray | float) -> np.ndarray:
        """Convert voltages to signed integer codes (mid-tread, clipped)."""
        volts = np.atleast_1d(np.asarray(voltage, dtype=float))
        codes = np.round(volts / self.lsb_v).astype(np.int64)
        half = self.n_codes // 2
        return np.clip(codes, -half, half - 1)

    def to_voltage(self, codes: np.ndarray) -> np.ndarray:
        """Convert integer codes back to their reconstruction voltages [V]."""
        return np.asarray(codes, dtype=float) * self.lsb_v

    def convert(self, voltage: np.ndarray | float) -> np.ndarray:
        """Quantize and immediately reconstruct (the ADC transfer function)."""
        return self.to_voltage(self.quantize(voltage))

    def sample_trace(self,
                     voltage: np.ndarray,
                     input_rate_hz: float) -> tuple[np.ndarray, np.ndarray]:
        """Decimate an analog-rate trace to the ADC rate and convert it.

        Returns ``(sample_times_s, reconstructed_volts)``.  The input rate
        must be an integer multiple of the ADC rate (the simulators arrange
        this); a rate mismatch raises rather than silently resampling.

        Accepts a 1-D trace or a ``(n_cells, n_samples)`` batch; batches
        decimate and convert along the last axis and share one time grid.
        """
        voltage = np.asarray(voltage, dtype=float)
        if voltage.ndim not in (1, 2):
            raise ValueError(
                "voltage trace must be 1-D or (n_cells, n_samples)")
        if input_rate_hz <= 0:
            raise ValueError("input rate must be > 0")
        ratio = input_rate_hz / self.sampling_rate_hz
        decimation = int(round(ratio))
        if decimation < 1 or abs(ratio - decimation) > 1e-9:
            raise ValueError(
                f"input rate {input_rate_hz} Hz is not an integer multiple of "
                f"the ADC rate {self.sampling_rate_hz} Hz")
        sampled = voltage[..., ::decimation]
        times = np.arange(sampled.shape[-1]) * decimation / input_rate_hz
        return times, self.convert(sampled)

    def effective_number_of_bits(self, signal_rms_v: float,
                                 noise_rms_v: float) -> float:
        """ENOB given the in-band noise accompanying a full-swing signal.

        ``ENOB = (SINAD - 1.76) / 6.02`` with SINAD in dB.
        """
        if signal_rms_v <= 0 or noise_rms_v <= 0:
            raise ValueError("signal and noise RMS must be > 0")
        total_noise = np.hypot(noise_rms_v, self.quantization_noise_rms_v)
        sinad_db = 20.0 * np.log10(signal_rms_v / total_noise)
        return (sinad_db - 1.76) / 6.02
