"""The declarative campaign spec: one scenario, fanned into N shards.

A :class:`CampaignSpec` scales a single base :class:`~repro.scenarios.Scenario`
to population size: the campaign's root ``seed`` is spawned into one
independent, position-stable ``SeedSequence``-derived seed per shard
(the same collision-resistant derivation the engines use per
cell/channel/patient), and every shard is the base scenario with that
seed — a fully resolved, replayable :class:`~repro.scenarios.Scenario`
of its own.  Position stability is the load-bearing property: shard
``i``'s seed depends only on ``(seed, i)``, never on ``n_shards``, the
execution order, or the worker count, which is what makes a resumed
campaign bit-identical to an uninterrupted one (gated in
``tests/campaigns/test_resume.py`` and property-tested in
``tests/campaigns/test_spec.py``).

Like :class:`~repro.scenarios.Scenario`, the on-disk form is strict,
schema-versioned JSON::

    {
      "schema_version": 1,
      "name": "glucose-fleet",
      "seed": 2012,
      "n_shards": 1000,
      "base": {"schema_version": 1, "workload": "monitor", ...}
    }

``python -m repro campaign run campaign.json`` executes such a file;
:meth:`CampaignSpec.save` / :meth:`CampaignSpec.load` round-trip it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping

from repro.scenarios.runner import spawn_scenario_seeds
from repro.scenarios.spec import Scenario

#: Version stamp written into every serialized campaign.  Bump when the
#: envelope changes shape; ``from_dict`` rejects versions it does not
#: understand instead of misreading them.
SCHEMA_VERSION = 1

#: Keys a serialized campaign envelope may carry.
_ENVELOPE_KEYS = frozenset(
    {"schema_version", "name", "description", "seed", "n_shards", "base",
     "max_retries"})


@dataclass(frozen=True)
class CampaignSpec:
    """One population-scale campaign: a base scenario times ``n_shards``.

    Attributes:
        name: human identifier of the campaign (shard scenarios are
            named ``{name}/{index:05d}``).
        base: the scenario every shard runs.  It must be *unseeded*
            (``base.seed is None``): per-shard seeds are derived from
            the campaign ``seed``, and an explicit base seed would
            silently make every shard identical.
        n_shards: number of virtual-patient shards to expand into.
        seed: root seed of the per-shard seed streams.  Required — a
            campaign exists to be resumed and replayed, so an entropy
            root would defeat its purpose.
        description: free-text note carried through serialization.
        max_retries: times a failed shard is re-queued (with jittered
            exponential backoff) before the campaign gives up on it;
            0 — the default — fails fast.  Retries only re-run shards
            whose execution *raised*; a shard's result is seed-
            deterministic, so retrying is only useful against
            environmental failures (OOM kills, transient I/O).
    """

    name: str
    base: Scenario
    n_shards: int
    seed: int
    description: str = ""
    max_retries: int = 0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("name must be a non-empty string")
        if not isinstance(self.base, Scenario):
            raise ValueError(
                f"base must be a Scenario, got {type(self.base).__name__}")
        if self.base.seed is not None:
            raise ValueError(
                "base scenario must be unseeded (seed=None): the "
                "campaign seed derives one independent seed per shard, "
                "and an explicit base seed would make every shard "
                "identical")
        if isinstance(self.n_shards, bool) or not isinstance(
                self.n_shards, int) or self.n_shards < 1:
            raise ValueError(
                f"n_shards must be an int >= 1, got {self.n_shards!r}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int) \
                or self.seed < 0:
            raise ValueError(
                f"seed must be an int >= 0, got {self.seed!r}")
        if isinstance(self.max_retries, bool) or not isinstance(
                self.max_retries, int) or self.max_retries < 0:
            raise ValueError(
                f"max_retries must be an int >= 0, "
                f"got {self.max_retries!r}")

    def shard_seeds(self) -> tuple[int, ...]:
        """The per-shard seeds, spawned position-stable from ``seed``.

        ``shard_seeds()[i]`` depends only on ``(self.seed, i)`` — the
        same value regardless of ``n_shards``, shard execution order or
        worker count (property-tested in
        ``tests/campaigns/test_spec.py``).
        """
        return tuple(spawn_scenario_seeds(self.seed, self.n_shards))

    def shard(self, index: int) -> Scenario:
        """Shard ``index`` as a fully resolved, replayable scenario.

        The returned scenario carries its derived seed and the name
        ``{campaign}/{index:05d}``; saving its JSON and re-running it
        reproduces the shard's stored result bit for bit.
        """
        if not 0 <= index < self.n_shards:
            raise ValueError(
                f"shard index {index} out of range for "
                f"{self.n_shards} shards")
        # SeedSequence children are keyed by spawn position, so the
        # prefix spawn reproduces exactly shard_seeds()[index].
        seed = spawn_scenario_seeds(self.seed, index + 1)[index]
        return replace(self.base, name=f"{self.name}/{index:05d}",
                       seed=seed)

    def shards(self) -> tuple[Scenario, ...]:
        """All shards, in index order (``shard(0) .. shard(n-1)``)."""
        seeds = self.shard_seeds()
        return tuple(
            replace(self.base, name=f"{self.name}/{index:05d}",
                    seed=seed)
            for index, seed in enumerate(seeds))

    def spec_hash(self) -> str:
        """SHA-256 over the canonical JSON form (hex digest).

        Stored in the campaign manifest so ``resume`` can refuse a
        store whose spec does not match the one that created it.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"), allow_nan=False)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def to_dict(self) -> dict:
        """Serialize to a plain, schema-versioned dict."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "n_shards": self.n_shards,
            "max_retries": self.max_retries,
            "base": self.base.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_dict` output.

        Strict like :meth:`Scenario.from_dict`: unknown envelope keys,
        a missing or unsupported ``schema_version``, or missing
        required fields raise ``ValueError``.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"campaign must be a mapping, got {type(data).__name__}")
        unknown = set(data) - _ENVELOPE_KEYS
        if unknown:
            raise ValueError(
                f"unknown campaign keys {sorted(unknown)}; "
                f"allowed: {sorted(_ENVELOPE_KEYS)}")
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported campaign schema_version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})")
        missing = {"name", "seed", "n_shards", "base"} - set(data)
        if missing:
            raise ValueError(f"campaign is missing {sorted(missing)}")
        return cls(
            name=data["name"],
            base=Scenario.from_dict(data["base"]),
            n_shards=data["n_shards"],
            seed=data["seed"],
            description=data.get("description", ""),
            max_retries=data.get("max_retries", 0),
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True, allow_nan=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: "str | Path") -> Path:
        """Write the campaign as a JSON file and return the path."""
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def load(cls, path: "str | Path") -> "CampaignSpec":
        """Read a campaign JSON file written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())
