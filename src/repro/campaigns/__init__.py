"""Population-scale campaigns: sharded, resumable, SQLite-backed.

The scenario layer (:mod:`repro.scenarios`) made one engine run a
declarative, replayable JSON artifact.  This package scales that
artifact to populations:

* :class:`CampaignSpec` — a schema-versioned spec that fans one base
  scenario into ``n_shards`` virtual-patient shards, each with an
  independent, *position-stable* ``SeedSequence``-derived seed (shard
  ``i``'s seed never depends on shard order, worker count or
  ``n_shards``);
* :class:`ArtifactStore` — the on-disk SQLite store (WAL mode, schema
  versioned like :class:`~repro.scenarios.Scenario`) holding the
  campaign manifest plus one streamed ``summary_row()`` result row per
  shard;
* :func:`run_campaign` / :func:`resume_campaign` — the shard runner:
  ``ProcessPoolExecutor`` fan-out (``workers > 1``) or the identical
  in-process loop (``workers=1``), with every worker writing its own
  rows so results hit disk as they finish;
* the ``python -m repro campaign {run,status,resume,export,report}``
  command line (:mod:`repro.campaigns.cli`);
* shard-lifecycle telemetry — the runner records every
  ``queued -> running -> done/failed`` transition (worker pid,
  duration) into the store's schema-versioned ``telemetry`` table, and
  :mod:`repro.campaigns.report` renders straggler percentiles, worker
  utilization, the merged slowest-span breakdown and a
  Perfetto-loadable shard timeline from it.  Telemetry is wall-clock
  and never part of the deterministic export.

The design center is **crash-safe resumability**: a campaign killed at
any instant — ``SIGKILL`` mid-shard included — reopens from its store,
skips ``done`` shards, re-runs ``pending``/``running`` ones, and
produces a byte-identical export to an uninterrupted run (gated in
``tests/campaigns/test_resume.py`` and ``benchmarks/bench_campaign.py``).
Any registered workload shards this way — all four engine workloads
work out of the box, and a fifth inherits campaigns for free.

Quickstart::

    from repro.campaigns import CampaignSpec, run_campaign
    from repro.scenarios import Scenario

    spec = CampaignSpec(
        name="glucose-fleet", seed=2012, n_shards=1000,
        base=Scenario(
            workload="monitor", name="wear-week",
            spec={"cohort": {"sensor": "glucose/this-work",
                             "analyte": "glucose", "n_patients": 8},
                  "duration_h": 168.0, "keep_traces": False}))
    report = run_campaign(spec, "fleet.sqlite", workers=4)
    print(report.summary())
"""

from repro.campaigns.report import (
    ShardTiming,
    duration_stats,
    perfetto_trace,
    render_report,
    shard_timings,
    span_breakdown,
    worker_utilization,
    write_report_perfetto,
)
from repro.campaigns.runner import (
    CampaignReport,
    execute_shard,
    resume_campaign,
    run_campaign,
)
from repro.campaigns.spec import SCHEMA_VERSION, CampaignSpec
from repro.campaigns.store import (
    ArtifactStore,
    SHARD_STATUSES,
    STORE_SCHEMA_VERSION,
    TELEMETRY_EVENTS,
    TELEMETRY_SCHEMA_VERSION,
)

__all__ = [
    "ArtifactStore",
    "CampaignReport",
    "CampaignSpec",
    "SCHEMA_VERSION",
    "SHARD_STATUSES",
    "STORE_SCHEMA_VERSION",
    "ShardTiming",
    "TELEMETRY_EVENTS",
    "TELEMETRY_SCHEMA_VERSION",
    "duration_stats",
    "execute_shard",
    "perfetto_trace",
    "render_report",
    "resume_campaign",
    "run_campaign",
    "shard_timings",
    "span_breakdown",
    "worker_utilization",
    "write_report_perfetto",
]
