"""The sharded campaign runner: fan out, stream to disk, resume.

:func:`run_campaign` expands a :class:`~repro.campaigns.CampaignSpec`
into an :class:`~repro.campaigns.ArtifactStore` and drives every
``pending`` shard to ``done``/``failed``; :func:`resume_campaign`
reopens a store — typically one whose run was killed — requeues the
shards the dead run never finished and drives the rest.  Both return a
:class:`CampaignReport`.

The execution unit is :func:`execute_shard`: open the store, mark the
shard ``running``, run its resolved scenario through the registered
workload (:func:`repro.scenarios.run_scenario` — so all four engine
workloads, and any later-registered one, shard identically), record
its ``summary_row()``.  Crucially the *worker writes its own row*:
results stream to disk as they finish, so a ``SIGKILL`` at any instant
loses at most the shards that were mid-flight — and those are exactly
the rows ``resume`` finds as ``running``/``pending`` and re-runs.
Because every shard scenario carries an explicit position-stable seed,
re-running a shard reproduces the identical result row, which makes a
killed-and-resumed campaign export byte-identical to an uninterrupted
one (the resume guarantee, gated in ``tests/campaigns/test_resume.py``
and ``benchmarks/bench_campaign.py``).

``workers > 1`` fans shards across a ``ProcessPoolExecutor`` (each
worker opens its own SQLite connection; WAL serializes the writes);
``workers=1`` runs the same :func:`execute_shard` loop in-process — one
code path, one crash model.
"""

from __future__ import annotations

import logging
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path

from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ArtifactStore

#: Environment knob: artificial per-shard delay in seconds.  Exists for
#: crash drills — the kill/resume tests and the CI campaign smoke use
#: it to guarantee the SIGKILL lands mid-campaign — and is harmless
#: (default 0) in production runs.
THROTTLE_ENV = "REPRO_CAMPAIGN_THROTTLE_S"

#: Environment knob: base delay [s] of the shard-retry exponential
#: backoff (round ``r`` waits ``base * 2**(r-1)`` +- 50 % jitter).
#: Tests set it to 0 so retry rounds run immediately.
RETRY_BASE_ENV = "REPRO_CAMPAIGN_RETRY_BASE_S"

#: Default retry-backoff base delay [s] when the env knob is unset.
DEFAULT_RETRY_BASE_S = 0.5

#: Worker-path logger under the single ``repro`` root (wired to the
#: console by the CLI's ``--log-level`` / ``-v`` flags) — never bare
#: prints, so library embedders keep control of the output stream.
_LOG = logging.getLogger("repro.campaigns.runner")


@dataclass(frozen=True)
class CampaignReport:
    """Outcome of one :func:`run_campaign` / :func:`resume_campaign` call.

    Attributes:
        name: campaign name (from the spec in the store manifest).
        store_path: the SQLite artifact store the run wrote to.
        workers: worker processes used (1 means in-process).
        n_shards: total shards in the campaign.
        n_executed: shards this call actually ran (a resume of an
            almost-finished campaign executes only the remainder).
        counts: final per-status shard counts
            (``pending``/``running``/``done``/``failed``).
        elapsed_s: wall-clock duration of this call.
    """

    name: str
    store_path: Path
    workers: int
    n_shards: int
    n_executed: int
    counts: dict[str, int]
    elapsed_s: float

    @property
    def throughput_shards_per_s(self) -> float:
        """Executed shards per wall-clock second of this call."""
        if self.elapsed_s <= 0.0:
            return float("inf")
        return self.n_executed / self.elapsed_s

    def summary(self) -> str:
        """One human-readable block: progress, throughput, store path."""
        return (
            f"campaign {self.name!r}: ran {self.n_executed} of "
            f"{self.n_shards} shards on {self.workers} worker(s) in "
            f"{self.elapsed_s:.2f} s "
            f"({self.throughput_shards_per_s:.1f} shards/s)\n"
            f"  done {self.counts['done']}, "
            f"failed {self.counts['failed']}, "
            f"pending {self.counts['pending']}\n"
            f"  store -> {self.store_path}")


def _run_shard_scenario(scenario):
    """Run one shard's scenario, capturing telemetry when enabled.

    With the process recorder and metrics registry both disabled this
    is exactly ``run_scenario(scenario)``.  With the recorder enabled,
    the shard runs under its own private
    :class:`~repro.telemetry.InMemoryRecorder` (so spans from
    concurrent shards in one process never mix), whose events are
    replayed into the process recorder afterwards — the JSONL trace
    named by ``REPRO_TELEMETRY_TRACE`` still sees everything.  With
    metrics enabled (``REPRO_METRICS=1``), the shard likewise runs
    under a private :class:`~repro.telemetry.MetricsRegistry`, whose
    snapshot is merged back into the process registry and returned for
    persistence in the store's telemetry table.

    Returns:
        ``(result, span_payload, metrics_snapshot)`` —
        ``span_payload`` is the shard's span summary + counters dict,
        ``metrics_snapshot`` the shard's registry snapshot (each None
        when its layer is disabled).
    """
    from repro.scenarios.runner import run_scenario
    from repro.telemetry import (
        InMemoryRecorder,
        MetricsRegistry,
        get_metrics_registry,
        get_recorder,
        set_metrics_registry,
        set_recorder,
    )

    parent = get_recorder()
    parent_registry = get_metrics_registry()
    if not parent.enabled and not parent_registry.enabled:
        return run_scenario(scenario), None, None
    shard_recorder = InMemoryRecorder() if parent.enabled else None
    shard_registry = (MetricsRegistry()
                      if parent_registry.enabled else None)
    if shard_recorder is not None:
        set_recorder(shard_recorder)
    if shard_registry is not None:
        set_metrics_registry(shard_registry)
    try:
        result = run_scenario(scenario)
    finally:
        if shard_recorder is not None:
            set_recorder(parent)
            for record in shard_recorder.spans:
                parent.record_span(record)
            for name, value in shard_recorder.counters.items():
                parent.count(name, value)
        if shard_registry is not None:
            set_metrics_registry(parent_registry)
            parent_registry.merge_snapshot(shard_registry.snapshot())
    span_payload = metrics_snapshot = None
    if shard_recorder is not None:
        span_payload = {"summary": shard_recorder.summary(),
                        "counters": shard_recorder.counters}
    if shard_registry is not None:
        metrics_snapshot = shard_registry.snapshot()
    return result, span_payload, metrics_snapshot


def execute_shard(store_path: "str | Path",
                  shard_index: int) -> tuple[int, str]:
    """Run one shard against the store at ``store_path``.

    The worker entry point, also used verbatim by the in-process path:
    marks the shard ``running``, runs its stored scenario, records the
    ``summary_row()`` (or the failure).  Opens its own store connection
    and holds write transactions only for the status flips, never
    across the engine run.  Every lifecycle transition also lands in
    the store's telemetry table (``running`` / ``done`` / ``failed``
    with the worker's pid and the shard duration), which is what
    ``python -m repro campaign {status,report}`` read back.

    Returns:
        ``(shard_index, final_status)`` with status ``"done"`` or
        ``"failed"`` — scenario failures are recorded as data, not
        raised, so one bad shard cannot take down a million-shard
        campaign.

    Every shard runs under its own freshly minted trace id
    (:func:`repro.telemetry.trace_context`): the id rides on the
    shard's spans and metric exemplars and is stamped into the
    ``done`` / ``failed`` / ``metrics`` telemetry payloads, so a slow
    or failing shard in ``campaign report`` can be chased into the
    Perfetto timeline.  ``failed`` payloads additionally carry the
    exception's ``error_class`` — the grouping key of the report's
    per-error-class retry-budget table.
    """
    from repro.telemetry import new_trace_id, trace_context

    worker = f"pid:{os.getpid()}"
    trace_id = new_trace_id()
    with ArtifactStore.open(store_path) as store:
        scenario = store.shard_scenario(shard_index)
        store.mark_running(shard_index)
        store.record_event("running", shard_index, worker=worker,
                           payload={"trace_id": trace_id})
    _LOG.info("shard %d running on %s", shard_index, worker)
    throttle = float(os.environ.get(THROTTLE_ENV, "0") or "0")
    if throttle > 0.0:
        time.sleep(throttle)
    start = time.perf_counter()
    try:
        with trace_context(trace_id):
            result, span_payload, metrics_snapshot = \
                _run_shard_scenario(scenario)
            row = result.summary_row()
    except Exception as error:  # one shard's failure is campaign data
        elapsed = time.perf_counter() - start
        message = f"{type(error).__name__}: {error}"
        _LOG.warning("shard %d failed after %.2f s: %s",
                     shard_index, elapsed, message)
        with ArtifactStore.open(store_path) as store:
            store.record_failure(shard_index, message)
            store.record_event(
                "failed", shard_index, worker=worker,
                duration_s=elapsed,
                payload={"error_class": type(error).__name__,
                         "trace_id": trace_id})
        return shard_index, "failed"
    elapsed = time.perf_counter() - start
    _LOG.info("shard %d done in %.2f s", shard_index, elapsed)
    with ArtifactStore.open(store_path) as store:
        store.record_result(shard_index, row, elapsed_s=elapsed)
        store.record_event("done", shard_index, worker=worker,
                           duration_s=elapsed,
                           payload={"trace_id": trace_id})
        if span_payload is not None:
            store.record_event("spans", shard_index, worker=worker,
                               payload=span_payload)
        if metrics_snapshot is not None:
            store.record_event(
                "metrics", shard_index, worker=worker,
                payload={"trace_id": trace_id,
                         "snapshot": metrics_snapshot})
    return shard_index, "done"


def _dispatch(store_path: Path, indices: "tuple[int, ...]",
              workers: int) -> None:
    """Fan one batch of shard indices across the workers."""
    if workers == 1 or len(indices) <= 1:
        for index in indices:
            execute_shard(store_path, index)
        return
    # fork (where available) shares the already-imported numpy/scipy
    # stack with the workers instead of re-importing it per process;
    # the parent's store connections are all closed by this point,
    # so no SQLite handle crosses the fork.
    context = (get_context("fork")
               if "fork" in get_all_start_methods() else None)
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=context) as pool:
        futures = [pool.submit(execute_shard, str(store_path), index)
                   for index in indices]
        for future in as_completed(futures):
            future.result()  # surface worker infrastructure errors


def _retry_backoff_s(round_index: int) -> float:
    """Jittered exponential backoff before retry round ``round_index``.

    ``base * 2**(round_index - 1)`` scaled by a uniform factor in
    [0.5, 1.5) — the jitter decorrelates retry storms when several
    campaigns share a host.  The base comes from
    :data:`RETRY_BASE_ENV` (tests set it to 0 for immediate retries).
    """
    base = float(os.environ.get(RETRY_BASE_ENV, "") or
                 DEFAULT_RETRY_BASE_S)
    return base * 2.0 ** (round_index - 1) * random.uniform(0.5, 1.5)


def _drive(store_path: Path, workers: int) -> CampaignReport:
    """Run every pending shard (retrying failures), assemble the report."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    with ArtifactStore.open(store_path) as store:
        indices = store.pending_indices()
        name = store.spec.name
        max_retries = store.spec.max_retries
        n_shards = store.n_shards()
    _LOG.info("campaign %r: driving %d pending of %d shards on %d "
              "worker(s)", name, len(indices), n_shards, workers)
    start = time.perf_counter()
    _dispatch(store_path, indices, workers)
    n_executed = len(indices)
    for round_index in range(1, max_retries + 1):
        with ArtifactStore.open(store_path) as store:
            failed = store.failed_indices()
        if not failed:
            break
        backoff = _retry_backoff_s(round_index)
        _LOG.warning(
            "campaign %r: retry %d/%d re-queues %d failed shard(s) "
            "after %.2f s backoff", name, round_index, max_retries,
            len(failed), backoff)
        if backoff > 0.0:
            time.sleep(backoff)
        with ArtifactStore.open(store_path) as store:
            store.reset_failed(failed, retry=round_index,
                               backoff_s=backoff)
        _dispatch(store_path, failed, workers)
        n_executed += len(failed)
    elapsed = time.perf_counter() - start
    with ArtifactStore.open(store_path) as store:
        counts = store.counts()
    return CampaignReport(
        name=name, store_path=Path(store_path), workers=workers,
        n_shards=n_shards, n_executed=n_executed, counts=counts,
        elapsed_s=elapsed)


def run_campaign(spec: CampaignSpec, store_path: "str | Path",
                 workers: int = 1) -> CampaignReport:
    """Expand a campaign into a new store and run every shard.

    Args:
        spec: the declarative campaign.
        store_path: where to create the SQLite artifact store (must not
            exist yet — an existing store is resumed, never silently
            overwritten).
        workers: worker processes; 1 runs in-process.

    Returns:
        The :class:`CampaignReport` (the store holds the full rows).
    """
    ArtifactStore.create(store_path, spec).close()
    return _drive(Path(store_path), workers)


def resume_campaign(store_path: "str | Path",
                    workers: int = 1) -> CampaignReport:
    """Pick a campaign up from its store after an interrupted run.

    Reopens the manifest, requeues shards the dead run left
    ``running``, runs everything still ``pending``, and skips ``done``
    shards entirely — their rows are already on disk.  Safe to call on
    a finished store (it executes nothing and reports the final
    counts).

    Returns:
        The :class:`CampaignReport` for the resumed portion.
    """
    with ArtifactStore.open(store_path) as store:
        requeued = store.reset_running()
    if requeued:
        _LOG.info("resume: requeued %d interrupted shard(s)", requeued)
    return _drive(Path(store_path), workers)
