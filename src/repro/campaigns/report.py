"""Campaign telemetry reporting: stragglers, workers, slowest spans.

The read side of the artifact store's ``telemetry`` table.  The runner
records shard lifecycle events (``queued -> running -> done/failed``
with worker pid and duration) unconditionally, and span summaries when
the process recorder is enabled; this module turns those rows into

* :func:`shard_timings` — one start/duration/worker record per
  finished shard attempt;
* :func:`duration_stats` — count / p50 / p95 / min / max over the
  shard durations (the straggler view);
* :func:`worker_utilization` — per-worker shard counts, busy seconds
  and utilization over the campaign's wall-clock span;
* :func:`span_breakdown` — the merged slowest-span table across every
  shard that recorded spans;
* :func:`merged_metrics` — every shard's
  :class:`~repro.telemetry.MetricsRegistry` snapshot merged into one
  fleet-wide snapshot (cross-worker latency histograms);
* :func:`retry_budgets` — retry telemetry grouped by exception class:
  failures, retries consumed vs ``max_retries``, recovered shards;
* :func:`report_payload` — all of the above as one JSON-clean dict
  (the ``campaign report --json`` output);
* :func:`render_report` — the text block ``python -m repro campaign
  report`` prints;
* :func:`perfetto_trace` / :func:`write_report_perfetto` — a
  Chrome/Perfetto ``trace_event`` timeline, one track per worker
  process, loadable as-is at https://ui.perfetto.dev.

Everything here reads wall-clock telemetry and is therefore strictly
outside the deterministic export surface: ``campaign export`` never
includes these rows, and two byte-identical exports may carry entirely
different telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.campaigns.store import ArtifactStore
from repro.telemetry.aggregate import percentile
from repro.telemetry.metrics import (
    merge_snapshots,
    snapshot_histogram_rows,
)
from repro.telemetry.perfetto import (
    complete_event,
    process_name_event,
    thread_name_event,
)


@dataclass(frozen=True)
class ShardTiming:
    """One finished shard attempt on the campaign's wall-clock line.

    Attributes:
        shard_index: which shard ran.
        worker: the recording worker's identity (``pid:<n>``).
        started_wall_s: wall-clock start (``time.time`` seconds),
            back-computed as the terminal event's timestamp minus the
            measured duration so start and duration stay consistent.
        duration_s: measured shard duration (monotonic-clock based).
        status: terminal status, ``done`` or ``failed``.
    """

    shard_index: int
    worker: str | None
    started_wall_s: float
    duration_s: float
    status: str


def shard_timings(events: Iterable[Mapping]) -> list[ShardTiming]:
    """Extract one :class:`ShardTiming` per terminal telemetry event.

    Args:
        events: rows from
            :meth:`~repro.campaigns.ArtifactStore.telemetry_events`.

    Shards that were queued or interrupted but never finished have no
    terminal event and simply do not appear — the report reflects work
    actually completed.
    """
    timings = []
    for event in events:
        if event["event"] in ("done", "failed") \
                and event["duration_s"] is not None:
            timings.append(ShardTiming(
                shard_index=event["shard_index"],
                worker=event["worker"],
                started_wall_s=event["wall_s"] - event["duration_s"],
                duration_s=event["duration_s"],
                status=event["event"]))
    return timings


def duration_stats(timings: Iterable[ShardTiming]) -> dict | None:
    """Straggler statistics over finished-shard durations.

    Returns:
        ``{"count", "p50_s", "p95_s", "min_s", "max_s", "total_s"}``,
        or None when no shard has finished yet.
    """
    durations = [timing.duration_s for timing in timings]
    if not durations:
        return None
    return {
        "count": len(durations),
        "p50_s": percentile(durations, 0.50),
        "p95_s": percentile(durations, 0.95),
        "min_s": min(durations),
        "max_s": max(durations),
        "total_s": sum(durations),
    }


def worker_utilization(timings: Iterable[ShardTiming]) -> dict[str, dict]:
    """Per-worker shard counts, busy time, and utilization.

    Utilization is each worker's busy seconds divided by the
    campaign's overall wall-clock span (first shard start to last
    shard end) — on an evenly loaded pool every worker sits near 1.0,
    and a worker that went idle early (straggler imbalance) shows the
    gap directly.

    Returns:
        ``{worker: {"shards", "busy_s", "utilization"}}`` sorted by
        worker name; empty when nothing finished.
    """
    timings = list(timings)
    if not timings:
        return {}
    start = min(timing.started_wall_s for timing in timings)
    end = max(timing.started_wall_s + timing.duration_s
              for timing in timings)
    span = end - start
    table: dict[str, dict] = {}
    for timing in timings:
        worker = timing.worker or "?"
        row = table.setdefault(worker, {"shards": 0, "busy_s": 0.0})
        row["shards"] += 1
        row["busy_s"] += timing.duration_s
    for row in table.values():
        row["utilization"] = (row["busy_s"] / span if span > 0.0
                              else 1.0)
    return dict(sorted(table.items()))


def span_breakdown(events: Iterable[Mapping]) -> dict[str, dict]:
    """Merge every shard's span summary into one slowest-span table.

    Each ``spans`` telemetry event carries one shard's per-span-name
    ``{count, total_s, p50_s, p95_s}``; counts and totals add exactly
    across shards, and ``max_p95_s`` keeps the worst per-shard p95 as
    the tail indicator (per-shard percentiles cannot be merged into an
    exact campaign percentile without the raw durations).

    Returns:
        ``{span_name: {"count", "total_s", "mean_s", "max_p95_s"}}``
        sorted slowest-first by ``total_s``; empty when no shard
        recorded spans (telemetry was off in the workers).
    """
    merged: dict[str, dict] = {}
    for event in events:
        if event["event"] != "spans" or not event["payload"]:
            continue
        for name, stats in event["payload"].get("summary", {}).items():
            row = merged.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_p95_s": 0.0})
            row["count"] += int(stats["count"])
            row["total_s"] += float(stats["total_s"])
            row["max_p95_s"] = max(row["max_p95_s"],
                                   float(stats["p95_s"]))
    for row in merged.values():
        row["mean_s"] = row["total_s"] / row["count"]
    return dict(sorted(merged.items(),
                       key=lambda item: -item[1]["total_s"]))


def merged_metrics(events: Iterable[Mapping]) -> dict | None:
    """Merge every shard's metrics snapshot into one fleet-wide view.

    Each ``metrics`` telemetry event carries one shard's
    :meth:`~repro.telemetry.MetricsRegistry.snapshot`;
    :func:`~repro.telemetry.merge_snapshots` adds them exactly
    (counter values and histogram buckets sum, gauges keep the max),
    so the campaign's ``repro_core_execute_seconds`` histogram is the
    true cross-worker latency distribution, not an average of
    averages.

    Returns:
        The merged snapshot dict, or None when no shard recorded
        metrics (the campaign ran without ``REPRO_METRICS=1``).
    """
    snapshots = [event["payload"]["snapshot"] for event in events
                 if event["event"] == "metrics" and event["payload"]
                 and event["payload"].get("snapshot")]
    if not snapshots:
        return None
    return merge_snapshots(snapshots)


def retry_budgets(events: Iterable[Mapping],
                  max_retries: int) -> dict[str, dict]:
    """Group the retry telemetry by exception class.

    For every ``failed`` event (whose payload carries the raising
    exception's ``error_class`` since telemetry schema v2), counts the
    class's total failures and distinct shards, how many of those
    failures were re-queued by a retry round (a later ``queued`` event
    with a ``retry`` payload on the same shard), the worst per-shard
    retry consumption against the campaign's ``max_retries`` budget,
    and how many of the class's shards ultimately recovered (final
    terminal event ``done``).

    Args:
        events: rows from
            :meth:`~repro.campaigns.ArtifactStore.telemetry_events`.
        max_retries: the campaign's per-shard retry budget
            (:attr:`~repro.campaigns.CampaignSpec.max_retries`).

    Returns:
        ``{error_class: {"failures", "shards", "retries_used",
        "max_retries_used", "max_retries", "recovered_shards"}}``
        sorted by descending failures; empty when nothing failed.
        Pre-v2 ``failed`` events without a payload group under
        ``"unknown"``.
    """
    per_shard: dict[int, list] = {}
    for event in events:
        if event["shard_index"] is not None:
            per_shard.setdefault(event["shard_index"], []).append(event)
    table: dict[str, dict] = {}
    for shard, rows in per_shard.items():
        terminal = [row for row in rows
                    if row["event"] in ("done", "failed")]
        recovered = bool(terminal) and terminal[-1]["event"] == "done"
        shard_classes: dict[str, int] = {}
        for position, event in enumerate(rows):
            if event["event"] != "failed":
                continue
            error_class = ((event["payload"] or {})
                           .get("error_class", "unknown"))
            requeued = any(
                later["event"] == "queued" and later["payload"]
                and "retry" in later["payload"]
                for later in rows[position + 1:])
            row = table.setdefault(error_class, {
                "failures": 0, "shards": set(), "retries_used": 0,
                "max_retries_used": 0, "max_retries": max_retries,
                "recovered_shards": set()})
            row["failures"] += 1
            row["shards"].add(shard)
            if requeued:
                row["retries_used"] += 1
                shard_classes[error_class] = \
                    shard_classes.get(error_class, 0) + 1
            if recovered:
                row["recovered_shards"].add(shard)
        for error_class, used in shard_classes.items():
            table[error_class]["max_retries_used"] = max(
                table[error_class]["max_retries_used"], used)
    result = {}
    for error_class, row in sorted(table.items(),
                                   key=lambda item:
                                   (-item[1]["failures"], item[0])):
        result[error_class] = {
            "failures": row["failures"],
            "shards": len(row["shards"]),
            "retries_used": row["retries_used"],
            "max_retries_used": row["max_retries_used"],
            "max_retries": row["max_retries"],
            "recovered_shards": len(row["recovered_shards"]),
        }
    return result


def report_payload(store: ArtifactStore) -> dict:
    """The full campaign report as one JSON-clean dict.

    The machine-readable mirror of :func:`render_report` — the exact
    payload ``python -m repro campaign report --json`` prints:
    identity (name, workload, store path, spec hash), per-status
    counts, shard-duration statistics, throughput, per-worker
    utilization, the merged span breakdown, per-error-class
    :func:`retry_budgets`, and the fleet-wide :func:`merged_metrics`
    snapshot with its derived histogram quantile rows.
    """
    events = store.telemetry_events()
    timings = shard_timings(events)
    metrics = merged_metrics(events)
    return {
        "campaign": store.spec.name,
        "workload": store.workload,
        "store": str(store.path),
        "spec_hash": store.spec_hash,
        "n_shards": store.n_shards(),
        "counts": store.counts(),
        "duration_stats": duration_stats(timings),
        "completion_rate_per_s": store.completion_rate_per_s(),
        "workers": worker_utilization(timings),
        "spans": span_breakdown(events),
        "retry_budgets": retry_budgets(events,
                                       store.spec.max_retries),
        "metrics": metrics,
        "metric_histograms": (snapshot_histogram_rows(metrics)
                              if metrics is not None else []),
    }


def render_report(store: ArtifactStore) -> str:
    """The full ``campaign report`` text block for one store.

    Status header, per-shard duration percentiles, throughput,
    per-worker utilization, and the merged slowest-span breakdown
    (with a pointer to ``REPRO_TELEMETRY=1`` when no worker recorded
    spans).
    """
    events = store.telemetry_events()
    timings = shard_timings(events)
    lines = [store.status_summary(), ""]
    stats = duration_stats(timings)
    if stats is None:
        lines.append("no finished shards yet — run or resume the "
                     "campaign first")
        return "\n".join(lines)
    lines.append(
        f"shard durations ({stats['count']} finished): "
        f"p50 {stats['p50_s'] * 1e3:.0f} ms, "
        f"p95 {stats['p95_s'] * 1e3:.0f} ms, "
        f"min {stats['min_s'] * 1e3:.0f} ms, "
        f"max {stats['max_s'] * 1e3:.0f} ms")
    rate = store.completion_rate_per_s()
    if rate is not None:
        lines.append(f"throughput: {rate * 60.0:.1f} shards/min")
    workers = worker_utilization(timings)
    lines.append(f"workers ({len(workers)}):")
    for worker, row in workers.items():
        lines.append(
            f"  {worker:<12} {row['shards']:>4} shards  "
            f"{row['busy_s']:>8.2f} s busy  "
            f"{100.0 * row['utilization']:>5.1f} % utilized")
    spans = span_breakdown(events)
    if spans:
        lines.append("slowest spans (all shards):")
        lines.append(f"  {'span':<28} {'count':>7} {'total':>10} "
                     f"{'mean':>10} {'max p95':>10}")
        for name, row in spans.items():
            lines.append(
                f"  {name:<28} {row['count']:>7d} "
                f"{row['total_s'] * 1e3:>8.1f}ms "
                f"{row['mean_s'] * 1e3:>8.2f}ms "
                f"{row['max_p95_s'] * 1e3:>8.2f}ms")
    else:
        lines.append("no span telemetry recorded — run the campaign "
                     "with REPRO_TELEMETRY=1 for a span breakdown")
    budgets = retry_budgets(events, store.spec.max_retries)
    if budgets:
        lines.append(
            f"retry budgets (max_retries={store.spec.max_retries}):")
        lines.append(f"  {'error class':<24} {'failures':>8} "
                     f"{'shards':>6} {'retries':>10} {'recovered':>9}")
        for error_class, row in budgets.items():
            lines.append(
                f"  {error_class:<24} {row['failures']:>8d} "
                f"{row['shards']:>6d} "
                f"{row['max_retries_used']:>6d}/{row['max_retries']:<3d}"
                f" {row['recovered_shards']:>8d}")
    metrics = merged_metrics(events)
    if metrics is not None:
        histograms = snapshot_histogram_rows(metrics)
        if histograms:
            lines.append("fleet-wide latency histograms (all workers):")
            lines.append(f"  {'histogram':<44} {'count':>7} "
                         f"{'p50':>10} {'p95':>10} {'p99':>10}")
            for row in histograms:
                labels = ",".join(f"{key}={value}" for key, value
                                  in sorted(row["labels"].items()))
                label = row["name"] + (f"{{{labels}}}" if labels
                                       else "")
                lines.append(
                    f"  {label:<44} {row['count']:>7d} "
                    f"{row['p50'] * 1e3:>8.2f}ms "
                    f"{row['p95'] * 1e3:>8.2f}ms "
                    f"{row['p99'] * 1e3:>8.2f}ms")
    else:
        lines.append("no metrics snapshots recorded — run the campaign "
                     "with REPRO_METRICS=1 for fleet-wide histograms")
    return "\n".join(lines)


def perfetto_trace(store: ArtifactStore) -> dict:
    """The campaign's shard timeline as a Perfetto ``trace_event`` dict.

    One process (the campaign), one track per worker, one complete
    event per finished shard; failed shards carry ``args.status`` so
    they stand out in the UI.  Timestamps are normalized so the first
    shard starts at 0 — the trace is a relative timeline, not a
    wall-clock artifact.
    """
    events = store.telemetry_events()
    timings = shard_timings(events)
    name = f"campaign {store.spec.name}"
    trace_events = [process_name_event(1, name)]
    workers = sorted({timing.worker or "?" for timing in timings})
    tids = {worker: tid for tid, worker in enumerate(workers, start=1)}
    for worker, tid in tids.items():
        trace_events.append(thread_name_event(1, tid, worker))
    if timings:
        t0 = min(timing.started_wall_s for timing in timings)
        for timing in timings:
            trace_events.append(complete_event(
                f"shard {timing.shard_index}",
                timing.started_wall_s - t0, timing.duration_s,
                pid=1, tid=tids[timing.worker or "?"],
                args={"shard": timing.shard_index,
                      "status": timing.status}))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_report_perfetto(store: ArtifactStore,
                          path: "str | Path") -> Path:
    """Serialize :func:`perfetto_trace` to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(perfetto_trace(store), indent=2, sort_keys=True)
        + "\n", encoding="utf-8")
    return target
