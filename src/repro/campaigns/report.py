"""Campaign telemetry reporting: stragglers, workers, slowest spans.

The read side of the artifact store's ``telemetry`` table.  The runner
records shard lifecycle events (``queued -> running -> done/failed``
with worker pid and duration) unconditionally, and span summaries when
the process recorder is enabled; this module turns those rows into

* :func:`shard_timings` — one start/duration/worker record per
  finished shard attempt;
* :func:`duration_stats` — count / p50 / p95 / min / max over the
  shard durations (the straggler view);
* :func:`worker_utilization` — per-worker shard counts, busy seconds
  and utilization over the campaign's wall-clock span;
* :func:`span_breakdown` — the merged slowest-span table across every
  shard that recorded spans;
* :func:`render_report` — the text block ``python -m repro campaign
  report`` prints;
* :func:`perfetto_trace` / :func:`write_report_perfetto` — a
  Chrome/Perfetto ``trace_event`` timeline, one track per worker
  process, loadable as-is at https://ui.perfetto.dev.

Everything here reads wall-clock telemetry and is therefore strictly
outside the deterministic export surface: ``campaign export`` never
includes these rows, and two byte-identical exports may carry entirely
different telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.campaigns.store import ArtifactStore
from repro.telemetry.aggregate import percentile
from repro.telemetry.perfetto import (
    complete_event,
    process_name_event,
    thread_name_event,
)


@dataclass(frozen=True)
class ShardTiming:
    """One finished shard attempt on the campaign's wall-clock line.

    Attributes:
        shard_index: which shard ran.
        worker: the recording worker's identity (``pid:<n>``).
        started_wall_s: wall-clock start (``time.time`` seconds),
            back-computed as the terminal event's timestamp minus the
            measured duration so start and duration stay consistent.
        duration_s: measured shard duration (monotonic-clock based).
        status: terminal status, ``done`` or ``failed``.
    """

    shard_index: int
    worker: str | None
    started_wall_s: float
    duration_s: float
    status: str


def shard_timings(events: Iterable[Mapping]) -> list[ShardTiming]:
    """Extract one :class:`ShardTiming` per terminal telemetry event.

    Args:
        events: rows from
            :meth:`~repro.campaigns.ArtifactStore.telemetry_events`.

    Shards that were queued or interrupted but never finished have no
    terminal event and simply do not appear — the report reflects work
    actually completed.
    """
    timings = []
    for event in events:
        if event["event"] in ("done", "failed") \
                and event["duration_s"] is not None:
            timings.append(ShardTiming(
                shard_index=event["shard_index"],
                worker=event["worker"],
                started_wall_s=event["wall_s"] - event["duration_s"],
                duration_s=event["duration_s"],
                status=event["event"]))
    return timings


def duration_stats(timings: Iterable[ShardTiming]) -> dict | None:
    """Straggler statistics over finished-shard durations.

    Returns:
        ``{"count", "p50_s", "p95_s", "min_s", "max_s", "total_s"}``,
        or None when no shard has finished yet.
    """
    durations = [timing.duration_s for timing in timings]
    if not durations:
        return None
    return {
        "count": len(durations),
        "p50_s": percentile(durations, 0.50),
        "p95_s": percentile(durations, 0.95),
        "min_s": min(durations),
        "max_s": max(durations),
        "total_s": sum(durations),
    }


def worker_utilization(timings: Iterable[ShardTiming]) -> dict[str, dict]:
    """Per-worker shard counts, busy time, and utilization.

    Utilization is each worker's busy seconds divided by the
    campaign's overall wall-clock span (first shard start to last
    shard end) — on an evenly loaded pool every worker sits near 1.0,
    and a worker that went idle early (straggler imbalance) shows the
    gap directly.

    Returns:
        ``{worker: {"shards", "busy_s", "utilization"}}`` sorted by
        worker name; empty when nothing finished.
    """
    timings = list(timings)
    if not timings:
        return {}
    start = min(timing.started_wall_s for timing in timings)
    end = max(timing.started_wall_s + timing.duration_s
              for timing in timings)
    span = end - start
    table: dict[str, dict] = {}
    for timing in timings:
        worker = timing.worker or "?"
        row = table.setdefault(worker, {"shards": 0, "busy_s": 0.0})
        row["shards"] += 1
        row["busy_s"] += timing.duration_s
    for row in table.values():
        row["utilization"] = (row["busy_s"] / span if span > 0.0
                              else 1.0)
    return dict(sorted(table.items()))


def span_breakdown(events: Iterable[Mapping]) -> dict[str, dict]:
    """Merge every shard's span summary into one slowest-span table.

    Each ``spans`` telemetry event carries one shard's per-span-name
    ``{count, total_s, p50_s, p95_s}``; counts and totals add exactly
    across shards, and ``max_p95_s`` keeps the worst per-shard p95 as
    the tail indicator (per-shard percentiles cannot be merged into an
    exact campaign percentile without the raw durations).

    Returns:
        ``{span_name: {"count", "total_s", "mean_s", "max_p95_s"}}``
        sorted slowest-first by ``total_s``; empty when no shard
        recorded spans (telemetry was off in the workers).
    """
    merged: dict[str, dict] = {}
    for event in events:
        if event["event"] != "spans" or not event["payload"]:
            continue
        for name, stats in event["payload"].get("summary", {}).items():
            row = merged.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_p95_s": 0.0})
            row["count"] += int(stats["count"])
            row["total_s"] += float(stats["total_s"])
            row["max_p95_s"] = max(row["max_p95_s"],
                                   float(stats["p95_s"]))
    for row in merged.values():
        row["mean_s"] = row["total_s"] / row["count"]
    return dict(sorted(merged.items(),
                       key=lambda item: -item[1]["total_s"]))


def render_report(store: ArtifactStore) -> str:
    """The full ``campaign report`` text block for one store.

    Status header, per-shard duration percentiles, throughput,
    per-worker utilization, and the merged slowest-span breakdown
    (with a pointer to ``REPRO_TELEMETRY=1`` when no worker recorded
    spans).
    """
    events = store.telemetry_events()
    timings = shard_timings(events)
    lines = [store.status_summary(), ""]
    stats = duration_stats(timings)
    if stats is None:
        lines.append("no finished shards yet — run or resume the "
                     "campaign first")
        return "\n".join(lines)
    lines.append(
        f"shard durations ({stats['count']} finished): "
        f"p50 {stats['p50_s'] * 1e3:.0f} ms, "
        f"p95 {stats['p95_s'] * 1e3:.0f} ms, "
        f"min {stats['min_s'] * 1e3:.0f} ms, "
        f"max {stats['max_s'] * 1e3:.0f} ms")
    rate = store.completion_rate_per_s()
    if rate is not None:
        lines.append(f"throughput: {rate * 60.0:.1f} shards/min")
    workers = worker_utilization(timings)
    lines.append(f"workers ({len(workers)}):")
    for worker, row in workers.items():
        lines.append(
            f"  {worker:<12} {row['shards']:>4} shards  "
            f"{row['busy_s']:>8.2f} s busy  "
            f"{100.0 * row['utilization']:>5.1f} % utilized")
    spans = span_breakdown(events)
    if spans:
        lines.append("slowest spans (all shards):")
        lines.append(f"  {'span':<28} {'count':>7} {'total':>10} "
                     f"{'mean':>10} {'max p95':>10}")
        for name, row in spans.items():
            lines.append(
                f"  {name:<28} {row['count']:>7d} "
                f"{row['total_s'] * 1e3:>8.1f}ms "
                f"{row['mean_s'] * 1e3:>8.2f}ms "
                f"{row['max_p95_s'] * 1e3:>8.2f}ms")
    else:
        lines.append("no span telemetry recorded — run the campaign "
                     "with REPRO_TELEMETRY=1 for a span breakdown")
    return "\n".join(lines)


def perfetto_trace(store: ArtifactStore) -> dict:
    """The campaign's shard timeline as a Perfetto ``trace_event`` dict.

    One process (the campaign), one track per worker, one complete
    event per finished shard; failed shards carry ``args.status`` so
    they stand out in the UI.  Timestamps are normalized so the first
    shard starts at 0 — the trace is a relative timeline, not a
    wall-clock artifact.
    """
    events = store.telemetry_events()
    timings = shard_timings(events)
    name = f"campaign {store.spec.name}"
    trace_events = [process_name_event(1, name)]
    workers = sorted({timing.worker or "?" for timing in timings})
    tids = {worker: tid for tid, worker in enumerate(workers, start=1)}
    for worker, tid in tids.items():
        trace_events.append(thread_name_event(1, tid, worker))
    if timings:
        t0 = min(timing.started_wall_s for timing in timings)
        for timing in timings:
            trace_events.append(complete_event(
                f"shard {timing.shard_index}",
                timing.started_wall_s - t0, timing.duration_s,
                pid=1, tid=tids[timing.worker or "?"],
                args={"shard": timing.shard_index,
                      "status": timing.status}))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_report_perfetto(store: ArtifactStore,
                          path: "str | Path") -> Path:
    """Serialize :func:`perfetto_trace` to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(perfetto_trace(store), indent=2, sort_keys=True)
        + "\n", encoding="utf-8")
    return target
