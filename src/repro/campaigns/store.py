"""The on-disk campaign artifact store: SQLite manifest + result rows.

One store file is one campaign: a ``meta`` table holding the manifest
(store schema version, the full :class:`~repro.campaigns.CampaignSpec`
JSON, its hash, the engine version) and a ``shards`` table with one row
per shard — the resolved scenario JSON, its seed, a lifecycle
``status`` (``pending -> running -> done | failed``) and, once done,
the shard's ``summary_row()`` result as JSON.

The store is built to survive exactly the failure the campaign runner
is built around — a worker or the whole run being killed mid-shard:

* **WAL journal mode** keeps the file consistent across ``SIGKILL``
  (an interrupted transaction rolls back on the next open) and lets
  concurrent worker processes write result rows while readers poll
  status (exercised in ``tests/campaigns/test_store.py``).
* **Schema versioning**: :meth:`ArtifactStore.open` refuses a store
  written by a different schema with a clear error instead of
  misreading it, mirroring :class:`~repro.scenarios.Scenario`.
* **Deterministic export**: :meth:`ArtifactStore.export_json` contains
  only replay-stable fields (never wall-clock durations), so an
  interrupted-then-resumed campaign exports byte-identically to an
  uninterrupted one — the resume guarantee the tests gate on.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Mapping

from repro.campaigns.spec import CampaignSpec
from repro.scenarios.spec import Scenario

#: Version stamp of the on-disk SQLite layout.  Bump on any table /
#: column change; ``ArtifactStore.open`` rejects mismatches.
#: v2 added the ``telemetry`` event table; v3 widened its event CHECK
#: to admit ``metrics`` rows (per-shard registry snapshots).
STORE_SCHEMA_VERSION = 3

#: Version stamp of the ``telemetry`` table's row layout, tracked
#: separately so telemetry readers (``campaign report``, ``status``)
#: can refuse rows they would misread without invalidating the shard
#: data next to them.  v2 added ``metrics`` events and the
#: ``trace_id`` / ``error_class`` payload keys on lifecycle events.
TELEMETRY_SCHEMA_VERSION = 2

#: Legal shard lifecycle states, in order.
SHARD_STATUSES = ("pending", "running", "done", "failed")

#: Legal telemetry event kinds: the shard lifecycle transitions plus
#: ``spans`` (a finished shard's span-summary payload, recorded when
#: the worker ran with telemetry enabled) and ``metrics`` (the shard's
#: :meth:`~repro.telemetry.MetricsRegistry.snapshot`, recorded when it
#: ran with metrics enabled — ``campaign report`` and ``telemetry
#: summary`` merge these into fleet-wide histograms).
TELEMETRY_EVENTS = ("queued", "running", "done", "failed", "spans",
                    "metrics")

_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE shards (
    shard_index INTEGER PRIMARY KEY,
    seed        INTEGER NOT NULL,
    scenario    TEXT    NOT NULL,
    status      TEXT    NOT NULL DEFAULT 'pending'
                CHECK (status IN ('pending', 'running', 'done', 'failed')),
    result      TEXT,
    error       TEXT,
    elapsed_s   REAL
);
CREATE TABLE telemetry (
    event_id    INTEGER PRIMARY KEY AUTOINCREMENT,
    shard_index INTEGER,
    event       TEXT NOT NULL
                CHECK (event IN
                       ('queued', 'running', 'done', 'failed', 'spans',
                        'metrics')),
    worker      TEXT,
    wall_s      REAL NOT NULL,
    duration_s  REAL,
    payload     TEXT
);
"""


def _connect(path: Path, readonly: bool = False) -> sqlite3.Connection:
    """Open a connection with the store's pragmas applied.

    WAL + a generous busy timeout is what lets many worker processes
    append result rows to one file: writers serialize on the WAL lock
    (retrying for up to 30 s instead of failing) while readers keep
    reading a consistent snapshot.
    """
    if readonly:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True,
                               timeout=30.0)
    else:
        conn = sqlite3.connect(path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
    conn.row_factory = sqlite3.Row
    return conn


class ArtifactStore:
    """One campaign's persistent manifest and per-shard result rows.

    Construct through :meth:`create` (new store for a spec) or
    :meth:`open` (existing store, schema-checked); instances are
    context managers that close their connection on exit.  All writes
    are single-row, single-transaction updates, so any number of
    processes holding their own ``ArtifactStore`` on the same path can
    work one campaign concurrently.
    """

    def __init__(self, path: "str | Path",
                 connection: sqlite3.Connection) -> None:
        """Wrap an open, schema-valid connection (use create/open)."""
        self.path = Path(path)
        self._conn = connection

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(cls, path: "str | Path",
               spec: CampaignSpec) -> "ArtifactStore":
        """Initialize a new store for ``spec`` (fails if ``path`` exists).

        Expands the campaign into its shard rows up front — resolved
        scenario JSON plus derived seed, all ``pending`` — and writes
        the manifest, so a resume never needs the original spec file.
        """
        target = Path(path)
        if target.exists():
            raise FileExistsError(
                f"{target} already exists; resume it with "
                f"'python -m repro campaign resume {target}' or pick "
                "a new path")
        target.parent.mkdir(parents=True, exist_ok=True)
        conn = _connect(target)
        with conn:
            conn.executescript(_SCHEMA)
            import repro
            manifest = {
                "store_schema_version": str(STORE_SCHEMA_VERSION),
                "telemetry_schema_version": str(TELEMETRY_SCHEMA_VERSION),
                "campaign": spec.to_json(indent=0),
                "spec_hash": spec.spec_hash(),
                "workload": spec.base.workload,
                "engine_version": repro.__version__,
            }
            conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                sorted(manifest.items()))
            conn.executemany(
                "INSERT INTO shards (shard_index, seed, scenario) "
                "VALUES (?, ?, ?)",
                [(index, shard.seed, shard.to_json(indent=0))
                 for index, shard in enumerate(spec.shards())])
            queued_at = time.time()
            conn.executemany(
                "INSERT INTO telemetry (shard_index, event, wall_s) "
                "VALUES (?, 'queued', ?)",
                [(index, queued_at) for index in range(spec.n_shards)])
        return cls(target, conn)

    @classmethod
    def open(cls, path: "str | Path",
             readonly: bool = False) -> "ArtifactStore":
        """Open an existing store, validating its schema version.

        Args:
            path: the SQLite file written by :meth:`create`.
            readonly: open with SQLite's read-only URI mode — safe for
                polling status while another process writes.

        Raises:
            FileNotFoundError: no store at ``path``.
            ValueError: the file is not a campaign store, or was
                written by a different ``STORE_SCHEMA_VERSION``.
        """
        target = Path(path)
        if not target.is_file():
            raise FileNotFoundError(f"no campaign store at {target}")
        conn = None
        try:
            conn = _connect(target, readonly=readonly)
            row = conn.execute(
                "SELECT value FROM meta WHERE key = ?",
                ("store_schema_version",)).fetchone()
        except sqlite3.DatabaseError as error:
            if conn is not None:
                conn.close()
            raise ValueError(
                f"{target} is not a campaign store: {error}") from None
        if row is None:
            conn.close()
            raise ValueError(
                f"{target} has no store_schema_version manifest entry")
        version = row["value"]
        if version != str(STORE_SCHEMA_VERSION):
            conn.close()
            raise ValueError(
                f"{target} was written with store schema version "
                f"{version} (this build reads version "
                f"{STORE_SCHEMA_VERSION}); re-run the campaign or use "
                "a matching repro version to read it")
        return cls(target, conn)

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "ArtifactStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # -- manifest ------------------------------------------------------

    def meta(self, key: str) -> str:
        """One manifest value (KeyError naming the missing key)."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        if row is None:
            raise KeyError(f"no manifest entry {key!r} in {self.path}")
        return row["value"]

    @property
    def spec(self) -> CampaignSpec:
        """The campaign spec this store was created from."""
        return CampaignSpec.from_json(self.meta("campaign"))

    @property
    def spec_hash(self) -> str:
        """The creating spec's :meth:`CampaignSpec.spec_hash`."""
        return self.meta("spec_hash")

    @property
    def workload(self) -> str:
        """The campaign's workload name (one per campaign)."""
        return self.meta("workload")

    # -- shard state ---------------------------------------------------

    def n_shards(self) -> int:
        """Total shard rows in the store."""
        return int(self._conn.execute(
            "SELECT COUNT(*) AS n FROM shards").fetchone()["n"])

    def shard_scenario(self, index: int) -> Scenario:
        """Shard ``index``'s resolved, replayable scenario."""
        row = self._conn.execute(
            "SELECT scenario FROM shards WHERE shard_index = ?",
            (index,)).fetchone()
        if row is None:
            raise KeyError(f"no shard {index} in {self.path}")
        return Scenario.from_json(row["scenario"])

    def counts(self) -> dict[str, int]:
        """Shard counts per status (every status present, 0 included)."""
        counts = dict.fromkeys(SHARD_STATUSES, 0)
        for row in self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM shards "
                "GROUP BY status"):
            counts[row["status"]] = int(row["n"])
        return counts

    def pending_indices(self) -> tuple[int, ...]:
        """Indices still to run (status ``pending``), ascending."""
        return tuple(row["shard_index"] for row in self._conn.execute(
            "SELECT shard_index FROM shards WHERE status = 'pending' "
            "ORDER BY shard_index"))

    def failed_indices(self) -> tuple[int, ...]:
        """Indices whose execution raised (status ``failed``), ascending."""
        return tuple(row["shard_index"] for row in self._conn.execute(
            "SELECT shard_index FROM shards WHERE status = 'failed' "
            "ORDER BY shard_index"))

    def mark_running(self, index: int) -> None:
        """Transition shard ``index`` to ``running``."""
        with self._conn:
            self._conn.execute(
                "UPDATE shards SET status = 'running' "
                "WHERE shard_index = ?", (index,))

    def record_result(self, index: int, summary_row: Mapping[str, Any],
                      elapsed_s: float | None = None) -> None:
        """Mark shard ``index`` ``done`` with its result row.

        Args:
            index: shard index.
            summary_row: the shard result's flat
                :meth:`~repro.scenarios.ResultProtocol.summary_row`.
            elapsed_s: wall-clock shard duration (kept for status
                display only; deliberately excluded from exports so
                resumed and uninterrupted campaigns export
                identically).
        """
        payload = json.dumps(dict(summary_row), sort_keys=True,
                             allow_nan=False)
        with self._conn:
            self._conn.execute(
                "UPDATE shards SET status = 'done', result = ?, "
                "error = NULL, elapsed_s = ? WHERE shard_index = ?",
                (payload, elapsed_s, index))

    def record_failure(self, index: int, message: str) -> None:
        """Mark shard ``index`` ``failed`` with its error message."""
        with self._conn:
            self._conn.execute(
                "UPDATE shards SET status = 'failed', error = ?, "
                "result = NULL WHERE shard_index = ?", (message, index))

    def reset_running(self) -> int:
        """Reset interrupted (``running``) shards to ``pending``.

        A row can only be ``running`` while its worker is alive; on
        resume, any ``running`` row is a shard the killed run never
        finished, so it goes back in the queue.  Returns the number of
        rows reset.
        """
        with self._conn:
            cursor = self._conn.execute(
                "SELECT shard_index FROM shards WHERE status = 'running'")
            interrupted = [row["shard_index"] for row in cursor]
            self._conn.execute(
                "UPDATE shards SET status = 'pending' "
                "WHERE status = 'running'")
            requeued_at = time.time()
            self._conn.executemany(
                "INSERT INTO telemetry (shard_index, event, wall_s) "
                "VALUES (?, 'queued', ?)",
                [(index, requeued_at) for index in interrupted])
            return len(interrupted)

    def reset_failed(self, indices: "tuple[int, ...] | list[int]",
                     retry: int, backoff_s: float) -> int:
        """Re-queue failed shards for retry round ``retry``.

        Flips each listed ``failed`` row back to ``pending`` (clearing
        its error) and records a ``queued`` telemetry event carrying
        the retry round and the backoff that preceded it — the audit
        trail ``campaign report`` and the retry tests read.  Returns
        the number of rows re-queued.
        """
        requeued = 0
        with self._conn:
            requeued_at = time.time()
            for index in indices:
                cursor = self._conn.execute(
                    "UPDATE shards SET status = 'pending', "
                    "error = NULL WHERE shard_index = ? "
                    "AND status = 'failed'", (index,))
                if cursor.rowcount:
                    requeued += 1
                    self._conn.execute(
                        "INSERT INTO telemetry "
                        "(shard_index, event, wall_s, payload) "
                        "VALUES (?, 'queued', ?, ?)",
                        (index, requeued_at, json.dumps(
                            {"retry": retry, "backoff_s": backoff_s},
                            sort_keys=True)))
        return requeued

    # -- telemetry -----------------------------------------------------

    def record_event(self, event: str, shard_index: int | None = None,
                     worker: str | None = None,
                     duration_s: float | None = None,
                     payload: Mapping[str, Any] | None = None) -> None:
        """Append one telemetry event row.

        Args:
            event: one of :data:`TELEMETRY_EVENTS`.
            shard_index: the shard the event concerns (None for
                campaign-level events).
            worker: worker identity (the runner uses ``pid:<n>``).
            duration_s: wall-clock duration for terminal events.
            payload: JSON-serializable extra data (``spans`` events
                carry the shard's span summary here).

        Telemetry rows are wall-clock by nature and therefore **never**
        part of :meth:`export_json` — the deterministic export stays
        byte-identical whether or not a run was instrumented.
        """
        if event not in TELEMETRY_EVENTS:
            raise ValueError(
                f"unknown telemetry event {event!r}; expected one of "
                f"{TELEMETRY_EVENTS}")
        encoded = (json.dumps(payload, sort_keys=True)
                   if payload is not None else None)
        with self._conn:
            self._conn.execute(
                "INSERT INTO telemetry "
                "(shard_index, event, worker, wall_s, duration_s, "
                "payload) VALUES (?, ?, ?, ?, ?, ?)",
                (shard_index, event, worker, time.time(), duration_s,
                 encoded))

    def telemetry_events(self) -> list[dict]:
        """All telemetry rows as dicts, in recording order.

        Each row carries ``shard_index``, ``event``, ``worker``,
        ``wall_s``, ``duration_s`` and the decoded ``payload`` (or
        None).  Raises ``ValueError`` if the store's telemetry table
        was written under a different :data:`TELEMETRY_SCHEMA_VERSION`
        — the shard data stays readable, only the telemetry readers
        refuse.
        """
        version = self.meta("telemetry_schema_version")
        if version != str(TELEMETRY_SCHEMA_VERSION):
            raise ValueError(
                f"{self.path} holds telemetry schema version {version} "
                f"(this build reads version {TELEMETRY_SCHEMA_VERSION});"
                " shard rows are unaffected, but re-run the campaign "
                "with a matching repro version to read its telemetry")
        rows = []
        for row in self._conn.execute(
                "SELECT shard_index, event, worker, wall_s, duration_s, "
                "payload FROM telemetry ORDER BY event_id"):
            rows.append({
                "shard_index": (int(row["shard_index"])
                                if row["shard_index"] is not None
                                else None),
                "event": row["event"],
                "worker": row["worker"],
                "wall_s": float(row["wall_s"]),
                "duration_s": (float(row["duration_s"])
                               if row["duration_s"] is not None
                               else None),
                "payload": (json.loads(row["payload"])
                            if row["payload"] is not None else None),
            })
        return rows

    def completion_rate_per_s(self) -> float | None:
        """Finished shards per second, from telemetry timestamps.

        The rate behind ``campaign status``'s throughput and ETA
        columns: terminal events (``done``/``failed``) per second of
        wall time between the first and the last one.  None until two
        terminal events exist (no meaningful rate yet).
        """
        walls = [row["wall_s"] for row in self._conn.execute(
            "SELECT wall_s FROM telemetry "
            "WHERE event IN ('done', 'failed') ORDER BY wall_s")]
        if len(walls) < 2 or walls[-1] <= walls[0]:
            return None
        return (len(walls) - 1) / (walls[-1] - walls[0])

    # -- export --------------------------------------------------------

    def export_rows(self) -> list[dict]:
        """All shard rows as plain dicts, ascending by index.

        Each row carries ``shard_index``, ``seed``, ``status``, the
        resolved ``scenario`` dict, the ``result`` summary row (or
        ``None``) and the ``error`` message (or ``None``).  Wall-clock
        fields are excluded: the export of a resumed campaign must be
        byte-identical to an uninterrupted run's.
        """
        rows = []
        for row in self._conn.execute(
                "SELECT shard_index, seed, status, scenario, result, "
                "error FROM shards ORDER BY shard_index"):
            rows.append({
                "shard_index": int(row["shard_index"]),
                "seed": int(row["seed"]),
                "status": row["status"],
                "scenario": json.loads(row["scenario"]),
                "result": (json.loads(row["result"])
                           if row["result"] is not None else None),
                "error": row["error"],
            })
        return rows

    def export_json(self, indent: int = 2) -> str:
        """The canonical campaign export: manifest + all shard rows.

        Deterministic by construction (sorted keys, no timestamps or
        durations): two stores holding the same campaign state export
        the same bytes — the comparison surface of the crash/resume
        gates in ``tests/campaigns/test_resume.py`` and
        ``benchmarks/bench_campaign.py``.
        """
        payload = {
            "store_schema_version": STORE_SCHEMA_VERSION,
            "spec_hash": self.spec_hash,
            "campaign": self.spec.to_dict(),
            "shards": self.export_rows(),
        }
        return json.dumps(payload, indent=indent, sort_keys=True,
                          allow_nan=False) + "\n"

    def status_summary(self) -> str:
        """One human-readable block: campaign, progress, counts, rate.

        The throughput and ETA lines are the telemetry table's first
        consumer: shards/min comes from the wall-clock spacing of the
        recorded ``done``/``failed`` events, and the ETA divides the
        outstanding shard count by that rate.  Both degrade gracefully
        — fewer than two finished shards means no rate, and a finished
        campaign shows no ETA.
        """
        counts = self.counts()
        total = self.n_shards()
        spec = self.spec
        lines = [
            f"campaign {spec.name!r} ({self.workload}, {total} shards, "
            f"seed {spec.seed})",
            f"store {self.path} "
            f"[schema v{self.meta('store_schema_version')}, "
            f"spec {self.spec_hash[:12]}]",
            "  " + "  ".join(f"{status}: {counts[status]}"
                             for status in SHARD_STATUSES),
        ]
        done = counts["done"] + counts["failed"]
        lines.append(f"  progress: {done}/{total} "
                     f"({100.0 * done / total:.0f} %)")
        rate = self.completion_rate_per_s()
        remaining = counts["pending"] + counts["running"]
        if rate is not None:
            lines.append(f"  throughput: {rate * 60.0:.1f} shards/min")
            if remaining:
                lines.append(f"  eta: {remaining / rate:.0f} s "
                             f"({remaining} shards remaining)")
        elif remaining:
            lines.append("  throughput: n/a (fewer than two finished "
                         "shards)")
        return "\n".join(lines)
