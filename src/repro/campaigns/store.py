"""The on-disk campaign artifact store: SQLite manifest + result rows.

One store file is one campaign: a ``meta`` table holding the manifest
(store schema version, the full :class:`~repro.campaigns.CampaignSpec`
JSON, its hash, the engine version) and a ``shards`` table with one row
per shard — the resolved scenario JSON, its seed, a lifecycle
``status`` (``pending -> running -> done | failed``) and, once done,
the shard's ``summary_row()`` result as JSON.

The store is built to survive exactly the failure the campaign runner
is built around — a worker or the whole run being killed mid-shard:

* **WAL journal mode** keeps the file consistent across ``SIGKILL``
  (an interrupted transaction rolls back on the next open) and lets
  concurrent worker processes write result rows while readers poll
  status (exercised in ``tests/campaigns/test_store.py``).
* **Schema versioning**: :meth:`ArtifactStore.open` refuses a store
  written by a different schema with a clear error instead of
  misreading it, mirroring :class:`~repro.scenarios.Scenario`.
* **Deterministic export**: :meth:`ArtifactStore.export_json` contains
  only replay-stable fields (never wall-clock durations), so an
  interrupted-then-resumed campaign exports byte-identically to an
  uninterrupted one — the resume guarantee the tests gate on.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any, Mapping

from repro.campaigns.spec import CampaignSpec
from repro.scenarios.spec import Scenario

#: Version stamp of the on-disk SQLite layout.  Bump on any table /
#: column change; ``ArtifactStore.open`` rejects mismatches.
STORE_SCHEMA_VERSION = 1

#: Legal shard lifecycle states, in order.
SHARD_STATUSES = ("pending", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE shards (
    shard_index INTEGER PRIMARY KEY,
    seed        INTEGER NOT NULL,
    scenario    TEXT    NOT NULL,
    status      TEXT    NOT NULL DEFAULT 'pending'
                CHECK (status IN ('pending', 'running', 'done', 'failed')),
    result      TEXT,
    error       TEXT,
    elapsed_s   REAL
);
"""


def _connect(path: Path, readonly: bool = False) -> sqlite3.Connection:
    """Open a connection with the store's pragmas applied.

    WAL + a generous busy timeout is what lets many worker processes
    append result rows to one file: writers serialize on the WAL lock
    (retrying for up to 30 s instead of failing) while readers keep
    reading a consistent snapshot.
    """
    if readonly:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True,
                               timeout=30.0)
    else:
        conn = sqlite3.connect(path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
    conn.row_factory = sqlite3.Row
    return conn


class ArtifactStore:
    """One campaign's persistent manifest and per-shard result rows.

    Construct through :meth:`create` (new store for a spec) or
    :meth:`open` (existing store, schema-checked); instances are
    context managers that close their connection on exit.  All writes
    are single-row, single-transaction updates, so any number of
    processes holding their own ``ArtifactStore`` on the same path can
    work one campaign concurrently.
    """

    def __init__(self, path: "str | Path",
                 connection: sqlite3.Connection) -> None:
        """Wrap an open, schema-valid connection (use create/open)."""
        self.path = Path(path)
        self._conn = connection

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(cls, path: "str | Path",
               spec: CampaignSpec) -> "ArtifactStore":
        """Initialize a new store for ``spec`` (fails if ``path`` exists).

        Expands the campaign into its shard rows up front — resolved
        scenario JSON plus derived seed, all ``pending`` — and writes
        the manifest, so a resume never needs the original spec file.
        """
        target = Path(path)
        if target.exists():
            raise FileExistsError(
                f"{target} already exists; resume it with "
                f"'python -m repro campaign resume {target}' or pick "
                "a new path")
        target.parent.mkdir(parents=True, exist_ok=True)
        conn = _connect(target)
        with conn:
            conn.executescript(_SCHEMA)
            import repro
            manifest = {
                "store_schema_version": str(STORE_SCHEMA_VERSION),
                "campaign": spec.to_json(indent=0),
                "spec_hash": spec.spec_hash(),
                "workload": spec.base.workload,
                "engine_version": repro.__version__,
            }
            conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                sorted(manifest.items()))
            conn.executemany(
                "INSERT INTO shards (shard_index, seed, scenario) "
                "VALUES (?, ?, ?)",
                [(index, shard.seed, shard.to_json(indent=0))
                 for index, shard in enumerate(spec.shards())])
        return cls(target, conn)

    @classmethod
    def open(cls, path: "str | Path",
             readonly: bool = False) -> "ArtifactStore":
        """Open an existing store, validating its schema version.

        Args:
            path: the SQLite file written by :meth:`create`.
            readonly: open with SQLite's read-only URI mode — safe for
                polling status while another process writes.

        Raises:
            FileNotFoundError: no store at ``path``.
            ValueError: the file is not a campaign store, or was
                written by a different ``STORE_SCHEMA_VERSION``.
        """
        target = Path(path)
        if not target.is_file():
            raise FileNotFoundError(f"no campaign store at {target}")
        conn = None
        try:
            conn = _connect(target, readonly=readonly)
            row = conn.execute(
                "SELECT value FROM meta WHERE key = ?",
                ("store_schema_version",)).fetchone()
        except sqlite3.DatabaseError as error:
            if conn is not None:
                conn.close()
            raise ValueError(
                f"{target} is not a campaign store: {error}") from None
        if row is None:
            conn.close()
            raise ValueError(
                f"{target} has no store_schema_version manifest entry")
        version = row["value"]
        if version != str(STORE_SCHEMA_VERSION):
            conn.close()
            raise ValueError(
                f"{target} was written with store schema version "
                f"{version} (this build reads version "
                f"{STORE_SCHEMA_VERSION}); re-run the campaign or use "
                "a matching repro version to read it")
        return cls(target, conn)

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "ArtifactStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # -- manifest ------------------------------------------------------

    def meta(self, key: str) -> str:
        """One manifest value (KeyError naming the missing key)."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        if row is None:
            raise KeyError(f"no manifest entry {key!r} in {self.path}")
        return row["value"]

    @property
    def spec(self) -> CampaignSpec:
        """The campaign spec this store was created from."""
        return CampaignSpec.from_json(self.meta("campaign"))

    @property
    def spec_hash(self) -> str:
        """The creating spec's :meth:`CampaignSpec.spec_hash`."""
        return self.meta("spec_hash")

    @property
    def workload(self) -> str:
        """The campaign's workload name (one per campaign)."""
        return self.meta("workload")

    # -- shard state ---------------------------------------------------

    def n_shards(self) -> int:
        """Total shard rows in the store."""
        return int(self._conn.execute(
            "SELECT COUNT(*) AS n FROM shards").fetchone()["n"])

    def shard_scenario(self, index: int) -> Scenario:
        """Shard ``index``'s resolved, replayable scenario."""
        row = self._conn.execute(
            "SELECT scenario FROM shards WHERE shard_index = ?",
            (index,)).fetchone()
        if row is None:
            raise KeyError(f"no shard {index} in {self.path}")
        return Scenario.from_json(row["scenario"])

    def counts(self) -> dict[str, int]:
        """Shard counts per status (every status present, 0 included)."""
        counts = dict.fromkeys(SHARD_STATUSES, 0)
        for row in self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM shards "
                "GROUP BY status"):
            counts[row["status"]] = int(row["n"])
        return counts

    def pending_indices(self) -> tuple[int, ...]:
        """Indices still to run (status ``pending``), ascending."""
        return tuple(row["shard_index"] for row in self._conn.execute(
            "SELECT shard_index FROM shards WHERE status = 'pending' "
            "ORDER BY shard_index"))

    def mark_running(self, index: int) -> None:
        """Transition shard ``index`` to ``running``."""
        with self._conn:
            self._conn.execute(
                "UPDATE shards SET status = 'running' "
                "WHERE shard_index = ?", (index,))

    def record_result(self, index: int, summary_row: Mapping[str, Any],
                      elapsed_s: float | None = None) -> None:
        """Mark shard ``index`` ``done`` with its result row.

        Args:
            index: shard index.
            summary_row: the shard result's flat
                :meth:`~repro.scenarios.ResultProtocol.summary_row`.
            elapsed_s: wall-clock shard duration (kept for status
                display only; deliberately excluded from exports so
                resumed and uninterrupted campaigns export
                identically).
        """
        payload = json.dumps(dict(summary_row), sort_keys=True,
                             allow_nan=False)
        with self._conn:
            self._conn.execute(
                "UPDATE shards SET status = 'done', result = ?, "
                "error = NULL, elapsed_s = ? WHERE shard_index = ?",
                (payload, elapsed_s, index))

    def record_failure(self, index: int, message: str) -> None:
        """Mark shard ``index`` ``failed`` with its error message."""
        with self._conn:
            self._conn.execute(
                "UPDATE shards SET status = 'failed', error = ?, "
                "result = NULL WHERE shard_index = ?", (message, index))

    def reset_running(self) -> int:
        """Reset interrupted (``running``) shards to ``pending``.

        A row can only be ``running`` while its worker is alive; on
        resume, any ``running`` row is a shard the killed run never
        finished, so it goes back in the queue.  Returns the number of
        rows reset.
        """
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE shards SET status = 'pending' "
                "WHERE status = 'running'")
            return cursor.rowcount

    # -- export --------------------------------------------------------

    def export_rows(self) -> list[dict]:
        """All shard rows as plain dicts, ascending by index.

        Each row carries ``shard_index``, ``seed``, ``status``, the
        resolved ``scenario`` dict, the ``result`` summary row (or
        ``None``) and the ``error`` message (or ``None``).  Wall-clock
        fields are excluded: the export of a resumed campaign must be
        byte-identical to an uninterrupted run's.
        """
        rows = []
        for row in self._conn.execute(
                "SELECT shard_index, seed, status, scenario, result, "
                "error FROM shards ORDER BY shard_index"):
            rows.append({
                "shard_index": int(row["shard_index"]),
                "seed": int(row["seed"]),
                "status": row["status"],
                "scenario": json.loads(row["scenario"]),
                "result": (json.loads(row["result"])
                           if row["result"] is not None else None),
                "error": row["error"],
            })
        return rows

    def export_json(self, indent: int = 2) -> str:
        """The canonical campaign export: manifest + all shard rows.

        Deterministic by construction (sorted keys, no timestamps or
        durations): two stores holding the same campaign state export
        the same bytes — the comparison surface of the crash/resume
        gates in ``tests/campaigns/test_resume.py`` and
        ``benchmarks/bench_campaign.py``.
        """
        payload = {
            "store_schema_version": STORE_SCHEMA_VERSION,
            "spec_hash": self.spec_hash,
            "campaign": self.spec.to_dict(),
            "shards": self.export_rows(),
        }
        return json.dumps(payload, indent=indent, sort_keys=True,
                          allow_nan=False) + "\n"

    def status_summary(self) -> str:
        """One human-readable block: campaign, progress, per-status counts."""
        counts = self.counts()
        total = self.n_shards()
        spec = self.spec
        lines = [
            f"campaign {spec.name!r} ({self.workload}, {total} shards, "
            f"seed {spec.seed})",
            f"store {self.path} "
            f"[schema v{self.meta('store_schema_version')}, "
            f"spec {self.spec_hash[:12]}]",
            "  " + "  ".join(f"{status}: {counts[status]}"
                             for status in SHARD_STATUSES),
        ]
        done = counts["done"] + counts["failed"]
        lines.append(f"  progress: {done}/{total} "
                     f"({100.0 * done / total:.0f} %)")
        return "\n".join(lines)
