"""The campaign command line: ``python -m repro campaign ...``.

Five subcommands over one SQLite artifact store::

    python -m repro campaign run fleet.json --store fleet.sqlite \\
        --workers 4                          # expand + run all shards
    python -m repro campaign status fleet.sqlite   # progress + ETA
    python -m repro campaign resume fleet.sqlite --workers 4
    python -m repro campaign export fleet.sqlite --out rows.json
    python -m repro campaign report fleet.sqlite \\
        --perfetto-out fleet_trace.json      # telemetry breakdown

``run`` refuses an existing store (resume it instead); ``resume``
requeues interrupted shards and skips finished ones; ``export`` writes
the deterministic manifest+rows JSON (stdout without ``--out``);
``report`` renders the telemetry table — per-shard duration
percentiles, throughput, worker utilization, slowest spans — and can
write the shard timeline as a Perfetto trace.  The subcommands are
registered onto the main ``python -m repro`` parser by
:func:`add_campaign_commands`.
"""

from __future__ import annotations

import argparse
from pathlib import Path


#: Store/spec problems the CLI reports as exit code 2 instead of a
#: traceback: missing or pre-existing files, schema mismatches, specs
#: that fail validation.
_USAGE_ERRORS = (FileNotFoundError, FileExistsError, ValueError)


def _cmd_run(args: argparse.Namespace) -> int:
    """Expand a campaign file into a new store and run it."""
    from repro.campaigns.runner import run_campaign
    from repro.campaigns.spec import CampaignSpec

    try:
        spec = CampaignSpec.load(args.campaign)
        report = run_campaign(spec, args.store, workers=args.workers)
    except _USAGE_ERRORS as error:
        print(error)
        return 2
    print(report.summary())
    return 0 if report.counts["failed"] == 0 else 1


def _cmd_resume(args: argparse.Namespace) -> int:
    """Resume an interrupted campaign from its store."""
    from repro.campaigns.runner import resume_campaign

    try:
        report = resume_campaign(args.store, workers=args.workers)
    except _USAGE_ERRORS as error:
        print(error)
        return 2
    print(report.summary())
    return 0 if report.counts["failed"] == 0 else 1


def _cmd_status(args: argparse.Namespace) -> int:
    """Print a store's manifest and per-status shard counts."""
    from repro.campaigns.store import ArtifactStore

    try:
        with ArtifactStore.open(args.store, readonly=True) as store:
            print(store.status_summary())
    except _USAGE_ERRORS as error:
        print(error)
        return 2
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Write a store's deterministic JSON export."""
    from repro.campaigns.store import ArtifactStore

    try:
        with ArtifactStore.open(args.store, readonly=True) as store:
            text = store.export_json()
    except _USAGE_ERRORS as error:
        print(error)
        return 2
    if args.out is None:
        print(text, end="")
    else:
        args.out.write_text(text)
        print(f"export -> {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a store's telemetry report, optionally with a trace."""
    import json

    from repro.campaigns.report import (
        render_report,
        report_payload,
        write_report_perfetto,
    )
    from repro.campaigns.store import ArtifactStore

    try:
        with ArtifactStore.open(args.store, readonly=True) as store:
            if args.json:
                print(json.dumps(report_payload(store), indent=2,
                                 sort_keys=True))
            else:
                print(render_report(store))
            if args.perfetto_out is not None:
                path = write_report_perfetto(store, args.perfetto_out)
                if not args.json:
                    print(f"perfetto trace -> {path}")
    except _USAGE_ERRORS as error:
        print(error)
        return 2
    return 0


def add_campaign_commands(subparsers) -> None:
    """Register the ``campaign`` subcommand tree on the main CLI parser."""
    campaign = subparsers.add_parser(
        "campaign",
        help="population-scale sharded campaigns over one scenario")
    commands = campaign.add_subparsers(dest="campaign_command",
                                       required=True)

    run_p = commands.add_parser(
        "run", help="expand a campaign JSON file into a new store "
                    "and run every shard")
    run_p.add_argument("campaign", type=Path,
                       help="path to a campaign .json file")
    run_p.add_argument("--store", type=Path, required=True,
                       help="path of the SQLite artifact store to "
                            "create (must not exist)")
    run_p.add_argument("--workers", type=int, default=1,
                       help="worker processes (default 1: in-process)")
    run_p.set_defaults(func=_cmd_run)

    resume_p = commands.add_parser(
        "resume", help="resume an interrupted campaign from its store")
    resume_p.add_argument("store", type=Path,
                          help="path to an existing campaign store")
    resume_p.add_argument("--workers", type=int, default=1,
                          help="worker processes (default 1)")
    resume_p.set_defaults(func=_cmd_resume)

    status_p = commands.add_parser(
        "status", help="show a campaign store's progress counts")
    status_p.add_argument("store", type=Path,
                          help="path to an existing campaign store")
    status_p.set_defaults(func=_cmd_status)

    export_p = commands.add_parser(
        "export", help="write a store's deterministic JSON export")
    export_p.add_argument("store", type=Path,
                          help="path to an existing campaign store")
    export_p.add_argument("--out", type=Path, default=None,
                          help="output JSON path (default: stdout)")
    export_p.set_defaults(func=_cmd_export)

    report_p = commands.add_parser(
        "report", help="render a store's telemetry: shard duration "
                       "percentiles, throughput, worker utilization, "
                       "slowest spans")
    report_p.add_argument("store", type=Path,
                          help="path to an existing campaign store")
    report_p.add_argument("--json", action="store_true",
                          help="emit the report as machine-readable "
                               "JSON instead of the rendered table")
    report_p.add_argument("--perfetto-out", type=Path, default=None,
                          help="also write the shard timeline as a "
                               "Chrome/Perfetto trace_event JSON file")
    report_p.set_defaults(func=_cmd_report)
