"""Steady-state extraction from chronoamperometric step responses.

After each substrate addition the current relaxes to a new plateau; the
calibration point is the plateau level.  The extractor averages the tail of
the record and reports a settledness diagnostic (residual slope vs. noise)
so un-settled steps are flagged instead of silently biasing calibrations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SteadyStateResult:
    """Plateau estimate from a step response.

    Attributes:
        value: plateau current estimate [A] (tail mean).
        std: sample standard deviation within the tail [A].
        n_samples: number of samples averaged.
        residual_slope_per_s: linear slope remaining in the tail [A/s].
        settled: True when the remaining slope over the tail duration is
            smaller than the tail noise.
    """

    value: float
    std: float
    n_samples: int
    residual_slope_per_s: float
    settled: bool


def extract_steady_state(time_s: np.ndarray,
                         current_a: np.ndarray,
                         tail_fraction: float = 0.25) -> SteadyStateResult:
    """Average the last ``tail_fraction`` of a step record.

    Args:
        time_s: sample timestamps (monotonic).
        current_a: current record.
        tail_fraction: portion of the record treated as plateau.
    """
    time_s = np.asarray(time_s, dtype=float)
    current_a = np.asarray(current_a, dtype=float)
    if time_s.shape != current_a.shape:
        raise ValueError("time and current must share one shape")
    if time_s.size < 4:
        raise ValueError("record too short for steady-state extraction")
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError(f"tail fraction must be in (0, 1], got {tail_fraction}")

    n_tail = max(2, int(round(time_s.size * tail_fraction)))
    tail_t = time_s[-n_tail:]
    tail_i = current_a[-n_tail:]
    value = float(np.mean(tail_i))
    std = float(np.std(tail_i, ddof=1))
    slope = float(np.polyfit(tail_t, tail_i, 1)[0])
    duration = float(tail_t[-1] - tail_t[0])
    drift_over_tail = abs(slope) * duration
    # Settled when the residual drift is buried in the tail noise or is
    # negligible relative to the plateau itself (noiseless records).
    threshold = max(2.0 * std, 1e-3 * abs(value), 1e-30)
    settled = bool(drift_over_tail <= threshold)
    return SteadyStateResult(value=value, std=std, n_samples=n_tail,
                             residual_slope_per_s=slope, settled=settled)


def extract_steady_state_batch(time_s: np.ndarray,
                               current_a: np.ndarray,
                               tail_fraction: float = 0.25) -> np.ndarray:
    """Vectorized plateau extraction over a batch of step records.

    Args:
        time_s: shared sample timestamps, shape ``(n_samples,)``.
        current_a: batch of records, shape ``(n_cells, n_samples)``.
        tail_fraction: portion of each record treated as plateau.

    Returns:
        Plateau estimates [A], shape ``(n_cells,)``.  Each entry equals
        the ``value`` :func:`extract_steady_state` reports for the same
        row (same tail-length rule, same mean), without the per-record
        settledness diagnostic — batch callers that need the diagnostic
        re-analyze the flagged rows individually.
    """
    time_s = np.asarray(time_s, dtype=float)
    current_a = np.asarray(current_a, dtype=float)
    if current_a.ndim != 2:
        raise ValueError("batch records must be (n_cells, n_samples)")
    if time_s.shape != (current_a.shape[1],):
        raise ValueError("time grid must match the sample axis")
    if time_s.size < 4:
        raise ValueError("record too short for steady-state extraction")
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError(f"tail fraction must be in (0, 1], got {tail_fraction}")
    n_tail = max(2, int(round(time_s.size * tail_fraction)))
    return np.mean(current_a[:, -n_tail:], axis=1)


def rise_time(time_s: np.ndarray,
              current_a: np.ndarray,
              low: float = 0.1,
              high: float = 0.9) -> float:
    """Return the ``low``-to-``high`` rise time [s] of a step response.

    Levels are fractions of the final plateau relative to the initial value.
    Raises if the trace never crosses the thresholds (no step present).
    """
    time_s = np.asarray(time_s, dtype=float)
    current_a = np.asarray(current_a, dtype=float)
    if time_s.shape != current_a.shape or time_s.size < 4:
        raise ValueError("need equal-length arrays with >= 4 samples")
    if not 0.0 <= low < high <= 1.0:
        raise ValueError(f"need 0 <= low < high <= 1, got {low}, {high}")

    start = current_a[0]
    plateau = extract_steady_state(time_s, current_a).value
    swing = plateau - start
    if swing == 0.0:
        raise ValueError("trace has no step (zero swing)")
    normalized = (current_a - start) / swing
    above_low = np.flatnonzero(normalized >= low)
    above_high = np.flatnonzero(normalized >= high)
    if above_low.size == 0 or above_high.size == 0:
        raise ValueError("trace never crosses the requested thresholds")
    return float(time_s[above_high[0]] - time_s[above_low[0]])
