"""Peak detection and height measurement.

The quantitative output of the CYP drug sensors: "the peak height is
proportional to drug concentration and calibration curves can be plotted"
(paper section 3.1).  ``measure_peak`` implements the full procedure —
smooth, fit flank baseline, subtract, locate extremum, report height.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signal.baseline import baseline_from_flanks, subtract_baseline
from repro.signal.smoothing import savitzky_golay


@dataclass(frozen=True)
class PeakMeasurement:
    """A quantified voltammetric peak.

    Attributes:
        position: abscissa (potential) of the peak extremum.
        height: |peak - baseline| at the extremum (always >= 0).
        polarity: +1 for an anodic (positive) peak, -1 for cathodic.
        baseline_value: baseline level under the extremum.
        raw_value: un-subtracted trace value at the extremum.
    """

    position: float
    height: float
    polarity: int
    baseline_value: float
    raw_value: float


def find_peak_index(y: np.ndarray, polarity: int = 1) -> int:
    """Index of the extremum: max for ``polarity`` +1, min for -1."""
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        raise ValueError("empty trace")
    if polarity not in (1, -1):
        raise ValueError(f"polarity must be +1 or -1, got {polarity}")
    return int(np.argmax(y) if polarity == 1 else np.argmin(y))


def measure_peak(x: np.ndarray,
                 y: np.ndarray,
                 peak_window: tuple[float, float],
                 polarity: int = -1,
                 smooth_window: int = 9,
                 baseline_degree: int = 1) -> PeakMeasurement:
    """Measure a peak's baseline-corrected height inside ``peak_window``.

    Args:
        x: potential axis (monotonic within the analyzed sweep).
        y: current trace.
        peak_window: (low, high) potential interval containing the peak.
        polarity: -1 for a reduction (cathodic, negative-going) peak — the
            CYP case — or +1 for an oxidation peak.
        smooth_window: Savitzky-Golay window (samples); 0 disables smoothing.
        baseline_degree: polynomial degree of the flank baseline.

    Returns:
        A :class:`PeakMeasurement`; height is always non-negative.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("x and y must share one shape")
    if x.size < 8:
        raise ValueError("trace too short for peak analysis")
    smoothed = savitzky_golay(y, smooth_window) if smooth_window else y
    baseline = baseline_from_flanks(x, smoothed, peak_window, baseline_degree)
    corrected = subtract_baseline(smoothed, baseline)

    low, high = peak_window
    in_window = (x >= low) & (x <= high)
    if not in_window.any():
        raise ValueError("no samples inside the peak window")
    window_idx = np.flatnonzero(in_window)
    local = corrected[window_idx]
    local_peak = find_peak_index(local, polarity)
    idx = int(window_idx[local_peak])

    height = abs(float(corrected[idx]))
    return PeakMeasurement(
        position=float(x[idx]),
        height=height,
        polarity=polarity,
        baseline_value=float(baseline[idx]),
        raw_value=float(y[idx]),
    )
