"""Baseline estimation and subtraction for voltammograms.

The CYP drug sensors quantify a reduction peak riding on a large capacitive
background; the reported "peak height" is always height *above baseline*.
The baseline is fit on user-designated flank regions (before and after the
peak window) so the peak itself never biases the fit.
"""

from __future__ import annotations

import numpy as np


def fit_polynomial_baseline(x: np.ndarray,
                            y: np.ndarray,
                            mask: np.ndarray,
                            degree: int = 1) -> np.ndarray:
    """Fit a polynomial to ``y`` on ``mask`` and evaluate it everywhere.

    Args:
        x: abscissa (potential or time).
        y: trace values.
        mask: boolean array marking baseline (non-peak) samples.
        degree: polynomial degree (1 = linear baseline).

    Returns:
        The baseline evaluated at every ``x``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    mask = np.asarray(mask, dtype=bool)
    if x.shape != y.shape or x.shape != mask.shape:
        raise ValueError("x, y and mask must share one shape")
    if degree < 0:
        raise ValueError(f"degree must be >= 0, got {degree}")
    n_masked = int(mask.sum())
    if n_masked < degree + 1:
        raise ValueError(
            f"need at least {degree + 1} baseline samples, got {n_masked}")
    coefficients = np.polyfit(x[mask], y[mask], degree)
    return np.polyval(coefficients, x)


def baseline_from_flanks(x: np.ndarray,
                         y: np.ndarray,
                         peak_window: tuple[float, float],
                         degree: int = 1) -> np.ndarray:
    """Fit a baseline using only samples *outside* ``peak_window``.

    ``peak_window`` is the (low, high) abscissa interval containing the
    peak; everything else is treated as baseline.
    """
    x = np.asarray(x, dtype=float)
    low, high = peak_window
    if not low < high:
        raise ValueError(f"peak window must satisfy low < high, got {peak_window}")
    mask = (x < low) | (x > high)
    if not mask.any():
        raise ValueError("peak window covers the whole trace")
    return fit_polynomial_baseline(x, y, mask, degree)


def subtract_baseline(y: np.ndarray, baseline: np.ndarray) -> np.ndarray:
    """Return ``y - baseline`` (shape-checked)."""
    y = np.asarray(y, dtype=float)
    baseline = np.asarray(baseline, dtype=float)
    if y.shape != baseline.shape:
        raise ValueError("trace and baseline must share one shape")
    return y - baseline
