"""Digital signal processing for electrochemical traces.

The analysis a bench electrochemist performs on raw instrument output:
smoothing, baseline estimation and subtraction (voltammetry), peak finding
(CYP drug sensing), steady-state extraction (chronoamperometry) and drift
handling (long-term monitoring).
"""

from repro.signal.smoothing import (
    moving_average,
    exponential_smoothing,
    savitzky_golay,
)
from repro.signal.baseline import (
    fit_polynomial_baseline,
    subtract_baseline,
    baseline_from_flanks,
)
from repro.signal.peaks import PeakMeasurement, measure_peak, find_peak_index
from repro.signal.steady_state import (
    SteadyStateResult,
    extract_steady_state,
    extract_steady_state_batch,
    rise_time,
)
from repro.signal.drift import (
    estimate_drift_rate,
    estimate_drift_rate_batch,
    correct_linear_drift,
    correct_linear_drift_batch,
    ou_process_batch,
)
from repro.signal.eis_fitting import (
    RandlesFit,
    fit_randles,
    measure_rct_from_spectrum,
)

__all__ = [
    "moving_average",
    "exponential_smoothing",
    "savitzky_golay",
    "fit_polynomial_baseline",
    "subtract_baseline",
    "baseline_from_flanks",
    "PeakMeasurement",
    "measure_peak",
    "find_peak_index",
    "SteadyStateResult",
    "extract_steady_state",
    "extract_steady_state_batch",
    "rise_time",
    "estimate_drift_rate",
    "estimate_drift_rate_batch",
    "correct_linear_drift",
    "correct_linear_drift_batch",
    "ou_process_batch",
    "RandlesFit",
    "fit_randles",
    "measure_rct_from_spectrum",
]
