"""Baseline drift estimation and correction.

Long-term monitoring (the paper's chronic-patient scenario) accumulates
baseline drift from reference-electrode wander, enzyme decay and electrode
fouling.  Linear drift is estimated on blank segments and removed before
quantification.
"""

from __future__ import annotations

import numpy as np


def estimate_drift_rate(time_s: np.ndarray, y: np.ndarray) -> float:
    """Least-squares linear drift rate [units of y per second]."""
    time_s = np.asarray(time_s, dtype=float)
    y = np.asarray(y, dtype=float)
    if time_s.shape != y.shape:
        raise ValueError("time and trace must share one shape")
    if time_s.size < 2:
        raise ValueError("need at least two samples")
    if float(np.ptp(time_s)) == 0.0:
        raise ValueError("time axis has zero span")
    return float(np.polyfit(time_s, y, 1)[0])


def correct_linear_drift(time_s: np.ndarray,
                         y: np.ndarray,
                         drift_rate_per_s: float,
                         anchor_time_s: float | None = None) -> np.ndarray:
    """Remove a known linear drift from a trace.

    Args:
        time_s: timestamps.
        y: trace.
        drift_rate_per_s: drift slope to remove.
        anchor_time_s: time at which the correction is zero (defaults to the
            first sample, preserving the initial reading).
    """
    time_s = np.asarray(time_s, dtype=float)
    y = np.asarray(y, dtype=float)
    if time_s.shape != y.shape:
        raise ValueError("time and trace must share one shape")
    anchor = float(time_s[0]) if anchor_time_s is None else anchor_time_s
    return y - drift_rate_per_s * (time_s - anchor)
