"""Baseline drift: estimation, correction, and stochastic wander kernels.

Long-term monitoring (the paper's chronic-patient scenario) accumulates
baseline drift from reference-electrode wander, enzyme decay and electrode
fouling.  Deterministic linear drift is estimated on blank segments and
removed before quantification; the slow *random* component of the
reference wander is modeled as an Ornstein-Uhlenbeck (OU) process.

Every routine exists in two forms, following the engine convention:

* a **batch kernel** operating on ``(n_channels, n_samples)`` arrays —
  what :mod:`repro.engine.monitor` consumes while streaming a cohort
  through wear-time;
* a **scalar/1-D wrapper** preserving the historical API.

The stochastic kernel honors the library's reproducibility contract: it
only draws from explicitly passed generators (one per channel) or from
the shared seedable stream of :mod:`repro.rng` — never from fresh OS
entropy — so a run seeded via :func:`repro.rng.set_global_seed` replays
bit-for-bit.  Draws are consumed strictly sequentially per channel, which
makes chunked streaming invariant to chunk size: advancing a channel in
one 10000-sample call or in ten 1000-sample calls produces the same
trajectory.
"""

from __future__ import annotations

import numpy as np

from repro.rng import get_rng


def estimate_drift_rate_batch(time_s: np.ndarray,
                              y: np.ndarray) -> np.ndarray:
    """Least-squares linear drift rate per channel [units of y per second].

    Args:
        time_s: shared timestamps, shape ``(n_samples,)``.
        y: traces, shape ``(n_channels, n_samples)``.

    Returns:
        Drift slopes, shape ``(n_channels,)``.
    """
    time_s = np.asarray(time_s, dtype=float)
    y = np.asarray(y, dtype=float)
    if time_s.ndim != 1:
        raise ValueError("time axis must be one-dimensional")
    if y.ndim != 2 or y.shape[1] != time_s.size:
        raise ValueError("traces must be (n_channels, n_samples) on the "
                         "shared time grid")
    if time_s.size < 2:
        raise ValueError("need at least two samples")
    if float(np.ptp(time_s)) == 0.0:
        raise ValueError("time axis has zero span")
    # Closed-form simple-regression slope, vectorized over channels.
    t_centered = time_s - np.mean(time_s)
    denominator = float(np.sum(t_centered ** 2))
    return (y - np.mean(y, axis=1, keepdims=True)) @ t_centered / denominator


def estimate_drift_rate(time_s: np.ndarray, y: np.ndarray) -> float:
    """Least-squares linear drift rate [units of y per second].

    Thin single-channel wrapper over :func:`estimate_drift_rate_batch`.
    """
    time_s = np.asarray(time_s, dtype=float)
    y = np.asarray(y, dtype=float)
    if time_s.shape != y.shape:
        raise ValueError("time and trace must share one shape")
    return float(estimate_drift_rate_batch(time_s, y[None, :])[0])


def correct_linear_drift_batch(time_s: np.ndarray,
                               y: np.ndarray,
                               drift_rate_per_s: np.ndarray,
                               anchor_time_s: float | None = None,
                               ) -> np.ndarray:
    """Remove per-channel linear drifts from a batch of traces.

    Args:
        time_s: shared timestamps, shape ``(n_samples,)``.
        y: traces, shape ``(n_channels, n_samples)``.
        drift_rate_per_s: one slope per channel, shape ``(n_channels,)``.
        anchor_time_s: time at which the correction is zero (defaults to
            the first sample, preserving the initial readings).

    Returns:
        Corrected traces, shape ``(n_channels, n_samples)``.
    """
    time_s = np.asarray(time_s, dtype=float)
    y = np.asarray(y, dtype=float)
    rates = np.atleast_1d(np.asarray(drift_rate_per_s, dtype=float))
    if time_s.ndim != 1:
        raise ValueError("time axis must be one-dimensional")
    if y.ndim != 2 or y.shape[1] != time_s.size:
        raise ValueError("traces must be (n_channels, n_samples) on the "
                         "shared time grid")
    if rates.shape != (y.shape[0],):
        raise ValueError(
            f"need one drift rate per channel: {rates.shape} != "
            f"({y.shape[0]},)")
    anchor = float(time_s[0]) if anchor_time_s is None else anchor_time_s
    return y - rates[:, None] * (time_s - anchor)[None, :]


def correct_linear_drift(time_s: np.ndarray,
                         y: np.ndarray,
                         drift_rate_per_s: float,
                         anchor_time_s: float | None = None) -> np.ndarray:
    """Remove a known linear drift from a trace.

    Thin single-channel wrapper over :func:`correct_linear_drift_batch`.

    Args:
        time_s: timestamps.
        y: trace.
        drift_rate_per_s: drift slope to remove.
        anchor_time_s: time at which the correction is zero (defaults to the
            first sample, preserving the initial reading).
    """
    time_s = np.asarray(time_s, dtype=float)
    y = np.asarray(y, dtype=float)
    if time_s.shape != y.shape:
        raise ValueError("time and trace must share one shape")
    return correct_linear_drift_batch(
        time_s, y[None, :], np.array([drift_rate_per_s]), anchor_time_s)[0]


def ou_process_batch(n_samples: int,
                     dt_s: float,
                     tau_s: np.ndarray | float,
                     sigma: np.ndarray | float,
                     x0: np.ndarray,
                     rngs: "list[np.random.Generator] | None" = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Advance per-channel Ornstein-Uhlenbeck processes by ``n_samples``.

    The shared stochastic kernel of the streaming monitor: baseline
    wander *and* the random component of physiological concentration
    trajectories are both mean-reverting noise,

    ``x[k+1] = a * x[k] + sigma * sqrt(1 - a^2) * z[k]``,  ``a = exp(-dt/tau)``

    which has stationary standard deviation ``sigma`` and correlation
    time ``tau``.  The recursion is exact for any step size (no Euler
    error), so chunked streaming reproduces a single long call exactly
    as long as ``x0`` carries the state across chunk boundaries and each
    channel keeps its own generator.

    Args:
        n_samples: samples to generate per channel.
        dt_s: sample period [s].
        tau_s: correlation time per channel [s] (scalar broadcasts);
            ``inf`` turns the channel into a frozen offset.
        sigma: stationary standard deviation per channel (scalar
            broadcasts); 0 disables the noise.
        x0: state entering the chunk, shape ``(n_channels,)`` — the last
            sample of the previous chunk, or the draw-free initial value.
        rngs: one generator per channel; ``None`` draws every channel
            from the shared seedable stream (:func:`repro.rng.get_rng`),
            which is reproducible under ``set_global_seed`` but not
            chunk-invariant (use per-channel generators for streaming).

    Returns:
        ``(values, state)``: the ``(n_channels, n_samples)`` process
        values and the ``(n_channels,)`` state to pass as ``x0`` of the
        next chunk (``values[:, -1]``, copied).
    """
    x0 = np.atleast_1d(np.asarray(x0, dtype=float))
    if x0.ndim != 1:
        raise ValueError("x0 must be one state value per channel")
    n_channels = x0.size
    if n_samples < 1:
        raise ValueError("need at least one sample")
    if dt_s <= 0:
        raise ValueError("sample period must be > 0")
    tau = np.broadcast_to(np.asarray(tau_s, dtype=float), (n_channels,))
    sig = np.broadcast_to(np.asarray(sigma, dtype=float), (n_channels,))
    if np.any(tau <= 0):
        raise ValueError("correlation time must be > 0")
    if np.any(sig < 0):
        raise ValueError("sigma must be >= 0")

    a = np.exp(-dt_s / tau)
    innovation_scale = sig * np.sqrt(1.0 - a ** 2)
    if rngs is None:
        shared = get_rng(None)
        shocks = shared.standard_normal((n_channels, n_samples))
    else:
        if len(rngs) != n_channels:
            raise ValueError(
                f"need one generator per channel: {len(rngs)} != "
                f"{n_channels}")
        shocks = np.stack([rng.standard_normal(n_samples) for rng in rngs])

    values = np.empty((n_channels, n_samples))
    state = x0
    for k in range(n_samples):
        state = a * state + innovation_scale * shocks[:, k]
        values[:, k] = state
    return values, values[:, -1].copy()
