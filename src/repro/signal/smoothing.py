"""Trace smoothing primitives."""

from __future__ import annotations

import numpy as np
from scipy.signal import savgol_filter


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge handling by shrinking windows.

    Preserves the array length; near the edges the window shrinks
    symmetrically instead of zero-padding (which would bias baselines).
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("input must be one-dimensional")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or x.size <= 2:
        return x.copy()
    window = min(window, x.size)
    half = window // 2
    cumulative = np.concatenate(([0.0], np.cumsum(x)))
    out = np.empty_like(x)
    for i in range(x.size):
        lo = max(0, i - half)
        hi = min(x.size, i + half + 1)
        out[i] = (cumulative[hi] - cumulative[lo]) / (hi - lo)
    return out


def exponential_smoothing(x: np.ndarray, alpha: float) -> np.ndarray:
    """First-order exponential smoother: y[k] = y[k-1] + alpha (x[k]-y[k-1])."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("input must be one-dimensional")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    from scipy.signal import lfilter

    b = [alpha]
    a = [1.0, -(1.0 - alpha)]
    zi = [(1.0 - alpha) * x[0]]
    y, __ = lfilter(b, a, x, zi=zi)
    return y


def savitzky_golay(x: np.ndarray, window: int, polyorder: int = 2) -> np.ndarray:
    """Savitzky-Golay smoothing (peak-shape preserving).

    The standard pre-filter before peak-height measurement: unlike a moving
    average it does not clip peak amplitudes of polynomial order up to
    ``polyorder``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("input must be one-dimensional")
    if window < 3:
        raise ValueError(f"window must be >= 3, got {window}")
    if window % 2 == 0:
        window += 1
    window = min(window, x.size if x.size % 2 == 1 else x.size - 1)
    if window <= polyorder:
        return x.copy()
    return savgol_filter(x, window_length=window, polyorder=polyorder)
