"""Randles-circuit parameter extraction from measured EIS spectra.

The analysis side of impedimetric biosensing: given a (noisy) complex
impedance spectrum, recover Rs, Rct and Cdl by complex nonlinear least
squares.  The faradic immunosensor reports the *fitted* Rct shift, exactly
as an instrument's equivalent-circuit fit would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.chem.impedance import RandlesCircuit


@dataclass(frozen=True)
class RandlesFit:
    """Result of a Randles-circuit fit.

    Attributes:
        circuit: the fitted equivalent circuit.
        residual_rms_ohm: RMS of the complex fit residual [ohm].
        relative_residual: residual normalized by the median |Z|.
        converged: optimizer success flag.
    """

    circuit: RandlesCircuit
    residual_rms_ohm: float
    relative_residual: float
    converged: bool


def _model(params: np.ndarray, freqs: np.ndarray) -> np.ndarray:
    rs, rct, cdl = params
    omega = 2.0 * np.pi * freqs
    admittance = 1.0 / rct + 1j * omega * cdl
    return rs + 1.0 / admittance


def fit_randles(frequencies_hz: np.ndarray,
                impedance_ohm: np.ndarray,
                initial: RandlesCircuit | None = None) -> RandlesFit:
    """Fit a Randles circuit (no Warburg) to a complex spectrum.

    Args:
        frequencies_hz: measurement frequencies (> 0).
        impedance_ohm: complex impedances at those frequencies.
        initial: optional starting circuit; a heuristic initialization
            from the spectrum's geometry is used otherwise (Rs from the
            high-frequency real limit, Rct from the low-frequency span,
            Cdl from the apex frequency).

    Returns:
        A :class:`RandlesFit`; raises ``ValueError`` on malformed input.
    """
    freqs = np.asarray(frequencies_hz, dtype=float)
    z = np.asarray(impedance_ohm, dtype=complex)
    if freqs.shape != z.shape or freqs.ndim != 1:
        raise ValueError("frequencies and impedances must share one 1-D shape")
    if freqs.size < 6:
        raise ValueError("need at least 6 spectral points")
    if np.any(freqs <= 0):
        raise ValueError("frequencies must be > 0")

    if initial is not None:
        start = np.array([
            initial.solution_resistance_ohm,
            initial.charge_transfer_resistance_ohm,
            initial.double_layer_capacitance_f,
        ])
    else:
        order = np.argsort(freqs)
        rs_guess = max(float(z.real[order][-1]), 1e-3)
        rct_guess = max(float(z.real[order][0]) - rs_guess, 1e-3)
        apex_idx = int(np.argmax(-z.imag))
        f_apex = max(float(freqs[apex_idx]), 1e-6)
        cdl_guess = 1.0 / (2.0 * np.pi * f_apex * rct_guess)
        start = np.array([rs_guess, rct_guess, cdl_guess])

    def residuals(params: np.ndarray) -> np.ndarray:
        model = _model(params, freqs)
        delta = model - z
        return np.concatenate([delta.real, delta.imag])

    result = least_squares(
        residuals, start,
        bounds=(np.array([0.0, 1e-6, 1e-15]),
                np.array([np.inf, np.inf, 1.0])),
        method="trf",
    )
    rs, rct, cdl = result.x
    fitted = RandlesCircuit(
        solution_resistance_ohm=float(rs),
        charge_transfer_resistance_ohm=float(rct),
        double_layer_capacitance_f=float(cdl),
    )
    residual_rms = float(np.sqrt(np.mean(result.fun ** 2)))
    scale = float(np.median(np.abs(z)))
    return RandlesFit(
        circuit=fitted,
        residual_rms_ohm=residual_rms,
        relative_residual=residual_rms / scale if scale > 0 else np.inf,
        converged=bool(result.success),
    )


def measure_rct_from_spectrum(frequencies_hz: np.ndarray,
                              impedance_ohm: np.ndarray) -> float:
    """Convenience: fitted charge-transfer resistance [ohm]."""
    return fit_randles(frequencies_hz,
                       impedance_ohm).circuit.charge_transfer_resistance_ohm
