"""Quantitative models of the non-amperometric transduction classes.

Section 2.3 of the paper surveys optical (SPR), piezoelectric (QCM),
impedimetric and potentiometric biosensing alongside the amperometric
platform it develops.  This package gives each class a working model with
the same calibration-facing interface (signal vs. concentration), so the
taxonomy can be compared quantitatively — see
``examples/transduction_comparison.py``.
"""

from repro.transducers.spr import SprSensor
from repro.transducers.qcm import QuartzCrystalMicrobalance, sauerbrey_shift_hz
from repro.transducers.potentiometric import IonSelectiveElectrode
from repro.transducers.immunosensor import FaradicImmunosensor

__all__ = [
    "SprSensor",
    "QuartzCrystalMicrobalance",
    "sauerbrey_shift_hz",
    "IonSelectiveElectrode",
    "FaradicImmunosensor",
]
