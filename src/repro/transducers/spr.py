"""Surface plasmon resonance (SPR) biosensor model.

Section 2.3: "If the excitation frequency matches the oscillation frequency
of surface charge density, electromagnetic waves propagate along the
interface ... as soon as the dielectric changes (because the target
molecules bind the receptor), there is also a change in the refractive
index."  The model converts receptor occupancy into a refractive-index
shift of the sensing layer and then into the resonance-angle shift an SPR
instrument reports (in millidegrees).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SprSensor:
    """Angle-interrogated SPR sensor with an antibody layer.

    Attributes:
        kd_molar: receptor-target dissociation constant [mol/L].
        max_index_shift: refractive-index change of the probed volume at
            full receptor occupancy (protein monolayers give ~1e-3).
        angle_sensitivity_deg_per_riu: instrument constant [degrees per
            refractive-index unit]; ~100 deg/RIU is typical for
            Kretschmann prisms.
        noise_millideg: angular resolution (1 sigma) of the readout.
    """

    kd_molar: float = 1e-9
    max_index_shift: float = 1.2e-3
    angle_sensitivity_deg_per_riu: float = 100.0
    noise_millideg: float = 0.05

    def __post_init__(self) -> None:
        if self.kd_molar <= 0:
            raise ValueError("Kd must be > 0")
        if self.max_index_shift <= 0:
            raise ValueError("index shift must be > 0")
        if self.angle_sensitivity_deg_per_riu <= 0:
            raise ValueError("angle sensitivity must be > 0")
        if self.noise_millideg < 0:
            raise ValueError("noise must be >= 0")

    def occupancy(self, concentration_molar: np.ndarray | float
                  ) -> np.ndarray | float:
        """Langmuir receptor occupancy at equilibrium."""
        conc = np.asarray(concentration_molar, dtype=float)
        if np.any(conc < 0):
            raise ValueError("concentrations must be >= 0")
        value = conc / (self.kd_molar + conc)
        if np.isscalar(concentration_molar):
            return float(value)
        return value

    def angle_shift_millideg(self,
                             concentration_molar: np.ndarray | float,
                             rng: np.random.Generator | None = None
                             ) -> np.ndarray | float:
        """Resonance-angle shift [mdeg] at ``concentration_molar``.

        ``d_theta = theta_sens * dn_max * occupancy`` (+ readout noise
        when an RNG is provided).
        """
        occupancy = self.occupancy(concentration_molar)
        shift = (self.angle_sensitivity_deg_per_riu * self.max_index_shift
                 * np.asarray(occupancy) * 1e3)
        if rng is not None and self.noise_millideg > 0:
            shift = shift + rng.normal(0.0, self.noise_millideg,
                                       np.shape(shift) or None)
        if np.isscalar(concentration_molar):
            return float(shift)
        return shift

    def limit_of_detection_molar(self) -> float:
        """LOD [mol/L]: concentration producing a 3-sigma angle shift.

        Inverts the Langmuir response at the 3-sigma shift; for shifts
        deep in the linear regime this reduces to
        ``3 sigma Kd / full_scale``.
        """
        full_scale = (self.angle_sensitivity_deg_per_riu
                      * self.max_index_shift * 1e3)
        threshold = 3.0 * self.noise_millideg
        if threshold >= full_scale:
            return float("inf")
        fraction = threshold / full_scale
        return self.kd_molar * fraction / (1.0 - fraction)
