"""Faradic impedimetric immunosensor (section 2.3, ref [37]).

"The Faradic impedimetric biosensors foresee to couple the antibody with a
redox probe: the measured property is the charge transfer resistance."
Antigen binding blocks the interface; the Rct increase read from the
Nyquist semicircle is the calibration signal.  Built on the Randles model
of :mod:`repro.chem.impedance`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.impedance import RandlesCircuit, binding_rct_shift


@dataclass(frozen=True)
class FaradicImmunosensor:
    """Antibody electrode read out by EIS in a redox-probe solution.

    Attributes:
        baseline: Randles circuit of the antibody-modified electrode in
            the probe solution, before any antigen.
        kd_molar: antibody-antigen dissociation constant [mol/L].
        max_blocking: interfacial blocking at full occupancy (0..1).
        rct_noise_ohm: repeatability (1 sigma) of an Rct fit [ohm].
    """

    baseline: RandlesCircuit
    kd_molar: float = 1e-9
    max_blocking: float = 0.9
    rct_noise_ohm: float = 50.0

    def __post_init__(self) -> None:
        if self.kd_molar <= 0:
            raise ValueError("Kd must be > 0")
        if not 0.0 < self.max_blocking < 1.0:
            raise ValueError("max blocking must be in (0, 1)")
        if self.rct_noise_ohm < 0:
            raise ValueError("Rct noise must be >= 0")

    def occupancy(self, concentration_molar: float) -> float:
        """Langmuir antigen occupancy at equilibrium."""
        if concentration_molar < 0:
            raise ValueError("concentration must be >= 0")
        return concentration_molar / (self.kd_molar + concentration_molar)

    def circuit_at(self, concentration_molar: float) -> RandlesCircuit:
        """Randles circuit after exposure to ``concentration_molar``."""
        return binding_rct_shift(self.baseline,
                                 self.occupancy(concentration_molar),
                                 self.max_blocking)

    def rct_shift_ohm(self,
                      concentration_molar: float,
                      rng: np.random.Generator | None = None) -> float:
        """Measured Rct increase over baseline [ohm].

        The quantity an EIS immunoassay reports; noisy when an RNG is
        provided.
        """
        shifted = self.circuit_at(concentration_molar)
        delta = (shifted.charge_transfer_resistance_ohm
                 - self.baseline.charge_transfer_resistance_ohm)
        if rng is not None and self.rct_noise_ohm > 0:
            delta += float(rng.normal(0.0, self.rct_noise_ohm))
        return delta

    def spectrum_at(self,
                    concentration_molar: float,
                    f_low_hz: float = 0.1,
                    f_high_hz: float = 1e5,
                    n_points: int = 50):
        """Full EIS spectrum after antigen exposure (for Nyquist plots)."""
        return self.circuit_at(concentration_molar).spectrum(
            f_low_hz, f_high_hz, n_points)

    def limit_of_detection_molar(self) -> float:
        """LOD [mol/L]: antigen level giving a 3-sigma Rct shift."""
        threshold = 3.0 * self.rct_noise_ohm
        rct0 = self.baseline.charge_transfer_resistance_ohm
        # Solve Rct0 / (1 - theta*B) - Rct0 = threshold for theta.
        blocked_fraction = threshold / (threshold + rct0)
        occupancy = blocked_fraction / self.max_blocking
        if occupancy >= 1.0:
            return float("inf")
        return self.kd_molar * occupancy / (1.0 - occupancy)
