"""Potentiometric (ion-selective electrode) biosensor model.

Section 2.3: "The catalyzed reaction promoted by the enzyme can result in a
variation of the electrode potential, while no current flows. ...
Potentiometric biosensors have been developed for urea detection in blood,
creatinine in biological fluids."  The Nikolsky-Eisenman equation extends
the Nernstian response with interfering-ion selectivity coefficients — the
figure of merit of ion-selective membranes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.constants import STANDARD_TEMPERATURE, nernst_slope


@dataclass(frozen=True)
class IonSelectiveElectrode:
    """Ion-selective electrode with Nikolsky-Eisenman response.

    Attributes:
        ion_charge: charge number of the primary ion (e.g. +1 for NH4+
            from a urease biosensor).
        standard_potential_v: cell potential at unit activity [V].
        selectivity: interferent name -> selectivity coefficient
            ``K_ij`` (smaller is better; 0 = perfectly selective).
        interferent_charges: interferent name -> charge number.
        detection_floor_molar: background level below which the membrane
            response flattens (sets the practical LOD).
    """

    ion_charge: int = 1
    standard_potential_v: float = 0.0
    selectivity: dict[str, float] = field(default_factory=dict)
    interferent_charges: dict[str, int] = field(default_factory=dict)
    detection_floor_molar: float = 1e-7

    def __post_init__(self) -> None:
        if self.ion_charge == 0:
            raise ValueError("ion charge must be non-zero")
        if self.detection_floor_molar <= 0:
            raise ValueError("detection floor must be > 0")
        for name, coefficient in self.selectivity.items():
            if coefficient < 0:
                raise ValueError(f"selectivity for {name!r} must be >= 0")
            if name not in self.interferent_charges:
                raise ValueError(f"missing charge number for {name!r}")

    def slope_v_per_decade(self,
                           temperature_k: float = STANDARD_TEMPERATURE
                           ) -> float:
        """Nernstian slope [V/decade]: 59.2/z mV at 25 C."""
        return (nernst_slope(abs(self.ion_charge), temperature_k)
                * math.log(10.0))

    def effective_activity(self,
                           primary_molar: float,
                           interferents_molar: dict[str, float]
                           | None = None) -> float:
        """Nikolsky-Eisenman effective activity [mol/L].

        ``a_eff = a_i + sum_j K_ij a_j^(z_i/z_j)`` plus the membrane's
        detection floor.
        """
        if primary_molar < 0:
            raise ValueError("primary activity must be >= 0")
        total = primary_molar + self.detection_floor_molar
        for name, level in (interferents_molar or {}).items():
            if level < 0:
                raise ValueError(f"activity of {name!r} must be >= 0")
            if name not in self.selectivity:
                continue
            exponent = self.ion_charge / self.interferent_charges[name]
            total += self.selectivity[name] * level ** exponent
        return total

    def potential_v(self,
                    primary_molar: float,
                    interferents_molar: dict[str, float] | None = None,
                    temperature_k: float = STANDARD_TEMPERATURE) -> float:
        """Electrode potential [V] vs the reference.

        ``E = E0 + (slope/ln10) ln(a_eff)`` with the Nernst sign set by
        the ion charge.
        """
        activity = self.effective_activity(primary_molar, interferents_molar)
        sign = 1.0 if self.ion_charge > 0 else -1.0
        return (self.standard_potential_v
                + sign * self.slope_v_per_decade(temperature_k)
                * math.log10(activity))

    def interference_error_molar(self,
                                 primary_molar: float,
                                 interferents_molar: dict[str, float]
                                 ) -> float:
        """Apparent concentration excess [mol/L] caused by interferents."""
        with_interferents = self.effective_activity(primary_molar,
                                                    interferents_molar)
        without = self.effective_activity(primary_molar, None)
        return with_interferents - without

    def limit_of_detection_molar(self) -> float:
        """Practical LOD [mol/L] — where the floor bends the calibration.

        IUPAC places it at the intersection of the Nernstian and flat
        segments, i.e. at the detection floor itself.
        """
        return self.detection_floor_molar
