"""Quartz crystal microbalance (QCM) biosensor model.

Section 2.3: "Piezoelectric biosensors typically detect mass variation ...
once the sensing element binds the target, the mass of the system varies
and shifts the resonance frequency."  The Sauerbrey equation converts the
bound areal mass into the frequency shift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Density of quartz [kg/m^3].
_QUARTZ_DENSITY = 2648.0

#: Shear modulus of AT-cut quartz [Pa].
_QUARTZ_SHEAR_MODULUS = 2.947e10


def sauerbrey_shift_hz(fundamental_hz: float,
                       areal_mass_kg_m2: float) -> float:
    """Sauerbrey frequency shift [Hz] (negative for added mass).

    ``df = -2 f0^2 dm / sqrt(rho_q mu_q)``
    """
    if fundamental_hz <= 0:
        raise ValueError("fundamental frequency must be > 0")
    if areal_mass_kg_m2 < 0:
        raise ValueError("areal mass must be >= 0")
    return (-2.0 * fundamental_hz ** 2 * areal_mass_kg_m2
            / math.sqrt(_QUARTZ_DENSITY * _QUARTZ_SHEAR_MODULUS))


@dataclass(frozen=True)
class QuartzCrystalMicrobalance:
    """QCM immunosensor: antibody layer on a quartz disk.

    Attributes:
        fundamental_hz: crystal fundamental (5-10 MHz typical).
        receptor_density_m2: antibody sites per area [1/m^2].
        target_mass_kg: mass of one bound target molecule [kg]
            (150 kDa IgG: ~2.5e-22 kg).
        kd_molar: binding dissociation constant [mol/L].
        noise_hz: frequency-readout resolution (1 sigma) [Hz].
    """

    fundamental_hz: float = 10e6
    receptor_density_m2: float = 2e15
    target_mass_kg: float = 2.5e-22
    kd_molar: float = 5e-9
    noise_hz: float = 1.0

    def __post_init__(self) -> None:
        if self.fundamental_hz <= 0:
            raise ValueError("fundamental must be > 0")
        if self.receptor_density_m2 <= 0:
            raise ValueError("receptor density must be > 0")
        if self.target_mass_kg <= 0:
            raise ValueError("target mass must be > 0")
        if self.kd_molar <= 0:
            raise ValueError("Kd must be > 0")
        if self.noise_hz < 0:
            raise ValueError("noise must be >= 0")

    def mass_sensitivity_hz_per_kg_m2(self) -> float:
        """|df/dm| [Hz per kg/m^2] — the Sauerbrey constant of the disk."""
        return abs(sauerbrey_shift_hz(self.fundamental_hz, 1.0))

    def bound_mass_kg_m2(self, concentration_molar: float) -> float:
        """Bound areal mass [kg/m^2] at equilibrium."""
        if concentration_molar < 0:
            raise ValueError("concentration must be >= 0")
        occupancy = concentration_molar / (self.kd_molar
                                           + concentration_molar)
        return self.receptor_density_m2 * occupancy * self.target_mass_kg

    def frequency_shift_hz(self,
                           concentration_molar: float,
                           rng: np.random.Generator | None = None) -> float:
        """Measured frequency shift [Hz] (negative; noisy when rng given)."""
        shift = sauerbrey_shift_hz(
            self.fundamental_hz, self.bound_mass_kg_m2(concentration_molar))
        if rng is not None and self.noise_hz > 0:
            shift += float(rng.normal(0.0, self.noise_hz))
        return shift

    def limit_of_detection_molar(self) -> float:
        """LOD [mol/L]: concentration giving a 3-sigma frequency shift."""
        full_scale = abs(sauerbrey_shift_hz(
            self.fundamental_hz,
            self.receptor_density_m2 * self.target_mass_kg))
        threshold = 3.0 * self.noise_hz
        if threshold >= full_scale:
            return float("inf")
        fraction = threshold / full_scale
        return self.kd_molar * fraction / (1.0 - fraction)
