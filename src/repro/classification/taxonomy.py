"""The five-axis biosensor taxonomy of paper section 2.

Section 3 opens by classifying the authors' own device along these axes:

* Target: molecules, drugs
* Sensing element: enzymes
* Transduction mechanism: electrochemical (amperometric)
* Nanotechnology-based: carbon nanotubes
* Electrode type: disposable, integrated

:func:`describe_platform_sensor` reproduces that bullet list for any
composed :class:`repro.core.sensor.Biosensor`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TargetKind(enum.Enum):
    """What the biosensor detects (section 2.1)."""

    DNA = "DNA"
    METABOLITE = "metabolite"
    BIOMARKER = "biomarker"
    DRUG = "drug"
    PATHOGEN = "pathogen"


class SensingElement(enum.Enum):
    """The biological recognition layer (section 2.2)."""

    ENZYME = "enzyme"
    ANTIBODY = "antibody"
    NUCLEIC_ACID = "nucleic acid"
    RECEPTOR = "receptor"


class Transduction(enum.Enum):
    """How recognition becomes a measurable signal (section 2.3)."""

    OPTICAL = "optical"
    SURFACE_PLASMON_RESONANCE = "surface plasmon resonance"
    PIEZOELECTRIC = "piezoelectric (QCM)"
    IMPEDIMETRIC_CAPACITIVE = "impedimetric (capacitive)"
    IMPEDIMETRIC_FARADIC = "impedimetric (faradic)"
    POTENTIOMETRIC = "potentiometric"
    FIELD_EFFECT = "ion charge / field effect"
    AMPEROMETRIC = "amperometric"


class NanomaterialKind(enum.Enum):
    """Nanostructuring technology (section 2.4)."""

    NONE = "none"
    NANOPARTICLE = "nanoparticle"
    QUANTUM_DOT = "quantum dot"
    NANOWIRE = "nanowire"
    CARBON_NANOTUBE = "carbon nanotube"


class ElectrodeTechnology(enum.Enum):
    """Electrode manufacturing/deployment model (section 2.5)."""

    DISPOSABLE = "disposable"
    INTEGRATED = "integrated"
    DISPOSABLE_INTEGRATED = "disposable, integrated"
    IMPLANTABLE = "implantable"


@dataclass(frozen=True)
class SensorDescriptor:
    """Position of one sensor in the five-axis classification."""

    target: TargetKind
    sensing_element: SensingElement
    transduction: Transduction
    nanomaterial: NanomaterialKind
    electrode: ElectrodeTechnology

    def bullets(self) -> list[str]:
        """Render the section 3 bullet-list form of the descriptor."""
        return [
            f"Target: {self.target.value}",
            f"Sensing element: {self.sensing_element.value}",
            f"Transduction mechanism: electrochemical ({self.transduction.value})"
            if self.transduction is Transduction.AMPEROMETRIC
            else f"Transduction mechanism: {self.transduction.value}",
            f"Nanotechnology-based: {self.nanomaterial.value}",
            f"Electrode type: {self.electrode.value}",
        ]


def describe_platform_sensor(sensor) -> SensorDescriptor:
    """Classify a composed :class:`repro.core.sensor.Biosensor`.

    Reproduces the paper's own self-classification for its platform; the
    function inspects only the public composition of the sensor.
    """
    from repro.analytes.catalog import AnalyteClass

    target_map = {
        AnalyteClass.METABOLITE: TargetKind.METABOLITE,
        AnalyteClass.FATTY_ACID: TargetKind.METABOLITE,
        AnalyteClass.DRUG: TargetKind.DRUG,
        AnalyteClass.BIOMARKER: TargetKind.BIOMARKER,
        AnalyteClass.NUCLEIC_ACID: TargetKind.DNA,
    }
    nanomaterial = (NanomaterialKind.CARBON_NANOTUBE
                    if sensor.film.has_nanotubes else NanomaterialKind.NONE)
    return SensorDescriptor(
        target=target_map[sensor.analyte.analyte_class],
        sensing_element=SensingElement.ENZYME,
        transduction=Transduction.AMPEROMETRIC,
        nanomaterial=nanomaterial,
        electrode=ElectrodeTechnology.DISPOSABLE_INTEGRATED,
    )
