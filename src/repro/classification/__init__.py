"""Section 2 of the paper as a queryable data model.

The paper's first half is a systematic classification of biosensors along
five axes — target, sensing element, transduction mechanism, nanomaterial,
electrode technology — populated with the literature it surveys.  This
package encodes the taxonomy and the surveyed sensor database so the
examples can answer questions like "which electrochemical CNT-based
glucose sensors does the paper discuss, and how do they rank?".
"""

from repro.classification.taxonomy import (
    TargetKind,
    SensingElement,
    Transduction,
    NanomaterialKind,
    ElectrodeTechnology,
    SensorDescriptor,
    describe_platform_sensor,
)
from repro.classification.literature import (
    LiteratureSensor,
    LITERATURE_SENSORS,
    find_sensors,
    transduction_census,
)

__all__ = [
    "TargetKind",
    "SensingElement",
    "Transduction",
    "NanomaterialKind",
    "ElectrodeTechnology",
    "SensorDescriptor",
    "describe_platform_sensor",
    "LiteratureSensor",
    "LITERATURE_SENSORS",
    "find_sensors",
    "transduction_census",
]
