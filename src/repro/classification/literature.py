"""Database of the biosensors surveyed in paper section 2.

A queryable record of the literature the classification cites: each entry
carries its position in the five-axis taxonomy plus the paper's bracketed
reference.  The census helpers quantify the paper's qualitative claims
("electrochemical biosensors are by far the most reported devices").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.classification.taxonomy import (
    ElectrodeTechnology,
    NanomaterialKind,
    SensingElement,
    TargetKind,
    Transduction,
)


@dataclass(frozen=True)
class LiteratureSensor:
    """One surveyed biosensor system.

    Attributes:
        name: short system description.
        reference: bracketed citation as printed in the paper.
        target: detected target kind.
        analyte: specific analyte, when the paper names one.
        sensing_element: recognition layer.
        transduction: transduction mechanism.
        nanomaterial: nanostructuring technology.
        electrode: electrode technology model.
    """

    name: str
    reference: str
    target: TargetKind
    analyte: str
    sensing_element: SensingElement
    transduction: Transduction
    nanomaterial: NanomaterialKind
    electrode: ElectrodeTechnology


LITERATURE_SENSORS: tuple[LiteratureSensor, ...] = (
    LiteratureSensor(
        "light-generated oligonucleotide microarray", "[35]",
        TargetKind.DNA, "DNA sequence", SensingElement.NUCLEIC_ACID,
        Transduction.OPTICAL, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "label-free electronic DNA chip", "[45]",
        TargetKind.DNA, "DNA hybridization", SensingElement.NUCLEIC_ACID,
        Transduction.IMPEDIMETRIC_CAPACITIVE, NanomaterialKind.NONE,
        ElectrodeTechnology.INTEGRATED),
    LiteratureSensor(
        "home blood glucose meter strip", "[30]",
        TargetKind.METABOLITE, "glucose", SensingElement.ENZYME,
        Transduction.AMPEROMETRIC, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "amperometric lactate sensor (sports medicine)", "[31]",
        TargetKind.METABOLITE, "lactate", SensingElement.ENZYME,
        Transduction.AMPEROMETRIC, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "cobalt-oxide nanostructured cholesterol sensor", "[43]",
        TargetKind.METABOLITE, "cholesterol", SensingElement.ENZYME,
        Transduction.AMPEROMETRIC, NanomaterialKind.NANOPARTICLE,
        ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "in-vivo glutamate microsensor", "[38]",
        TargetKind.METABOLITE, "glutamate", SensingElement.ENZYME,
        Transduction.AMPEROMETRIC, NanomaterialKind.NONE,
        ElectrodeTechnology.IMPLANTABLE),
    LiteratureSensor(
        "creatinine potentiometric biosensor", "[21]",
        TargetKind.METABOLITE, "creatinine", SensingElement.ENZYME,
        Transduction.POTENTIOMETRIC, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "multiplexed PSA electrochemical assay", "[58]",
        TargetKind.BIOMARKER, "prostate specific antigen",
        SensingElement.ANTIBODY, Transduction.AMPEROMETRIC,
        NanomaterialKind.NONE, ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "CA-125 immuno-bioanalysis (AuNP carbon paste)", "[47]",
        TargetKind.BIOMARKER, "carcinoma antigen 125",
        SensingElement.ANTIBODY, Transduction.AMPEROMETRIC,
        NanomaterialKind.NANOPARTICLE, ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "SPR autoimmune-biomarker panel", "[11]",
        TargetKind.BIOMARKER, "auto-antibodies", SensingElement.ANTIBODY,
        Transduction.SURFACE_PLASMON_RESONANCE, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "QCM immunoassay / pathogen detector", "[13]",
        TargetKind.PATHOGEN, "bacteria / DNA", SensingElement.ANTIBODY,
        Transduction.PIEZOELECTRIC, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "faradic impedimetric immunosensor", "[37]",
        TargetKind.BIOMARKER, "antigen", SensingElement.ANTIBODY,
        Transduction.IMPEDIMETRIC_FARADIC, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "capacitive microsystem biosensor", "[50]",
        TargetKind.DNA, "DNA / tumor biomarkers", SensingElement.NUCLEIC_ACID,
        Transduction.IMPEDIMETRIC_CAPACITIVE, NanomaterialKind.NONE,
        ElectrodeTechnology.INTEGRATED),
    LiteratureSensor(
        "CNT-FET prostate-cancer diagnostic", "[22]",
        TargetKind.BIOMARKER, "PSA", SensingElement.ANTIBODY,
        Transduction.FIELD_EFFECT, NanomaterialKind.CARBON_NANOTUBE,
        ElectrodeTechnology.INTEGRATED),
    LiteratureSensor(
        "ISFET biological sensor", "[24]",
        TargetKind.METABOLITE, "ions / pH", SensingElement.RECEPTOR,
        Transduction.FIELD_EFFECT, NanomaterialKind.NONE,
        ElectrodeTechnology.INTEGRATED),
    LiteratureSensor(
        "nanowire conductometric biosensor", "[39]",
        TargetKind.BIOMARKER, "proteins", SensingElement.ANTIBODY,
        Transduction.FIELD_EFFECT, NanomaterialKind.NANOWIRE,
        ElectrodeTechnology.INTEGRATED),
    LiteratureSensor(
        "theophylline / drug amperometric monitors", "[53]",
        TargetKind.DRUG, "theophylline et al.", SensingElement.ENZYME,
        Transduction.AMPEROMETRIC, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "multi-panel P450 drug detector in serum", "[9]",
        TargetKind.DRUG, "benzphetamine, cyclophosphamide, ...",
        SensingElement.ENZYME, Transduction.AMPEROMETRIC,
        NanomaterialKind.CARBON_NANOTUBE, ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "DNA-modified CP sensor (DPV)", "[32]",
        TargetKind.DRUG, "cyclophosphamide", SensingElement.NUCLEIC_ACID,
        Transduction.AMPEROMETRIC, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE),
    LiteratureSensor(
        "3-D integrated bio-electronic interface", "[17]",
        TargetKind.DNA, "generic probes", SensingElement.NUCLEIC_ACID,
        Transduction.IMPEDIMETRIC_CAPACITIVE, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE_INTEGRATED),
    LiteratureSensor(
        "porous-silicon P450 arachidonic acid sensor", "[14]",
        TargetKind.METABOLITE, "arachidonic acid", SensingElement.ENZYME,
        Transduction.OPTICAL, NanomaterialKind.NONE,
        ElectrodeTechnology.DISPOSABLE),
)


def find_sensors(target: TargetKind | None = None,
                 sensing_element: SensingElement | None = None,
                 transduction: Transduction | None = None,
                 nanomaterial: NanomaterialKind | None = None,
                 electrode: ElectrodeTechnology | None = None,
                 ) -> list[LiteratureSensor]:
    """Filter the survey database on any combination of axes."""
    results = []
    for sensor in LITERATURE_SENSORS:
        if target is not None and sensor.target is not target:
            continue
        if (sensing_element is not None
                and sensor.sensing_element is not sensing_element):
            continue
        if transduction is not None and sensor.transduction is not transduction:
            continue
        if nanomaterial is not None and sensor.nanomaterial is not nanomaterial:
            continue
        if electrode is not None and sensor.electrode is not electrode:
            continue
        results.append(sensor)
    return results


def transduction_census() -> dict[Transduction, int]:
    """Count surveyed sensors per transduction mechanism.

    Quantifies the paper's claim that electrochemical (amperometric)
    devices are "by far the most reported devices in literature".
    """
    counts = Counter(sensor.transduction for sensor in LITERATURE_SENSORS)
    return dict(counts)
