"""Dosing controllers: the decision side of the closed loop.

A controller turns sensor readouts into the next dose.  Three rungs of
sophistication are provided, mirroring clinical practice:

* :class:`FixedRegimenController` — population dosing, no feedback (the
  baseline every personalization claim is measured against);
* :class:`ProportionalTroughController` — reactive titration: scale the
  dose by the ratio of target to measured trough;
* :class:`BayesianTroughController` — model-informed precision dosing:
  refit the *individual's* clearance from the noisy trough readouts
  (MAP over a lognormal population prior), then invert the PK model for
  the dose that lands the next trough on target.

Controllers are **stateless and vectorized**: `next_doses` is a pure
function of the observation (dose + readout history), evaluated
elementwise across the cohort.  That is what lets the therapy engine
run one patient or a thousand through identical arithmetic — the
scalar/vector equivalence contract of :mod:`repro.engine.therapy` —
and replay any decision from the recorded history.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.pk.dosing import steady_state_trough_per_mol
from repro.pk.models import OneCompartmentPK, PKParams, Route


@dataclass(frozen=True)
class RegimenSpec:
    """The dosing grid a controller operates on.

    Attributes:
        dose_interval_h: time between administrations [h].
        n_doses: number of administrations in the course.
        route: administration route shared by the course.
        infusion_duration_h: infusion duration [h] (INFUSION only).
    """

    dose_interval_h: float
    n_doses: int
    route: Route = Route.ORAL
    infusion_duration_h: float = 0.0

    def __post_init__(self) -> None:
        if self.dose_interval_h <= 0:
            raise ValueError("dose interval must be > 0")
        if self.n_doses < 1:
            raise ValueError("need at least one dose")
        if self.route is Route.INFUSION and self.infusion_duration_h <= 0:
            raise ValueError("infusions need a duration > 0")


@dataclass(frozen=True)
class ControllerObservation:
    """Everything a controller may condition the next dose on.

    Attributes:
        regimen: the dosing grid.
        interval_index: index of the dose about to be given (>= 1; the
            initial dose is produced by
            :meth:`DosingController.initial_doses` instead).
        time_h: administration time of the upcoming dose [h].
        dose_times_h: past administration times [h], ``(k,)``.
        doses_mol: past doses [mol], ``(n_patients, k)``.
        trough_times_h: times of the trough readouts [h], ``(k,)`` (the
            last sensor sample of each elapsed interval).
        trough_estimates_molar: sensor-estimated trough levels [mol/L],
            ``(n_patients, k)`` — either the raw linear inversion of the
            instrument chain's reading, or (when the therapy plan runs
            the trough filter) the Kalman-filtered posterior mean.
        trough_variances_molar2: posterior variances of the trough
            estimates [mol^2/L^2], ``(n_patients, k)``; ``None`` when
            the readouts are raw (no uncertainty quantification).
            Variance-aware controllers weight each trough by its
            precision instead of assuming one fixed readout sigma.
    """

    regimen: RegimenSpec
    interval_index: int
    time_h: float
    dose_times_h: np.ndarray
    doses_mol: np.ndarray
    trough_times_h: np.ndarray
    trough_estimates_molar: np.ndarray
    trough_variances_molar2: np.ndarray | None = None

    @property
    def n_patients(self) -> int:
        """Cohort size of the observation."""
        return int(self.doses_mol.shape[0])


class DosingController(abc.ABC):
    """Interface every dosing policy implements (stateless, batch)."""

    @abc.abstractmethod
    def initial_doses(self, n_patients: int,
                      regimen: RegimenSpec) -> np.ndarray:
        """First dose per patient [mol], before any readout exists."""

    @abc.abstractmethod
    def next_doses(self, observation: ControllerObservation) -> np.ndarray:
        """Next dose per patient [mol] given the history so far."""


@dataclass(frozen=True)
class FixedRegimenController(DosingController):
    """Population dosing: the same dose for everyone, forever.

    Attributes:
        dose_mol: the fixed dose [mol].
    """

    dose_mol: float

    def __post_init__(self) -> None:
        if self.dose_mol < 0:
            raise ValueError("dose must be >= 0")

    def initial_doses(self, n_patients: int,
                      regimen: RegimenSpec) -> np.ndarray:
        """The fixed dose, for every patient."""
        return np.full(n_patients, self.dose_mol)

    def next_doses(self, observation: ControllerObservation) -> np.ndarray:
        """The fixed dose again — feedback is ignored by design."""
        return np.full(observation.n_patients, self.dose_mol)


@dataclass(frozen=True)
class ProportionalTroughController(DosingController):
    """Reactive titration: scale the dose by target/measured trough.

    The protocol a ward runs without a PK model: if the last trough read
    30 % high, cut the dose 30 % (clamped).  Robust floors keep a noisy
    or zero readout from producing unbounded adjustments.

    Attributes:
        initial_dose_mol: starting dose [mol].
        target_trough_molar: the trough level to hold [mol/L].
        max_adjust: per-interval dose-change factor clamp (> 1).
        dose_min_mol / dose_max_mol: absolute dose clamps [mol].
        trough_floor_fraction: readouts below this fraction of the
            target are floored before dividing (sensor dropout guard).
    """

    initial_dose_mol: float
    target_trough_molar: float
    max_adjust: float = 2.5
    dose_min_mol: float = 0.0
    dose_max_mol: float = np.inf
    trough_floor_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.initial_dose_mol < 0:
            raise ValueError("initial dose must be >= 0")
        if self.target_trough_molar <= 0:
            raise ValueError("target trough must be > 0")
        if self.max_adjust <= 1.0:
            raise ValueError("max adjust factor must be > 1")
        if not 0.0 <= self.dose_min_mol <= self.dose_max_mol:
            raise ValueError("need 0 <= dose_min <= dose_max")
        if not 0.0 < self.trough_floor_fraction < 1.0:
            raise ValueError("trough floor fraction must be in (0, 1)")

    def initial_doses(self, n_patients: int,
                      regimen: RegimenSpec) -> np.ndarray:
        """The configured starting dose, for every patient."""
        return np.full(n_patients, self.initial_dose_mol)

    def next_doses(self, observation: ControllerObservation) -> np.ndarray:
        """Previous dose scaled by the clamped target/trough ratio."""
        previous = observation.doses_mol[:, -1]
        trough = np.maximum(
            observation.trough_estimates_molar[:, -1],
            self.trough_floor_fraction * self.target_trough_molar)
        ratio = np.clip(self.target_trough_molar / trough,
                        1.0 / self.max_adjust, self.max_adjust)
        return np.clip(previous * ratio,
                       self.dose_min_mol, self.dose_max_mol)


@dataclass(frozen=True)
class BayesianTroughController(DosingController):
    """Model-informed precision dosing (MAP refit of clearance).

    The personalized-medicine controller: assume the population
    one-compartment model, treat the individual's clearance as the
    unknown (lognormal prior around the population typical value,
    shape ``clearance_cv``), and refit it after every interval from the
    trough readouts by maximum a-posteriori estimation on a log-spaced
    clearance grid.  The next dose is then the PK model inverted for
    the target trough — superposition makes the prediction linear in
    the dose, so the inversion is closed-form.

    Poor metabolizers (clearance far below typical) are recognized
    after one or two troughs and their dose cut *before* sustained
    overexposure; ultrarapid metabolizers are raised symmetrically —
    the behavior the acceptance tests gate against fixed dosing.

    Attributes:
        prior: population-typical one-compartment model (V, ka, F are
            taken as known; clearance is the refit target).
        target_trough_molar: the trough level to hold [mol/L].
        clearance_cv: lognormal prior coefficient of variation.
        observation_sigma_molar: 1-sigma readout noise assumed by the
            likelihood [mol/L].
        initial_dose_mol: starting dose [mol]; ``None`` doses the prior
            patient to target (steady-state inversion).
        dose_min_mol / dose_max_mol: absolute dose clamps [mol].
        n_grid: clearance grid resolution of the MAP search.
        grid_span_sd: grid half-width in prior standard deviations.
    """

    prior: OneCompartmentPK
    target_trough_molar: float
    clearance_cv: float = 0.5
    observation_sigma_molar: float = 1.0e-7
    initial_dose_mol: float | None = None
    dose_min_mol: float = 0.0
    dose_max_mol: float = np.inf
    n_grid: int = 61
    grid_span_sd: float = 4.0

    def __post_init__(self) -> None:
        if self.target_trough_molar <= 0:
            raise ValueError("target trough must be > 0")
        if self.clearance_cv <= 0:
            raise ValueError("clearance CV must be > 0")
        if self.observation_sigma_molar <= 0:
            raise ValueError("observation sigma must be > 0")
        if self.initial_dose_mol is not None and self.initial_dose_mol < 0:
            raise ValueError("initial dose must be >= 0")
        if not 0.0 <= self.dose_min_mol <= self.dose_max_mol:
            raise ValueError("need 0 <= dose_min <= dose_max")
        if self.n_grid < 3:
            raise ValueError("need at least 3 grid points")
        if self.grid_span_sd <= 0:
            raise ValueError("grid span must be > 0")

    @property
    def _omega(self) -> float:
        """Lognormal prior shape parameter of the clearance."""
        return float(np.sqrt(np.log1p(self.clearance_cv ** 2)))

    def _clearance_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """The (z-scores, clearance values) of the MAP search grid."""
        z = np.linspace(-self.grid_span_sd, self.grid_span_sd, self.n_grid)
        return z, self.prior.clearance_l_per_h * np.exp(self._omega * z)

    def _unit_response(self, dt_h: np.ndarray,
                       clearance_l_per_h: np.ndarray,
                       regimen: RegimenSpec) -> np.ndarray:
        """Prior-model unit response with clearance as the free axis."""
        params = PKParams(
            clearance_l_per_h=clearance_l_per_h,
            volume_l=np.full_like(clearance_l_per_h, self.prior.volume_l),
            ka_per_h=np.full_like(clearance_l_per_h, self.prior.ka_per_h),
            bioavailability=np.full_like(clearance_l_per_h,
                                         self.prior.bioavailability))
        return params.unit_response(dt_h, regimen.route,
                                    regimen.infusion_duration_h)

    def initial_doses(self, n_patients: int,
                      regimen: RegimenSpec) -> np.ndarray:
        """Dose the prior-typical patient to target (or the override)."""
        if self.initial_dose_mol is not None:
            return np.full(n_patients, self.initial_dose_mol)
        per_mol = float(steady_state_trough_per_mol(
            self.prior.params(), regimen.dose_interval_h,
            regimen.route, regimen.infusion_duration_h)[0])
        dose = float(np.clip(self.target_trough_molar / per_mol,
                             self.dose_min_mol, self.dose_max_mol))
        return np.full(n_patients, dose)

    def map_clearance(self,
                      observation: ControllerObservation) -> np.ndarray:
        """MAP clearance per patient from the trough readouts [L/h].

        Grid search over a log-spaced clearance axis: Gaussian readout
        likelihood around the superposed model prediction plus the
        lognormal prior penalty.  Each patient's optimum is independent,
        so the search runs as one ``(n_patients, n_grid)`` array pass.

        When the observation carries per-trough posterior variances
        (filtered readouts), the likelihood weights every trough by its
        own precision instead of the fixed ``observation_sigma_molar``
        — an early noisy trough then counts less than a late converged
        one.  Variances are floored at 1 % of the configured sigma's
        variance so a (near-)exact readout cannot dominate with
        unbounded weight.
        """
        z, clearances = self._clearance_grid()
        dose_times = observation.dose_times_h
        trough_times = observation.trough_times_h
        doses = observation.doses_mol
        # U[g, j, m]: unit response of grid-clearance g at trough j for
        # dose m.  Strictly-past doses only (dt > 0): the engine samples
        # trough j *before* administering the dose scheduled at that
        # instant, and the IV-bolus kernel is non-zero at dt = 0 — so
        # masking on dt, not the kernel, keeps the likelihood aligned
        # with what the sensor actually read for every route.
        dt = trough_times[:, None] - dose_times[None, :]
        unit = self._unit_response(
            dt.reshape(-1)[None, :], clearances,
            observation.regimen).reshape(self.n_grid, *dt.shape)
        unit = np.where(dt[None, :, :] > 0.0, unit, 0.0)
        # Accumulate over doses in fixed order: identical arithmetic for
        # a cohort and for any single-patient slice of it.
        predicted = np.zeros(
            (observation.n_patients, self.n_grid, trough_times.size))
        for m in range(dose_times.size):
            predicted += (doses[:, m][:, None, None]
                          * unit[None, :, :, m])
        residuals = (observation.trough_estimates_molar[:, None, :]
                     - predicted)
        variances = observation.trough_variances_molar2
        if variances is None:
            misfit = (np.sum(residuals ** 2, axis=2)
                      / (2.0 * self.observation_sigma_molar ** 2))
        else:
            floor = (0.1 * self.observation_sigma_molar) ** 2
            weights = 1.0 / (2.0 * np.maximum(variances, floor))
            misfit = np.sum(residuals ** 2 * weights[:, None, :], axis=2)
        objective = misfit + 0.5 * z[None, :] ** 2
        return clearances[np.argmin(objective, axis=1)]

    def next_doses(self, observation: ControllerObservation) -> np.ndarray:
        """Invert the refit model for the dose hitting the next trough.

        With clearance refit to ``CL_hat``, the next trough (one
        interval after the upcoming dose) is ``carryover + D * unit``
        — linear in the upcoming dose ``D`` — so the target-hitting
        dose is closed-form, then clamped to the configured range.
        """
        clearance = self.map_clearance(observation)
        regimen = observation.regimen
        next_trough_time = observation.time_h + regimen.dose_interval_h
        ages = next_trough_time - observation.dose_times_h
        unit_past = self._unit_response(
            ages[None, :], clearance, regimen)
        carryover = np.zeros(observation.n_patients)
        for m in range(ages.size):
            carryover += observation.doses_mol[:, m] * unit_past[:, m]
        unit_new = self._unit_response(
            np.array([regimen.dose_interval_h]), clearance,
            regimen)[:, 0]
        needed = np.where(unit_new > 0.0,
                          (self.target_trough_molar - carryover)
                          / np.where(unit_new > 0.0, unit_new, 1.0),
                          self.dose_max_mol)
        return np.clip(needed, self.dose_min_mol, self.dose_max_mol)
