"""Closed-loop therapy: dosing controllers and window metrics.

The decision layer of the personalized-medicine loop the paper motivates:
:mod:`repro.pk` says what a dose does, the sensor stack says what was
measured, and this package decides *what to give next* — from fixed
population dosing through reactive trough titration to model-informed
Bayesian individualization (:mod:`repro.therapy.controllers`) — and
scores the outcome against the therapeutic window
(:mod:`repro.therapy.metrics`).  The loop itself is closed by
:mod:`repro.engine.therapy`.
"""

from repro.therapy.controllers import (
    BayesianTroughController,
    ControllerObservation,
    DosingController,
    FixedRegimenController,
    ProportionalTroughController,
    RegimenSpec,
)
from repro.therapy.metrics import (
    auc_molar_h,
    fraction_above_window,
    fraction_below_window,
    overdose_exposure,
    time_in_range,
    trough_abs_rel_error,
)

__all__ = [
    "BayesianTroughController",
    "ControllerObservation",
    "DosingController",
    "FixedRegimenController",
    "ProportionalTroughController",
    "RegimenSpec",
    "auc_molar_h",
    "fraction_above_window",
    "fraction_below_window",
    "overdose_exposure",
    "time_in_range",
    "trough_abs_rel_error",
]
