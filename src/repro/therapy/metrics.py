"""Therapeutic-window metrics: how good was the dosing, per patient.

The closed-loop analogue of the monitor's MARD/time-in-spec pair: these
kernels score a therapy course from the *true* concentration traces the
engine simulated — time inside the window, trough-targeting error, and
the toxic exposure integral above the window ceiling.  All of them are
batch-shaped ``(n_patients, ...) -> (n_patients,)`` reductions, so a
cohort scores in one array pass.
"""

from __future__ import annotations

import numpy as np

from repro.pk.drugs import TherapeuticWindow


def _as_cohort(concentration_molar: np.ndarray) -> np.ndarray:
    """Validate and lift a concentration block to (n_patients, n_times)."""
    c = np.asarray(concentration_molar, dtype=float)
    if c.ndim == 1:
        c = c[None, :]
    if c.ndim != 2 or c.shape[1] < 1:
        raise ValueError(
            f"need a (n_patients, n_times) block, got shape {c.shape}")
    return c


def time_in_range(concentration_molar: np.ndarray,
                  window: TherapeuticWindow) -> np.ndarray:
    """Fraction of samples inside the therapeutic window, per patient.

    Args:
        concentration_molar: true levels, ``(n_patients, n_times)``.
        window: the therapeutic window.

    Returns:
        In-window fractions in [0, 1], shape ``(n_patients,)``.
    """
    c = _as_cohort(concentration_molar)
    inside = (c >= window.low_molar) & (c <= window.high_molar)
    return np.mean(inside, axis=1)


def fraction_below_window(concentration_molar: np.ndarray,
                          window: TherapeuticWindow) -> np.ndarray:
    """Fraction of samples below the window (sub-therapeutic), per patient."""
    c = _as_cohort(concentration_molar)
    return np.mean(c < window.low_molar, axis=1)


def fraction_above_window(concentration_molar: np.ndarray,
                          window: TherapeuticWindow) -> np.ndarray:
    """Fraction of samples above the window (toxic range), per patient."""
    c = _as_cohort(concentration_molar)
    return np.mean(c > window.high_molar, axis=1)


def trough_abs_rel_error(troughs_molar: np.ndarray,
                         target_trough_molar: float,
                         skip_first: int = 0) -> np.ndarray:
    """Mean absolute relative trough-targeting error, per patient.

    The closed loop's primary score: how far the realized troughs sit
    from the target, averaged over the course.  Early intervals may be
    excluded (``skip_first``) to score the *controlled* phase only — a
    controller cannot influence the very first trough.

    Args:
        troughs_molar: realized troughs, ``(n_patients, n_intervals)``.
        target_trough_molar: the target level [mol/L], > 0.
        skip_first: leading intervals to exclude from the average.

    Returns:
        Mean ``|trough - target| / target``, shape ``(n_patients,)``.
    """
    if target_trough_molar <= 0:
        raise ValueError("target trough must be > 0")
    troughs = _as_cohort(troughs_molar)
    if not 0 <= skip_first < troughs.shape[1]:
        raise ValueError("skip_first must leave at least one interval")
    scored = troughs[:, skip_first:]
    return np.mean(np.abs(scored - target_trough_molar)
                   / target_trough_molar, axis=1)


def overdose_exposure(concentration_molar: np.ndarray,
                      sample_period_h: float,
                      window: TherapeuticWindow) -> np.ndarray:
    """Toxic exposure integral above the window ceiling, per patient.

    ``integral max(C - high, 0) dt`` in [mol/L x h] — the cumulative
    overshoot a toxicity-driven dose reduction tries to null, evaluated
    as a rectangle sum on the engine's uniform sample grid.

    Args:
        concentration_molar: true levels, ``(n_patients, n_times)``.
        sample_period_h: grid spacing [h], > 0.
        window: the therapeutic window.

    Returns:
        Exposure above the ceiling, shape ``(n_patients,)``.
    """
    if sample_period_h <= 0:
        raise ValueError("sample period must be > 0")
    c = _as_cohort(concentration_molar)
    return np.sum(np.maximum(c - window.high_molar, 0.0),
                  axis=1) * sample_period_h


def auc_molar_h(concentration_molar: np.ndarray,
                sample_period_h: float) -> np.ndarray:
    """Total exposure (area under the curve) per patient [mol/L x h].

    Rectangle sum on the engine's uniform sample grid — the quantity
    clearance scales inversely with, useful for exposure matching.

    Args:
        concentration_molar: true levels, ``(n_patients, n_times)``.
        sample_period_h: grid spacing [h], > 0.

    Returns:
        AUC per patient, shape ``(n_patients,)``.
    """
    if sample_period_h <= 0:
        raise ValueError("sample period must be > 0")
    return np.sum(_as_cohort(concentration_molar), axis=1) * sample_period_h
