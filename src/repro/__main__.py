"""``python -m repro``: the scenario command line.

Thin alias for :mod:`repro.scenarios.cli` — ``run`` a scenario JSON
file through its registered workload, ``list`` the workloads,
``describe`` one.  (The table-regeneration CLI remains at
``python -m repro.experiments``.)
"""

from repro.scenarios.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
