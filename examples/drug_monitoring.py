"""Therapeutic drug monitoring with the CYP cyclic-voltammetry sensors.

The personalized-medicine scenario of the paper's introduction: an
anticancer drug (cyclophosphamide) is monitored in a patient sample; the
estimated plasma level is compared against the therapeutic window.  A
second part shows the drug-mixture hazard: a co-administered CYP2B6
inhibitor silently depresses the reading — the multi-panel detection
problem of Carrara et al. [9].  A third part streams a three-day
chemotherapy course through the monitor engine
(:mod:`repro.engine.monitor`): 12-hourly doses with first-order
clearance, sensor drift, and daily reference-draw recalibrations.

Run:  python examples/drug_monitoring.py
"""

import numpy as np

from repro.analytes.physiological import (
    ConcentrationTrajectory,
    physiological_range,
)
from repro.core.calibration import default_protocol_for_range, run_calibration
from repro.core.detection import estimate_concentration, measure_point
from repro.core.registry import build_sensor, spec_by_id
from repro.enzymes.inhibition import InhibitionType, Inhibitor, apparent_parameters
from repro.units import molar_from_micromolar, molar_from_millimolar


def main() -> None:
    rng = np.random.default_rng(5)
    spec = spec_by_id("cyp/cyclophosphamide")
    sensor = build_sensor(spec)
    print("Sensor:", sensor.describe())

    protocol = default_protocol_for_range(
        molar_from_millimolar(spec.paper_range_mm[1]))
    calibration = run_calibration(sensor, protocol, rng)
    print("Calibration:", calibration.summary())

    window = physiological_range("cyclophosphamide")
    print(f"\nTherapeutic window: "
          f"{window.low_molar * 1e6:.0f}-{window.high_molar * 1e6:.0f} uM "
          f"({window.context})")

    print("\nPatient samples:")
    for true_um in (5.0, 30.0, 65.0):
        true_molar = molar_from_micromolar(true_um)
        signal = measure_point(sensor, true_molar, rng)
        estimate = estimate_concentration(
            signal, calibration.slope_a_per_molar, calibration.intercept_a)
        status = ("below window" if estimate < window.low_molar else
                  "IN WINDOW" if estimate <= window.high_molar else
                  "ABOVE window")
        print(f"  true {true_um:5.1f} uM -> measured "
              f"{estimate * 1e6:5.1f} uM  [{status}]")

    # ------------------------------------------------------------------
    # Drug-mixture hazard: a competitive CYP2B6 inhibitor in the sample.
    # ------------------------------------------------------------------
    print("\nDrug-mixture interference (competitive CYP2B6 inhibitor):")
    inhibitor = Inhibitor(name="co-administered drug",
                          ki_molar=40e-6,
                          mode=InhibitionType.COMPETITIVE)
    true_cp = molar_from_micromolar(30.0)
    for inhibitor_um in (0.0, 20.0, 80.0):
        vmax_scale, km_app = apparent_parameters(
            1.0, sensor.layer.apparent_km, inhibitor,
            molar_from_micromolar(inhibitor_um))
        # The inhibited enzyme layer: same coverage, distorted kinetics.
        from dataclasses import replace
        inhibited_layer = replace(
            sensor.layer,
            km_app_molar=km_app,
            activity_retention=sensor.layer.activity_retention * vmax_scale)
        inhibited_sensor = replace(sensor, layer=inhibited_layer)
        signal = measure_point(inhibited_sensor, true_cp, rng)
        estimate = estimate_concentration(
            signal, calibration.slope_a_per_molar, calibration.intercept_a)
        bias = (estimate - true_cp) / true_cp * 100.0
        print(f"  inhibitor {inhibitor_um:5.1f} uM -> CP reads "
              f"{estimate * 1e6:5.1f} uM ({bias:+.0f} % bias)")
    print("  -> co-medication silently depresses the reading: the reason "
          "the paper argues for multi-panel detection.")

    # ------------------------------------------------------------------
    # Three-day chemotherapy course through the streaming monitor.
    # ------------------------------------------------------------------
    from repro.bio.matrix import SERUM
    from repro.core.longterm import DriftBudget
    from repro.engine.monitor import (
        MonitorChannel,
        MonitorPlan,
        RecalibrationPolicy,
        run_monitor,
    )
    from repro.enzymes.stability import EnzymeStability

    print("\nThree-day course, 12-hourly doses, 15-minute readings:")
    trajectory = ConcentrationTrajectory(
        baseline_molar=window.low_molar,
        excursion_amplitude_molar=(window.high_molar - window.low_molar)
        * 0.6,
        excursion_interval_h=12.0,      # dose cadence
        excursion_tau_h=4.0,            # plasma clearance
        noise_sigma_molar=0.02 * window.span_molar,
        floor_molar=0.0,
    )
    channel = MonitorChannel(
        patient_id="chemo-patient",
        sensor=sensor,
        trajectory=trajectory,
        budget=DriftBudget(
            stability=EnzymeStability(half_life_s=2 * 7 * 24 * 3600.0),
            matrix=SERUM),
    )
    monitor_result = run_monitor(MonitorPlan(
        channels=(channel,),
        duration_h=72.0,
        sample_period_s=900.0,
        seed=7,
        recalibration=RecalibrationPolicy(
            reference_interval_h=12.0,  # a lab draw with every dose
            tolerance=0.10),
    ))
    print(monitor_result.summary())
    hours = monitor_result.time_h
    estimates = monitor_result.estimated_concentration_molar[0]
    in_window = ((estimates >= window.low_molar)
                 & (estimates <= window.high_molar))
    # Dose peaks: the reading right after each 12 h administration.
    peak_mask = np.isclose(np.mod(hours, 12.0), hours[0])
    peak_mean_um = float(np.mean(estimates[peak_mask])) * 1e6
    trough_mean_um = float(np.mean(estimates[~peak_mask])) * 1e6
    recal_label = ", ".join(
        f"{t:.0f} h" for t in monitor_result.recalibration_times_h[0])
    print(f"  estimated level in the therapeutic window for "
          f"{float(np.mean(in_window)) * 100:.0f} % of the course; "
          f"post-dose readings average {peak_mean_um:.1f} uM vs "
          f"{trough_mean_um:.1f} uM between doses (the dose/clearance "
          f"swing the monitor tracks); recalibrated at "
          f"{recal_label or 'no point'} "
          f"against per-dose lab draws over {hours[-1]:.0f} h of wear.")


if __name__ == "__main__":
    main()
