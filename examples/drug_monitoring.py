"""Therapeutic drug monitoring with the CYP cyclic-voltammetry sensors.

The personalized-medicine scenario of the paper's introduction: an
anticancer drug (cyclophosphamide) is monitored in a patient sample; the
estimated plasma level is compared against the therapeutic window.  A
second part shows the drug-mixture hazard: a co-administered CYP2B6
inhibitor silently depresses the reading — the multi-panel detection
problem of Carrara et al. [9].

Run:  python examples/drug_monitoring.py
"""

import numpy as np

from repro.analytes.physiological import physiological_range
from repro.core.calibration import default_protocol_for_range, run_calibration
from repro.core.detection import estimate_concentration, measure_point
from repro.core.registry import build_sensor, spec_by_id
from repro.enzymes.inhibition import InhibitionType, Inhibitor, apparent_parameters
from repro.units import molar_from_micromolar, molar_from_millimolar


def main() -> None:
    rng = np.random.default_rng(5)
    spec = spec_by_id("cyp/cyclophosphamide")
    sensor = build_sensor(spec)
    print("Sensor:", sensor.describe())

    protocol = default_protocol_for_range(
        molar_from_millimolar(spec.paper_range_mm[1]))
    calibration = run_calibration(sensor, protocol, rng)
    print("Calibration:", calibration.summary())

    window = physiological_range("cyclophosphamide")
    print(f"\nTherapeutic window: "
          f"{window.low_molar * 1e6:.0f}-{window.high_molar * 1e6:.0f} uM "
          f"({window.context})")

    print("\nPatient samples:")
    for true_um in (5.0, 30.0, 65.0):
        true_molar = molar_from_micromolar(true_um)
        signal = measure_point(sensor, true_molar, rng)
        estimate = estimate_concentration(
            signal, calibration.slope_a_per_molar, calibration.intercept_a)
        status = ("below window" if estimate < window.low_molar else
                  "IN WINDOW" if estimate <= window.high_molar else
                  "ABOVE window")
        print(f"  true {true_um:5.1f} uM -> measured "
              f"{estimate * 1e6:5.1f} uM  [{status}]")

    # ------------------------------------------------------------------
    # Drug-mixture hazard: a competitive CYP2B6 inhibitor in the sample.
    # ------------------------------------------------------------------
    print("\nDrug-mixture interference (competitive CYP2B6 inhibitor):")
    inhibitor = Inhibitor(name="co-administered drug",
                          ki_molar=40e-6,
                          mode=InhibitionType.COMPETITIVE)
    true_cp = molar_from_micromolar(30.0)
    for inhibitor_um in (0.0, 20.0, 80.0):
        vmax_scale, km_app = apparent_parameters(
            1.0, sensor.layer.apparent_km, inhibitor,
            molar_from_micromolar(inhibitor_um))
        # The inhibited enzyme layer: same coverage, distorted kinetics.
        from dataclasses import replace
        inhibited_layer = replace(
            sensor.layer,
            km_app_molar=km_app,
            activity_retention=sensor.layer.activity_retention * vmax_scale)
        inhibited_sensor = replace(sensor, layer=inhibited_layer)
        signal = measure_point(inhibited_sensor, true_cp, rng)
        estimate = estimate_concentration(
            signal, calibration.slope_a_per_molar, calibration.intercept_a)
        bias = (estimate - true_cp) / true_cp * 100.0
        print(f"  inhibitor {inhibitor_um:5.1f} uM -> CP reads "
              f"{estimate * 1e6:5.1f} uM ({bias:+.0f} % bias)")
    print("  -> co-medication silently depresses the reading: the reason "
          "the paper argues for multi-panel detection.")


if __name__ == "__main__":
    main()
