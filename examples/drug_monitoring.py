"""Closed-loop therapeutic drug monitoring: the personalized-medicine loop.

The scenario the paper's title promises, end to end.  A cohort of
virtual patients — stratified by CYP3A4 metabolizer phenotype — starts a
cyclosporine course.  The CYP electrode (the CYP3A4 sensor parameters of
Table 2) measures each patient's drug level through the full wear
physics; a dosing controller turns the readouts into the next dose.
Three rungs are compared on the same cohort:

1. **fixed population dosing** — everyone gets the textbook dose;
2. **reactive trough titration** — scale the dose by target/measured;
3. **model-informed Bayesian dosing** — refit each patient's clearance
   from their own readouts, then invert the PK model for the dose.

A coda shows the drug-mixture hazard of Carrara et al. [9] (a
co-administered inhibitor silently depresses the reading) and bridges
PK-driven trajectories back into the long-term monitor via
``ConcentrationTrajectory.from_pk``.

Run:  python examples/drug_monitoring.py
"""

import numpy as np

from repro.analytes.physiological import ConcentrationTrajectory
from repro.pk import CYCLOSPORINE, CYPPhenotype
from repro.pk.dosing import steady_state_trough_per_mol
from repro.scenarios import Scenario, run_scenarios


def main() -> None:
    drug = CYCLOSPORINE
    window = drug.window
    print(f"Drug: {drug.name} ({drug.cyp_isoform}-cleared), "
          f"window {window.low_molar * 1e6:.0f}-"
          f"{window.high_molar * 1e6:.0f} uM, "
          f"target trough {window.target_trough_molar * 1e6:.1f} uM")

    # ------------------------------------------------------------------
    # The treated cohort: CYP3A4 phenotypes and covariates.
    # ------------------------------------------------------------------
    cohort = drug.population.sample(n_patients=16, seed=7)
    print("Cohort:", cohort.summary())

    # The dose that puts the *population-typical* patient on target —
    # what a label recommends, and all a fixed regimen can do.
    per_mol = float(steady_state_trough_per_mol(
        drug.typical_model().params(), 12.0)[0])
    label_dose = window.target_trough_molar / per_mol
    print(f"Label dose (typical patient to target): "
          f"{drug.mg_from_dose_mol(label_dose):.0f} mg q12h\n")

    # The three-rung comparison as three declarative scenarios on one
    # shared spec — only the controller mapping differs.  cohort_seed=7
    # re-samples exactly the cohort printed above (the population seed
    # is part of the artifact), the drug name resolves the sensor and
    # window from the catalog, and the Bayesian prior defaults to the
    # drug's typical model.  Each scenario is a JSON file away from
    # ``python -m repro run``.
    base_spec = {
        "drug": drug.name,
        "n_patients": 16,
        "cohort_seed": 7,
        "n_doses": 6,
        "dose_interval_h": 12.0,
        "sample_period_s": 900.0,
        "process_noise_sigma_molar": 1e-7,
        "wander_sigma_a": 2e-9,
    }
    controllers = {
        "fixed regimen": {"kind": "fixed", "dose_mol": label_dose},
        "proportional titration": {
            "kind": "proportional", "initial_dose_mol": label_dose},
        "bayesian (model-informed)": {
            "kind": "bayesian", "observation_sigma_molar": 4e-7},
    }
    runs = run_scenarios(
        Scenario(workload="therapy", name=name, seed=42,
                 spec={**base_spec, "controller": controller})
        for name, controller in controllers.items())
    results = {run.scenario.name: run.result for run in runs}

    print("Three-day course, 12-hourly doses, 15-minute readings, "
          "daily reference draws:")
    for name, result in results.items():
        print(f"\n--- {name} ---")
        print(result.summary())

    # ------------------------------------------------------------------
    # What personalization did: follow one poor metabolizer's doses.
    # ------------------------------------------------------------------
    bayes = results["bayesian (model-informed)"]
    fixed = results["fixed regimen"]
    for phenotype in (CYPPhenotype.POOR, CYPPhenotype.ULTRARAPID):
        mask = cohort.phenotype_mask(phenotype)
        if not np.any(mask):
            continue
        i = int(np.flatnonzero(mask)[0])
        doses_mg = [drug.mg_from_dose_mol(d) for d in bayes.doses_mol[i]]
        print(f"\n{cohort.patients[i].patient_id} "
              f"({phenotype.value} metabolizer, clearance "
              f"{cohort.patients[i].clearance_l_per_h:.1f} L/h):")
        print("  bayesian doses [mg]: "
              + " -> ".join(f"{d:.0f}" for d in doses_mg))
        print(f"  final trough: bayesian "
              f"{bayes.trough_true_molar[i, -1] * 1e6:.2f} uM vs fixed "
              f"{fixed.trough_true_molar[i, -1] * 1e6:.2f} uM "
              f"(target {window.target_trough_molar * 1e6:.1f})")

    # ------------------------------------------------------------------
    # Drug-mixture hazard: a competitive CYP inhibitor in the sample.
    # ------------------------------------------------------------------
    from dataclasses import replace

    from repro.core.calibration import (
        default_protocol_for_range,
        run_calibration,
    )
    from repro.core.detection import estimate_concentration, measure_point
    from repro.enzymes.inhibition import (
        InhibitionType,
        Inhibitor,
        apparent_parameters,
    )
    from repro.units import molar_from_micromolar

    sensor = bayes.plan.sensor
    rng = np.random.default_rng(5)
    calibration = run_calibration(
        sensor, default_protocol_for_range(window.high_molar * 4), rng)
    print("\nDrug-mixture interference (competitive CYP inhibitor):")
    inhibitor = Inhibitor(name="co-administered drug", ki_molar=40e-6,
                          mode=InhibitionType.COMPETITIVE)
    true_level = window.target_trough_molar
    for inhibitor_um in (0.0, 20.0, 80.0):
        vmax_scale, km_app = apparent_parameters(
            1.0, sensor.layer.apparent_km, inhibitor,
            molar_from_micromolar(inhibitor_um))
        inhibited_layer = replace(
            sensor.layer, km_app_molar=km_app,
            activity_retention=sensor.layer.activity_retention * vmax_scale)
        inhibited_sensor = replace(sensor, layer=inhibited_layer)
        signal = measure_point(inhibited_sensor, true_level, rng)
        estimate = estimate_concentration(
            signal, calibration.slope_a_per_molar, calibration.intercept_a)
        bias = (estimate - true_level) / true_level * 100.0
        print(f"  inhibitor {inhibitor_um:5.1f} uM -> level reads "
              f"{estimate * 1e6:5.2f} uM ({bias:+.0f} % bias)")
    print("  -> co-medication silently depresses the reading: the reason "
          "the paper argues for multi-panel detection.")

    # ------------------------------------------------------------------
    # Bridge to the long-term monitor: a stabilized maintenance regimen
    # becomes an ordinary ConcentrationTrajectory via from_pk.
    # ------------------------------------------------------------------
    from repro.bio.matrix import SERUM
    from repro.core.longterm import DriftBudget
    from repro.engine.monitor import (
        MonitorChannel,
        MonitorPlan,
        RecalibrationPolicy,
        run_monitor,
    )
    from repro.enzymes.stability import EnzymeStability

    maintenance = cohort.patients[0]
    final_dose = float(bayes.doses_mol[0, -1])
    trajectory = ConcentrationTrajectory.from_pk(
        maintenance.one_compartment(), dose_mol=final_dose,
        interval_h=12.0, relative_noise=0.03)
    channel = MonitorChannel(
        patient_id=maintenance.patient_id,
        sensor=sensor,
        trajectory=trajectory,
        budget=DriftBudget(
            stability=EnzymeStability(half_life_s=2 * 7 * 24 * 3600.0),
            matrix=SERUM))
    maintenance_result = run_monitor(MonitorPlan(
        channels=(channel,), duration_h=72.0, sample_period_s=900.0,
        seed=11, recalibration=RecalibrationPolicy(
            reference_interval_h=12.0,  # a lab draw with every dose
            tolerance=0.10)))
    print(f"\nMaintenance phase on the stabilized regimen "
          f"({drug.mg_from_dose_mol(final_dose):.0f} mg q12h), "
          f"monitored continuously with per-dose reference draws:")
    print(maintenance_result.summary())
    print("  -> drug monitoring is far harder than glucose: troughs "
          "decay toward the assay's LOD, so relative error is "
          "noise-dominated between doses — the quantitative case for "
          "the trough-anchored controllers above.")


if __name__ == "__main__":
    main()
