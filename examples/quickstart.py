"""Quickstart: build the paper's glucose biosensor and calibrate it.

Reproduces the headline row of Table 2 (MWCNT/Nafion + GOD, this work):
sensitivity ~55.5 uA mM^-1 cm^-2, linear range 0-1 mM, LOD ~2 uM.

Run:  python examples/quickstart.py
"""

from repro.core.calibration import default_protocol_for_range
from repro.core.registry import build_sensor, spec_by_id
from repro.engine import run_calibration_batch
from repro.units import molar_from_millimolar


def main() -> None:
    spec = spec_by_id("glucose/this-work")
    sensor = build_sensor(spec)
    print("Composed sensor:")
    print("  " + sensor.describe())
    print(f"  enzyme coverage: "
          f"{sensor.layer.coverage_mol_m2 * 1e12 / 1e4:.1f} pmol/cm^2")
    print(f"  CNT film: area x{sensor.film.area_enhancement():.0f}, "
          f"electron transfer x{sensor.film.rate_enhancement():.1f}")

    protocol = default_protocol_for_range(
        molar_from_millimolar(spec.paper_range_mm[1]))
    # The batch engine evaluates the whole protocol (blanks + standards x
    # replicates) as vectorized array operations with deterministic
    # per-cell randomness derived from the seed.
    result = run_calibration_batch(sensor, protocol, seed=42)

    print("\nCalibration (successive additions, 3 replicates/standard):")
    for point in result.points:
        print(f"  {point.concentration_molar * 1e3:6.2f} mM -> "
              f"{point.mean_a * 1e9:8.2f} +- {point.std_a * 1e9:5.2f} nA")

    print("\nExtracted metrics vs. paper:")
    print(f"  {result.summary()}")
    print(f"  paper: S = {spec.paper_sensitivity} uA mM^-1 cm^-2, "
          f"linear {spec.paper_range_mm[0]} - {spec.paper_range_mm[1]} mM, "
          f"LOD = {spec.paper_lod_um} uM")


if __name__ == "__main__":
    main()
