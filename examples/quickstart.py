"""Quickstart: build the paper's glucose biosensor and calibrate it.

Reproduces the headline row of Table 2 (MWCNT/Nafion + GOD, this work):
sensitivity ~55.5 uA mM^-1 cm^-2, linear range 0-1 mM, LOD ~2 uM —
through the unified scenario front door: the calibration is a
declarative, serializable :class:`repro.scenarios.Scenario` (catalog id
+ seed + plain data), dispatched by ``run_scenario`` and replayable
bit-identically from the JSON it serializes to
(``python -m repro run``).

Run:  python examples/quickstart.py
"""

from repro.core.registry import build_sensor, spec_by_id
from repro.scenarios import (
    Scenario,
    calibration_results_from_batch,
    run_scenario,
)


def main() -> None:
    spec = spec_by_id("glucose/this-work")
    sensor = build_sensor(spec)
    print("Composed sensor:")
    print("  " + sensor.describe())
    print(f"  enzyme coverage: "
          f"{sensor.layer.coverage_mol_m2 * 1e12 / 1e4:.1f} pmol/cm^2")
    print(f"  CNT film: area x{sensor.film.area_enhancement():.0f}, "
          f"electron transfer x{sensor.film.rate_enhancement():.1f}")

    # The whole campaign — blanks + a standard staircase spanning the
    # published range x replicates — as one declarative scenario.  The
    # engine evaluates it vectorized with deterministic per-cell
    # randomness; the JSON form (scenario.to_json()) replays it exactly.
    scenario = Scenario(
        workload="calibration",
        name="glucose-quickstart",
        seed=42,
        spec={"sensors": [spec.sensor_id]})
    batch = run_scenario(scenario)
    result = calibration_results_from_batch(batch)[0]

    print("\nCalibration (successive additions, 3 replicates/standard):")
    for point in result.points:
        print(f"  {point.concentration_molar * 1e3:6.2f} mM -> "
              f"{point.mean_a * 1e9:8.2f} +- {point.std_a * 1e9:5.2f} nA")

    print("\nExtracted metrics vs. paper:")
    print(f"  {result.summary()}")
    print(f"  paper: S = {spec.paper_sensitivity} uA mM^-1 cm^-2, "
          f"linear {spec.paper_range_mm[0]} - {spec.paper_range_mm[1]} mM, "
          f"LOD = {spec.paper_lod_um} uM")
    print("\nReplay from the shell:")
    print("  python -m repro run scenario.json   # scenario.save(...)")


if __name__ == "__main__":
    main()
