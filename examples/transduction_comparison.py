"""One biomarker, four transduction mechanisms (section 2.3 head-to-head).

The paper's classification surveys amperometric, SPR, QCM, potentiometric
and impedimetric sensing.  This example detects the same antibody-antigen
binding event (a PSA-like protein biomarker, Kd = 1 nM) with the SPR, QCM
and faradic-EIS models, and contrasts them with the enzymatic amperometric
channel's strengths — quantifying why each class owns a different niche.

Run:  python examples/transduction_comparison.py
"""

import numpy as np

from repro.chem.impedance import RandlesCircuit
from repro.core.registry import build_sensor, spec_by_id
from repro.transducers.immunosensor import FaradicImmunosensor
from repro.transducers.potentiometric import IonSelectiveElectrode
from repro.transducers.qcm import QuartzCrystalMicrobalance
from repro.transducers.spr import SprSensor


def main() -> None:
    kd = 1e-9  # shared antibody affinity
    spr = SprSensor(kd_molar=kd)
    qcm = QuartzCrystalMicrobalance(kd_molar=kd)
    eis = FaradicImmunosensor(
        baseline=RandlesCircuit(100.0, 5_000.0, 1e-6), kd_molar=kd)

    print("Label-free biomarker detection (antibody Kd = 1 nM):")
    levels = np.array([0.0, 0.1e-9, 0.3e-9, 1e-9, 3e-9, 10e-9])
    print(f"{'conc [nM]':>10} {'SPR [mdeg]':>12} {'QCM [Hz]':>10} "
          f"{'EIS dRct [ohm]':>15}")
    for level in levels:
        print(f"{level * 1e9:10.1f} "
              f"{spr.angle_shift_millideg(float(level)):12.3f} "
              f"{qcm.frequency_shift_hz(float(level)):10.1f} "
              f"{eis.rct_shift_ohm(float(level)):15.0f}")

    print("\nDetection limits (3-sigma):")
    print(f"  SPR: {spr.limit_of_detection_molar() * 1e12:8.2f} pM")
    print(f"  QCM: {qcm.limit_of_detection_molar() * 1e12:8.2f} pM")
    print(f"  EIS: {eis.limit_of_detection_molar() * 1e12:8.2f} pM")

    print("\nPotentiometric channel (urease-style NH4+ readout):")
    ise = IonSelectiveElectrode(
        ion_charge=1,
        selectivity={"K+": 0.05},
        interferent_charges={"K+": 1},
    )
    print(f"  Nernstian slope: "
          f"{ise.slope_v_per_decade() * 1e3:.1f} mV/decade")
    for conc in (1e-5, 1e-4, 1e-3):
        clean = ise.potential_v(conc)
        with_k = ise.potential_v(conc, {"K+": 5e-3})
        print(f"  {conc * 1e3:6.2f} mM -> {clean * 1e3:7.1f} mV "
              f"(+{(with_k - clean) * 1e3:4.1f} mV with 5 mM K+)")

    print("\nAmperometric reference (the paper's own platform):")
    glucose = build_sensor(spec_by_id("glucose/this-work"))
    print(f"  {glucose.describe()}")
    print(f"  LOD {glucose.expected_lod_molar() * 1e6:.1f} uM, linear to "
          f"{glucose.linear_range_upper_molar() * 1e3:.1f} mM")
    print("\nTakeaway: label-free affinity transducers reach pM-nM limits "
          "for biomarkers,\nwhile the enzymatic amperometric platform owns "
          "the mM metabolite/drug range\nwith disposable, integrable "
          "electrodes — each class fills its classification niche.")


if __name__ == "__main__":
    main()
