"""Week-long wearable monitoring of a patient cohort: drift,
recalibration, reconstruction, battery.

The chronic-patient scenario of the paper's introduction, end to end —
now literally *as a scenario*: the whole cohort wear simulation (eight
wearers of the glucose channel drifting through a week while periodic
finger-stick references trigger one-point recalibrations) is one
declarative, serializable :class:`repro.scenarios.Scenario` dispatched
through the unified front door (``run_scenario`` — the same spec also
lives in ``examples/scenarios/glucose_week.json`` for
``python -m repro run``).  The open-loop comparison is the same spec
with recalibration switched off — a dict edit, not new code.

New in PR 5: the week is dispatched through the ``estimation`` workload
(:mod:`repro.inference`), so next to the wearer-facing linear estimate
we also get the *reconstructed* trajectory — the Kalman/RTS posterior
over concentration, with a 95 % credible band — overlaid against the
ground truth in the morning-window table.  The drift budget's analytic
schedule and the energy model round out the deployment picture.

Run:  python examples/longterm_monitoring.py
"""

from repro.bio.matrix import SERUM
from repro.core.longterm import DriftBudget
from repro.enzymes.stability import EnzymeStability
from repro.scenarios import Scenario, run_scenario
from repro.system.composition import reference_biosensor_node
from repro.system.energy import EnergyBudget

WEEK_S = 7 * 24 * 3600.0
WEEK_H = 7 * 24.0


def main() -> None:
    # ------------------------------------------------------------------
    # Analytic drift budget: when does a 10 % error bound force a recal?
    # ------------------------------------------------------------------
    budget = DriftBudget(
        stability=EnzymeStability(half_life_s=2 * WEEK_S),
        matrix=SERUM)
    deadline_h = budget.hours_to_error(0.10)
    schedule = budget.recalibration_schedule(WEEK_H, 0.10)
    print(f"Drift budget: 10 % error reached after {deadline_h:.0f} h; "
          f"{len(schedule)} recalibrations needed over one week")

    # ------------------------------------------------------------------
    # The wear simulation as a declarative scenario: catalog ids and
    # plain data only, so the same run replays bit-identically from the
    # JSON file ``scenario.save()`` would write.
    # ------------------------------------------------------------------
    monitor_spec = {
        "cohort": {"sensor": "glucose/this-work", "analyte": "glucose",
                   "n_patients": 8, "wander_sigma_a": 2e-9},
        "duration_h": WEEK_H,
        "sample_period_s": 300.0,
        "recalibration": {"reference_interval_h": 6.0,
                          "tolerance": 0.08},
    }
    scenario = Scenario(
        workload="estimation",
        name="glucose-week",
        seed=42,
        spec={**monitor_spec, "smooth": True, "interval_level": 0.95})
    estimation = run_scenario(scenario)
    result = estimation.monitor          # the wear simulation inside
    plan = result.plan
    print(f"\n{result.summary()}")
    print(f"\n{estimation.summary()}")

    # The same cohort open-loop: what recalibration is worth.  The
    # scenario is data, so the ablation is a spec edit.
    open_loop = run_scenario(Scenario(
        workload="monitor",
        name="glucose-week-open-loop",
        seed=42,
        spec={**monitor_spec,
              "recalibration": {"enabled": False},
              "keep_traces": False},
    ))
    print(f"\nWithout recalibration the cohort MARD would be "
          f"{float(open_loop.mard.mean()) * 100:.1f} % "
          f"(vs {float(result.mard.mean()) * 100:.1f} % with the "
          f"6-hourly finger-stick policy; the reconstruction gets "
          f"{float(estimation.smoothed_mard.mean()) * 100:.1f} %).")

    # One patient's morning: the wearer-facing linear estimate next to
    # the reconstructed posterior and its 95 % credible band.
    hours = result.time_h
    reconstruction, _ = estimation.reconstruction()
    lower, upper = estimation.interval(smoothed=True)
    mask = (hours >= 24.0) & (hours <= 30.0)
    print("\npatient-000, day 2, 06:00-12:00 window (hourly), in mM:")
    print(f"{'t [h]':>6} {'true':>7} {'linear':>7} {'reconstr':>9} "
          f"{'95 % band':>16}")
    step = max(1, int(3600.0 / plan.sample_period_s))
    for idx in range(0, hours.size, step):
        if not mask[idx]:
            continue
        print(f"{hours[idx]:6.0f} "
              f"{result.true_concentration_molar[0, idx] * 1e3:7.2f} "
              f"{result.estimated_concentration_molar[0, idx] * 1e3:7.2f} "
              f"{reconstruction[0, idx] * 1e3:9.2f} "
              f"[{lower[0, idx] * 1e3:6.2f}, {upper[0, idx] * 1e3:6.2f}]")

    # ------------------------------------------------------------------
    # Energy: does a 100 mAh cell survive the week at this cadence?
    # ------------------------------------------------------------------
    energy = EnergyBudget(design=reference_biosensor_node())
    rate_per_hour = 3600.0 / plan.sample_period_s
    life_days = energy.battery_life_days(100.0, rate_per_hour)
    print(f"\nEnergy: {energy.energy_per_measurement_mj():.0f} mJ per panel; "
          f"{plan.sample_period_s / 60:.0f}-minute duty cycle -> average "
          f"{energy.average_power_mw(rate_per_hour) * 1e3:.0f} uW; "
          f"100 mAh cell lasts {life_days:.1f} days "
          f"({'OK' if life_days > 7 else 'INSUFFICIENT'} for the week)")


if __name__ == "__main__":
    main()
