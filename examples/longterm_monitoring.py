"""Week-long wearable monitoring: drift, recalibration, battery.

The chronic-patient scenario of the paper's introduction, end to end: a
glucose channel worn at body temperature in a serum-like matrix drifts
(enzyme decay + fouling); the drift budget schedules recalibrations to
hold a 10 % clinical error bound; the energy model checks the battery
survives the duty cycle.

Run:  python examples/longterm_monitoring.py
"""

import numpy as np

from repro.bio.matrix import SERUM
from repro.core.calibration import default_protocol_for_range, run_calibration
from repro.core.longterm import (
    DriftBudget,
    drift_corrected_estimate,
    one_point_recalibration,
)
from repro.core.registry import build_sensor, spec_by_id
from repro.enzymes.stability import EnzymeStability
from repro.system.composition import reference_biosensor_node
from repro.system.energy import EnergyBudget

WEEK_S = 7 * 24 * 3600.0


def main() -> None:
    rng = np.random.default_rng(23)
    sensor = build_sensor(spec_by_id("glucose/this-work"))
    calibration = run_calibration(
        sensor, default_protocol_for_range(1e-3), rng)
    print("Day-0 calibration:", calibration.summary())

    budget = DriftBudget(
        stability=EnzymeStability(half_life_s=2 * WEEK_S),
        matrix=SERUM)
    deadline_h = budget.hours_to_error(0.10)
    schedule = budget.recalibration_schedule(7 * 24.0, 0.10)
    print(f"\nDrift budget: 10 % error reached after {deadline_h:.0f} h; "
          f"recalibrations over one week at "
          f"{', '.join(f'{t:.0f} h' for t in schedule)}")

    # Simulate a week of 4-hourly readings at a constant true 0.6 mM.
    true_c = 0.6e-3
    hours = np.arange(0.0, 7 * 24.0, 4.0)
    slope = calibration.slope_a_per_molar
    print("\nWeek of readings (true level 0.600 mM):")
    print(f"{'t [h]':>6} {'retention':>10} {'naive [mM]':>11} "
          f"{'corrected [mM]':>15}")
    for hour in hours[:: 6]:
        retention = budget.sensitivity_retention(float(hour))
        signal = (slope * retention * true_c
                  + rng.normal(0.0, sensor.repeatability_std_a))
        naive = max(0.0, (signal - calibration.intercept_a) / slope)
        corrected = drift_corrected_estimate(
            signal, slope, calibration.intercept_a, retention)
        print(f"{hour:6.0f} {retention:10.3f} {naive * 1e3:11.3f} "
              f"{corrected * 1e3:15.3f}")

    # One-point recalibration against a finger-stick reference at day 3.
    hour = 72.0
    retention = budget.sensitivity_retention(hour)
    reference_c = 0.5e-3
    signal = (slope * retention * reference_c
              + rng.normal(0.0, sensor.repeatability_std_a))
    new_slope = one_point_recalibration(
        slope, reference_c, signal, calibration.intercept_a)
    print(f"\nDay-3 one-point recalibration: slope "
          f"{slope * 1e6:.2f} -> {new_slope * 1e6:.2f} uA/M "
          f"(true decayed slope {slope * retention * 1e6:.2f})")

    # Energy: does a 100 mAh cell survive the week?
    energy = EnergyBudget(design=reference_biosensor_node())
    rate_per_hour = 1.0 / 4.0
    life_days = energy.battery_life_days(100.0, rate_per_hour)
    print(f"\nEnergy: {energy.energy_per_measurement_mj():.0f} mJ per panel; "
          f"4-hourly duty cycle -> average "
          f"{energy.average_power_mw(rate_per_hour) * 1e3:.0f} uW; "
          f"100 mAh cell lasts {life_days:.0f} days "
          f"({'OK' if life_days > 7 else 'INSUFFICIENT'} for the week)")


if __name__ == "__main__":
    main()
