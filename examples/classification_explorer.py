"""Explore the paper's biosensor classification (section 2).

Queries the five-axis taxonomy and the surveyed-literature database:
census by transduction mechanism (amperometric dominates), filtered views
(CNT-based systems, integrated systems), and the self-classification of
the paper's own platform sensors.

Run:  python examples/classification_explorer.py
"""

from repro.classification.literature import (
    LITERATURE_SENSORS,
    find_sensors,
    transduction_census,
)
from repro.classification.taxonomy import (
    ElectrodeTechnology,
    NanomaterialKind,
    TargetKind,
    describe_platform_sensor,
)
from repro.core.registry import build_sensor, spec_by_id


def main() -> None:
    print(f"Surveyed systems: {len(LITERATURE_SENSORS)}")

    print("\nCensus by transduction mechanism:")
    census = transduction_census()
    for transduction, count in sorted(census.items(),
                                      key=lambda kv: -kv[1]):
        print(f"  {transduction.value:<28} {'#' * count} ({count})")
    print("  -> amperometric sensing dominates, as section 2.3 claims.")

    print("\nNanotechnology-based systems in the survey:")
    for kind in (NanomaterialKind.CARBON_NANOTUBE,
                 NanomaterialKind.NANOPARTICLE,
                 NanomaterialKind.NANOWIRE):
        systems = find_sensors(nanomaterial=kind)
        names = ", ".join(f"{s.name} {s.reference}" for s in systems)
        print(f"  {kind.value}: {names or '(none)'}")

    print("\nIntegrated (CMOS-coupled) systems:")
    for electrode in (ElectrodeTechnology.INTEGRATED,
                      ElectrodeTechnology.DISPOSABLE_INTEGRATED):
        for sensor in find_sensors(electrode=electrode):
            print(f"  [{sensor.reference}] {sensor.name}")

    print("\nDNA-targeting systems:")
    for sensor in find_sensors(target=TargetKind.DNA):
        print(f"  [{sensor.reference}] {sensor.name} "
              f"({sensor.transduction.value})")

    print("\nSelf-classification of the paper's platform (section 3):")
    for sensor_id in ("glucose/this-work", "cyp/cyclophosphamide"):
        sensor = build_sensor(spec_by_id(sensor_id))
        print(f"  {sensor.name}:")
        for bullet in describe_platform_sensor(sensor).bullets():
            print(f"    - {bullet}")


if __name__ == "__main__":
    main()
