"""Multi-target metabolite panel monitoring a neural cell culture.

The paper's motivating application (refs [4], [5]): one microfabricated
chip with glucose, lactate and glutamate channels tracks a cell culture
over several hours — cells consume glucose and release lactate.  The
culture dynamics come from the enzyme batch-reactor substrate; the
platform measures the same profiles through its calibrated channels.

Run:  python examples/metabolite_panel.py
"""

import numpy as np

from repro.core.platform import reference_metabolite_platform
from repro.units import molar_from_millimolar


def culture_profiles(hours: np.ndarray) -> dict[str, np.ndarray]:
    """Synthetic neural-culture metabolite dynamics.

    Glucose decays exponentially as cells consume it; lactate accumulates
    with the complementary saturating curve (glycolysis stoichiometry);
    glutamate pulses mid-experiment (stimulated release).
    """
    glucose0 = molar_from_millimolar(0.9)
    lactate_max = molar_from_millimolar(0.8)
    tau_h = 6.0
    glucose = glucose0 * np.exp(-hours / tau_h)
    lactate = lactate_max * (1.0 - np.exp(-hours / tau_h))
    glutamate = molar_from_millimolar(0.4) * np.exp(
        -0.5 * ((hours - 4.0) / 1.0) ** 2) + molar_from_millimolar(0.05)
    return {"glucose": glucose, "lactate": lactate, "glutamate": glutamate}


def main() -> None:
    platform = reference_metabolite_platform()
    print("Platform channels:", platform.analytes)
    print(f"Chip sample volume: "
          f"{platform.chip.sample_volume_estimate_l() * 1e6:.1f} uL")

    print("\nCalibrating all channels (one batched campaign)...")
    uppers = {0: molar_from_millimolar(1.0),
              1: molar_from_millimolar(1.0),
              2: molar_from_millimolar(2.0)}
    calibrations = platform.calibrate_batch(seed=7,
                                            upper_molar_by_channel=uppers)
    for channel, result in calibrations.items():
        print(f"  ch{channel}: {result.summary()}")

    hours = np.linspace(0.0, 8.0, 9)
    truth = culture_profiles(hours)
    print("\nMonitoring culture over 8 h...")
    estimates = platform.monitor(hours, truth, np.random.default_rng(11))

    header = f"{'t [h]':>6} " + "".join(
        f"{name + ' true/est [mM]':>28}" for name in truth)
    print(header)
    for i, hour in enumerate(hours):
        row = f"{hour:6.1f} "
        for name in truth:
            row += (f"{truth[name][i] * 1e3:13.3f}/"
                    f"{estimates[name][i] * 1e3:-13.3f} ")
        print(row)

    for name in truth:
        error = np.abs(estimates[name] - truth[name])
        print(f"mean |error| {name}: {np.mean(error) * 1e6:.1f} uM")


if __name__ == "__main__":
    main()
