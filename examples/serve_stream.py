"""Serve a live stream: the online front door, end to end in-process.

Boots the asyncio serving process on a background thread
(:class:`repro.serve.ServerThread` — the same server behind
``python -m repro serve``), then walks both serving modes with the
stdlib client:

* submit the checked-in day-long glucose reconstruction scenario as a
  **job** (bounded work queue, poll to done, fetch the artifact), and
* open the same scenario as a live **stream**, pushing one hour of
  readings at a time and printing the cohort's filtered glucose as it
  arrives —

then verifies the two artifacts are identical: streaming changes when
you get the numbers, never which numbers you get.

Run:  python examples/serve_stream.py
"""

from pathlib import Path

from repro.scenarios import Scenario
from repro.serve import ServeClient, ServerThread

SCENARIO = Path(__file__).parent / "scenarios" / \
    "estimation_glucose_day.json"


def _max_difference(a, b) -> float:
    """Largest absolute numeric difference between two JSON payloads.

    Non-numeric leaves must match exactly; the floats may differ by
    summation-order ulps (chunked vs streamed accumulation), which the
    serving contract bounds at 1e-9.
    """
    if isinstance(a, dict):
        assert set(a) == set(b), set(a) ^ set(b)
        return max((_max_difference(a[k], b[k]) for k in a), default=0.0)
    if isinstance(a, list):
        assert len(a) == len(b), (len(a), len(b))
        return max((_max_difference(x, y) for x, y in zip(a, b)),
                   default=0.0)
    if isinstance(a, float) or isinstance(b, float):
        return abs(a - b)
    assert a == b, (a, b)
    return 0.0


def main() -> None:
    scenario = Scenario.load(SCENARIO)
    print(f"scenario: [{scenario.workload}] {scenario.name}")

    with ServerThread(port=0, queue_size=8, workers=2) as thread:
        client = ServeClient(thread.host, thread.port)
        client.wait_until_healthy()
        rows = {row["name"]: row["streaming"]
                for row in client.workloads()}
        print(f"server on {thread.host}:{thread.port}, "
              f"streaming workloads: "
              f"{sorted(name for name, on in rows.items() if on)}")

        # Mode 1 - batch job through the bounded queue.
        job = client.submit(scenario.to_dict())
        client.wait_for_job(job["job_id"])
        job_artifact = client.result(job["job_id"], traces=True)
        mard = job_artifact["result"]["cohort_filtered_mard"]
        print(f"job {job['job_id']}: done, cohort filtered MARD "
              f"{mard * 100:.1f}%")

        # Mode 2 - live stream, one hour of 5-min readings per push.
        stream = client.create_stream(scenario.to_dict())
        stream_id = stream["stream_id"]
        print(f"stream {stream_id}: {stream['n_channels']} channels x "
              f"{stream['n_samples']} samples")
        while True:
            update = client.push_readings(stream_id, count=12)
            latest_mm = [1e3 * channel[-1] for channel in
                         update["values"]["filtered_concentration_molar"]]
            print(f"  t={update['time_h'][-1]:5.1f} h  filtered glucose "
                  + "  ".join(f"{mm:.2f} mM" for mm in latest_mm))
            if update["done"]:
                break

        snapshot = client.stream_snapshot(stream_id)
        print(f"snapshot at cursor {snapshot['cursor']}: "
              f"{len(str(snapshot)):,} chars, resumable anywhere")

        stream_artifact = client.stream_result(stream_id, traces=True)
        worst = _max_difference(stream_artifact, job_artifact)
        assert worst <= 1e-9, f"stream/batch diverged by {worst}"
        print(f"stream result == job result (max difference {worst:.1e},"
              f" gate 1e-9)")

        metrics = client.metrics()
        print(f"served {metrics['counters']['readings.pushed']} channel-"
              f"readings across {metrics['jobs']['done']} job(s) and "
              f"{metrics['open_streams']} open stream(s)")


if __name__ == "__main__":
    main()
