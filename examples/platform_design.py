"""Platform-based design of an integrated biosensing node (sections 1, 2.5).

Walks the paper's system-level argument end to end: compose the block
diagram, check the compositional rules, quantify why heterogeneous
technologies beat a single-node SoC, assemble the Guiducci-style 3-D stack
with a disposable biolayer, and compute the NRE crossover that makes the
platform approach pay.

Run:  python examples/platform_design.py
"""

from repro.system.blocks import STANDARD_BLOCKS, block_by_name
from repro.system.composition import reference_biosensor_node
from repro.system.nre import platform_vs_custom_crossover
from repro.system.scaling import (
    best_node_for_block,
    homogeneous_vs_heterogeneous,
    scaled_area_mm2,
)
from repro.system.stack3d import guiducci_stack, tsv_parasitic_capacitance_ff


def main() -> None:
    # 1. Compose and validate the node.
    design = reference_biosensor_node()
    print(design.summary())

    # 2. Heterogeneous scaling: where does each block want to live?
    print("\nPer-block optimal technology nodes:")
    for block in STANDARD_BLOCKS:
        node = best_node_for_block(block)
        area = scaled_area_mm2(block, node)
        print(f"  {block.name:<28} -> {node:5.0f} nm "
              f"({area:5.2f} mm^2, exponent {block.scaling_exponent})")

    comparison = homogeneous_vs_heterogeneous(STANDARD_BLOCKS)
    print(f"\nSingle-node SoC (best node "
          f"{comparison['homogeneous_node_nm']:.0f} nm): "
          f"${comparison['homogeneous_cost_usd']:.2f}/die")
    print(f"Heterogeneous partition: "
          f"${comparison['heterogeneous_cost_usd']:.2f}/die "
          f"(x{comparison['saving_ratio']:.2f} cheaper)")

    # 3. The 3-D stack with disposable biolayer (Guiducci et al. [17]).
    stack = guiducci_stack()
    print("\n3-D stacked integration:")
    for layer in stack.layers:
        tag = "DISPOSABLE" if layer.disposable else "permanent"
        print(f"  {layer.name:<24} {layer.technology_node_nm:5.0f} nm  "
              f"{layer.active_area_mm2():5.2f} mm^2  [{tag}]")
    print(f"  footprint {stack.footprint_mm2:.1f} mm^2, "
          f"{stack.total_tsvs()} TSVs "
          f"({tsv_parasitic_capacitance_ff():.0f} fF each), "
          f"feasible: {stack.is_feasible()}")
    print(f"  area discarded per use: "
          f"{stack.replacement_cost_fraction():.0%}")

    # 4. NRE: when does the platform style pay?
    kinds = [b.kind.value for b in STANDARD_BLOCKS]
    nre = platform_vs_custom_crossover(kinds, 180.0)
    print("\nNRE economics (180 nm):")
    print(f"  full-custom per product: "
          f"${nre['full_custom_nre_usd'] / 1e6:.2f}M")
    print(f"  platform derivative:     "
          f"${nre['platform_derivative_nre_usd'] / 1e6:.2f}M "
          f"(after ${nre['platform_setup_usd'] / 1e6:.2f}M setup)")
    print(f"  platform wins from {nre['crossover_products']:.0f} products")

    # Bonus: what the AFE block looks like when moved off 180 nm.
    afe = block_by_name("potentiostat + tia front-end")
    print(f"\nAFE area across nodes: "
          + ", ".join(f"{node:.0f}nm: {scaled_area_mm2(afe, node):.2f}mm^2"
                      for node in (350.0, 180.0, 90.0, 40.0)))


if __name__ == "__main__":
    main()
