"""Tests for nanoparticles, nanowires and quantum dots (section 2.4 scope)."""

import numpy as np
import pytest

from repro.nano.nanoparticles import GoldNanoparticle, NanoparticleFilm
from repro.nano.nanowires import SiliconNanowireFET
from repro.nano.quantum_dots import QuantumDot, cdse_dot


class TestGoldNanoparticles:
    def test_specific_area_grows_as_inverse_diameter(self):
        small = GoldNanoparticle(10e-9)
        large = GoldNanoparticle(40e-9)
        assert small.specific_surface_area_m2_kg == pytest.approx(
            4 * large.specific_surface_area_m2_kg, rel=1e-9)

    def test_film_area_enhancement(self):
        film = NanoparticleFilm(GoldNanoparticle(20e-9), surface_coverage=0.3)
        assert film.area_enhancement() == pytest.approx(1.9)

    def test_film_rate_enhancement_with_coverage(self):
        low = NanoparticleFilm(GoldNanoparticle(20e-9), surface_coverage=0.1)
        high = NanoparticleFilm(GoldNanoparticle(20e-9), surface_coverage=0.5)
        assert high.rate_enhancement() > low.rate_enhancement()

    def test_jamming_limit_enforced(self):
        with pytest.raises(ValueError, match="jamming"):
            NanoparticleFilm(GoldNanoparticle(20e-9), surface_coverage=0.7)

    def test_particle_count_scales_inverse_square_diameter(self):
        small = NanoparticleFilm(GoldNanoparticle(10e-9), 0.3)
        large = NanoparticleFilm(GoldNanoparticle(20e-9), 0.3)
        assert small.particles_per_m2() == pytest.approx(
            4 * large.particles_per_m2(), rel=1e-9)


class TestNanowireFET:
    def test_baseline_conductance_positive(self):
        assert SiliconNanowireFET().baseline_conductance_s() > 0

    def test_response_grows_with_occupancy(self):
        wire = SiliconNanowireFET()
        assert wire.fractional_response(0.8) > wire.fractional_response(0.1)

    def test_thinner_wire_more_sensitive(self):
        thin = SiliconNanowireFET(diameter_m=10e-9)
        thick = SiliconNanowireFET(diameter_m=50e-9)
        assert thin.fractional_response(0.5) > thick.fractional_response(0.5)

    def test_langmuir_isotherm_half_at_kd(self):
        wire = SiliconNanowireFET()
        assert wire.binding_isotherm(1e-9, 1e-9) == pytest.approx(0.5)

    def test_conductance_decreases_with_concentration(self):
        wire = SiliconNanowireFET()
        concentrations = np.array([0.0, 1e-10, 1e-9, 1e-8])
        conductance = wire.conductance_vs_concentration(concentrations, 1e-9)
        assert np.all(np.diff(conductance) <= 1e-18)

    def test_response_bounded(self):
        wire = SiliconNanowireFET(receptor_density_m2=1e18)
        assert wire.fractional_response(1.0) <= 1.0

    def test_rejects_bad_occupancy(self):
        with pytest.raises(ValueError):
            SiliconNanowireFET().fractional_response(1.5)


class TestQuantumDots:
    def test_smaller_dot_bluer_emission(self):
        small = cdse_dot(1.5e-9)
        large = cdse_dot(4.0e-9)
        assert small.emission_wavelength_m() < large.emission_wavelength_m()

    def test_cdse_visible_emission(self):
        # 2-4 nm CdSe dots emit in the visible range.
        dot = cdse_dot(2.5e-9)
        wavelength_nm = dot.emission_wavelength_m() * 1e9
        assert 400.0 < wavelength_nm < 750.0

    def test_confinement_energy_positive(self):
        assert cdse_dot(3e-9).confinement_energy_ev() > 0

    def test_emission_above_bulk_gap(self):
        dot = cdse_dot(3e-9)
        assert dot.emission_energy_ev() > dot.bulk_gap_ev

    def test_rejects_oversized_dot(self):
        with pytest.raises(ValueError, match="confinement"):
            QuantumDot("CdSe", 20e-9, 1.74)
