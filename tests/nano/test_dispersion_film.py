"""Tests for repro.nano.dispersion and repro.nano.film."""

import pytest

from repro.chem.species import HYDROGEN_PEROXIDE
from repro.nano.dispersion import (
    BARE,
    CHITOSAN,
    CHLOROFORM,
    MINERAL_OIL,
    NAFION,
    POLYURETHANE,
    SOL_GEL,
    medium_by_name,
)
from repro.nano.film import NanostructuredFilm


class TestDispersionCatalog:
    def test_nafion_disperses_best(self):
        """Wang et al. [54]: Nafion solubilizes CNT into uniform films."""
        for medium in (MINERAL_OIL, SOL_GEL, CHITOSAN):
            assert NAFION.utilization > medium.utilization

    def test_mineral_oil_is_worst(self):
        # The CNT-paste lactate sensor [41] has the lowest sensitivity in
        # Table 2; its dispersion quality reflects that.
        for medium in (NAFION, CHLOROFORM, SOL_GEL, CHITOSAN, POLYURETHANE):
            assert MINERAL_OIL.utilization < medium.utilization

    def test_lookup(self):
        assert medium_by_name("nafion") is NAFION
        with pytest.raises(KeyError, match="available"):
            medium_by_name("unknownium")


class TestBareFilm:
    def test_bare_film_neutral(self):
        bare = NanostructuredFilm.bare()
        assert bare.area_enhancement() == pytest.approx(1.0)
        assert bare.rate_enhancement() == pytest.approx(1.0)
        assert not bare.has_nanotubes

    def test_bare_film_poor_collection(self):
        # Without the porous CNT network most product escapes.
        assert NanostructuredFilm.bare().collection_efficiency() < 0.5

    def test_loading_requires_nanotubes(self):
        with pytest.raises(ValueError, match="nanotube"):
            NanostructuredFilm(nanotube=None, medium=BARE, loading_kg_m2=1e-4)


class TestCntFilm:
    def test_paper_nafion_film_enhances_area_tenfold_or_more(self):
        film = NanostructuredFilm.mwcnt_nafion()
        assert film.area_enhancement() > 10.0

    def test_rate_enhancement_bounded_by_intrinsic(self):
        film = NanostructuredFilm.mwcnt_nafion()
        assert 1.0 < film.rate_enhancement() <= film.intrinsic_rate_enhancement

    def test_rate_enhancement_saturates_with_loading(self):
        light = NanostructuredFilm.mwcnt_nafion(1e-4)
        heavy = NanostructuredFilm.mwcnt_nafion(1e-3)
        gain_light = light.rate_enhancement()
        gain_heavy = heavy.rate_enhancement()
        assert gain_heavy > gain_light
        # Saturation: the second factor-of-10 in loading gains little.
        assert gain_heavy < 1.3 * gain_light

    def test_area_enhancement_linear_in_loading(self):
        light = NanostructuredFilm.mwcnt_nafion(1e-4)
        heavy = NanostructuredFilm.mwcnt_nafion(2e-4)
        assert heavy.area_enhancement() - 1.0 \
            == pytest.approx(2 * (light.area_enhancement() - 1.0), rel=1e-9)

    def test_capacitance_tracks_area(self):
        film = NanostructuredFilm.mwcnt_nafion()
        assert film.capacitance_enhancement() \
            == pytest.approx(film.area_enhancement())

    def test_collection_efficiency_beats_bare(self):
        film = NanostructuredFilm.mwcnt_nafion()
        assert film.collection_efficiency() \
            > NanostructuredFilm.bare().collection_efficiency()

    def test_collection_efficiency_bounded(self):
        film = NanostructuredFilm.mwcnt_nafion(1e-2)
        assert film.collection_efficiency() <= 1.0

    def test_modify_couple_boosts_k0(self):
        film = NanostructuredFilm.mwcnt_nafion()
        modified = film.modify_couple(HYDROGEN_PEROXIDE)
        assert modified.k0 == pytest.approx(
            HYDROGEN_PEROXIDE.k0 * film.rate_enhancement())

    def test_enzyme_capacity_scales_with_area(self):
        light = NanostructuredFilm.mwcnt_nafion(1e-4)
        heavy = NanostructuredFilm.mwcnt_nafion(5e-4)
        assert heavy.enzyme_capacity_mol_m2() > light.enzyme_capacity_mol_m2()

    def test_film_thickness_micron_scale(self):
        film = NanostructuredFilm.mwcnt_nafion()
        assert 1e-7 < film.film_thickness_m() < 1e-4

    def test_chloroform_variant(self):
        film = NanostructuredFilm.mwcnt_chloroform()
        assert film.medium.name == "chloroform"
        assert film.has_nanotubes
