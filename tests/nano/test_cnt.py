"""Tests for repro.nano.cnt."""

import math

import pytest

from repro.nano.cnt import MWCNT_DROPSENS, CarbonNanotube, conductance_quantum


class TestConductanceQuantum:
    def test_value(self):
        # G0 = 2e^2/h ~ 77.5 uS.
        assert conductance_quantum() == pytest.approx(77.48e-6, rel=1e-3)


class TestPaperTube:
    def test_paper_geometry(self):
        # "MWCNT - diameter 10 nm, length 1-2 um - Dropsens, Spain".
        assert MWCNT_DROPSENS.outer_diameter_m == pytest.approx(10e-9)
        assert 1e-6 <= MWCNT_DROPSENS.length_m <= 2e-6

    def test_paper_tube_is_ballistic(self):
        # Ref [26]: mean free path two orders beyond macroscale conductors;
        # a 1.5 um tube conducts ballistically.
        assert MWCNT_DROPSENS.is_ballistic

    def test_mean_free_path_two_orders_above_copper(self):
        copper_mfp = 40e-9
        assert MWCNT_DROPSENS.mean_free_path_m >= 100 * copper_mfp


class TestGeometry:
    def test_sidewall_area(self):
        tube = CarbonNanotube(10e-9, 1e-6, n_walls=5)
        assert tube.sidewall_area_m2 == pytest.approx(math.pi * 10e-9 * 1e-6)

    def test_specific_surface_area_tens_of_m2_per_gram(self):
        # 10 nm MWCNT: experimental BET areas are tens to ~200 m^2/g.
        ssa_m2_g = MWCNT_DROPSENS.specific_surface_area_m2_kg / 1e3
        assert 20.0 < ssa_m2_g < 400.0

    def test_thinner_tube_higher_specific_area(self):
        thin = CarbonNanotube(6e-9, 1e-6, n_walls=5)
        thick = CarbonNanotube(20e-9, 1e-6, n_walls=5)
        assert thin.specific_surface_area_m2_kg \
            > thick.specific_surface_area_m2_kg

    def test_walls_must_fit_in_diameter(self):
        with pytest.raises(ValueError, match="cannot fit"):
            CarbonNanotube(5e-9, 1e-6, n_walls=20)


class TestTransport:
    def test_short_tube_conductance_near_ballistic_limit(self):
        tube = CarbonNanotube(10e-9, 0.5e-6, n_walls=10)
        channels = tube.conducting_channels_per_wall * tube.n_walls
        ballistic_limit = channels * conductance_quantum()
        assert tube.ballistic_conductance_s() \
            == pytest.approx(ballistic_limit, rel=3e-2)

    def test_long_tube_scales_diffusively(self):
        short = CarbonNanotube(10e-9, 1e-6, mean_free_path_m=1e-6)
        # Twice the length -> conductance drops, resistance grows.
        long = CarbonNanotube(10e-9, 2e-6, mean_free_path_m=1e-6)
        assert long.resistance_ohm() > short.resistance_ohm()

    def test_more_walls_conduct_better(self):
        few = CarbonNanotube(10e-9, 1e-6, n_walls=3)
        many = CarbonNanotube(10e-9, 1e-6, n_walls=10)
        assert many.ballistic_conductance_s() > few.ballistic_conductance_s()

    def test_resistance_kohm_scale(self):
        # Individual MWCNT resistances are in the kilo-ohm range.
        assert 100.0 < MWCNT_DROPSENS.resistance_ohm() < 1e6
