"""Tests for repro.inference.fusion (crosstalk unmixing + stacking)."""

import numpy as np
import pytest

from repro.engine.monitor import MonitorPlan, glucose_cohort, run_monitor
from repro.inference.fusion import (
    fuse_redundant_channels,
    mux_crosstalk_apply,
    mux_crosstalk_unmix,
    precision_weighted_stack,
)
from repro.inference.observation import monitor_observation_model
from repro.instrument.multiplexer import ChannelMultiplexer


@pytest.fixture()
def mux():
    return ChannelMultiplexer(n_channels=3, off_isolation=5e-3)


class TestCrosstalk:
    def test_apply_matches_scalar_multiplexer_model(self, mux):
        currents = np.array([[1e-7], [3e-7], [-2e-8]])
        observed = mux_crosstalk_apply(mux, currents)
        per_channel = {i: float(currents[i, 0]) for i in range(3)}
        for i in range(3):
            assert observed[i, 0] == pytest.approx(
                mux.observed_current(i, per_channel))

    def test_unmix_inverts_apply_exactly(self, mux):
        rng = np.random.default_rng(3)
        currents = rng.normal(scale=1e-7, size=(3, 40))
        recovered = mux_crosstalk_unmix(
            mux, mux_crosstalk_apply(mux, currents))
        np.testing.assert_allclose(recovered, currents,
                                   rtol=0.0, atol=1e-18)

    def test_zero_isolation_is_identity(self):
        mux = ChannelMultiplexer(n_channels=2, off_isolation=0.0)
        currents = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(
            mux_crosstalk_unmix(mux, currents), currents)

    def test_channel_count_mismatch_rejected(self, mux):
        with pytest.raises(ValueError, match="n_samples"):
            mux_crosstalk_unmix(mux, np.zeros((2, 5)))


class TestPrecisionStack:
    def test_equal_channels_average_and_shrink_variance(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        fused, var = precision_weighted_stack(values, np.array([2.0, 2.0]))
        np.testing.assert_allclose(fused, [2.0, 3.0])
        np.testing.assert_allclose(var, [1.0, 1.0])  # 2.0 / m

    def test_precise_channel_dominates(self):
        values = np.array([[0.0], [10.0]])
        fused, var = precision_weighted_stack(
            values, np.array([1e-6, 1.0]))
        assert fused[0] == pytest.approx(0.0, abs=1e-4)
        assert var[0] < 1e-6

    def test_rejects_non_positive_variances(self):
        with pytest.raises(ValueError, match="> 0"):
            precision_weighted_stack(np.zeros((2, 3)),
                                     np.array([1.0, 0.0]))


class TestFuseRedundantChannels:
    @pytest.fixture(scope="class")
    def bank(self):
        """Three redundant electrodes on one patient, one truth.

        The trajectory is pinned to the low-glucose end so the bank's
        currents stay inside the TIA rails — fusion of in-range
        channels is what this class exercises (censoring has its own
        tests).
        """
        from dataclasses import replace

        base = glucose_cohort(1)[0]
        trajectory = replace(base.trajectory, baseline_molar=3.2e-3,
                             circadian_amplitude_molar=2e-4,
                             excursion_amplitude_molar=2e-4)
        channel = replace(base, trajectory=trajectory)
        plan = MonitorPlan(channels=(channel,) * 3, duration_h=6.0,
                           seed=5)
        result = run_monitor(plan)
        model = monitor_observation_model(plan)
        return plan, result, model

    def test_fused_variance_beats_single_channel(self, bank):
        _, result, model = bank
        fused = fuse_redundant_channels(result.measured_current_a, model)
        single = ((model.measurement_variance_a2[0]
                   + model.wander_stationary_variance_a2()[0])
                  / model.gain_a_per_molar[0] ** 2)
        assert fused.concentration_molar.shape == (model.n_samples,)
        assert np.all(fused.variance_molar2 < single)

    def test_fused_estimate_tracks_truth_where_not_railed(self, bank):
        from repro.inference.observation import rail_censored_mask

        plan, result, model = bank
        fused = fuse_redundant_channels(result.measured_current_a, model)
        censored = rail_censored_mask(
            [c.sensor for c in plan.channels],
            result.measured_current_a).any(axis=0)
        truth = result.true_concentration_molar[0]
        errors = np.abs(fused.concentration_molar - truth)[~censored]
        assert np.mean(errors) < 0.05 * np.mean(truth)

    def test_mux_crosstalk_is_removed(self, bank):
        _, result, model = bank
        mux = ChannelMultiplexer(n_channels=3, off_isolation=2e-2)
        mixed = mux_crosstalk_apply(mux, result.measured_current_a)
        direct = fuse_redundant_channels(result.measured_current_a, model)
        unmixed = fuse_redundant_channels(mixed, model, mux=mux)
        np.testing.assert_allclose(unmixed.concentration_molar,
                                   direct.concentration_molar,
                                   rtol=0.0, atol=1e-12)

    def test_shape_mismatch_rejected(self, bank):
        _, _, model = bank
        with pytest.raises(ValueError, match="does not match"):
            fuse_redundant_channels(np.zeros((2, 3)), model)
