"""Tests for repro.inference.observation (consistency-by-construction)."""

import numpy as np
import pytest

from dataclasses import replace

from repro.engine.monitor import (
    MonitorPlan,
    glucose_cohort,
    reading_noise_sigma_a,
    run_monitor,
)
from repro.inference.observation import (
    monitor_observation_model,
    observation_variance_a2,
    quantization_sigma_a,
    rail_censored_mask,
    response_slope_a_per_molar,
)


@pytest.fixture(scope="module")
def plan():
    return MonitorPlan(channels=glucose_cohort(3), duration_h=12.0,
                       seed=11)


@pytest.fixture(scope="module")
def model(plan):
    return monitor_observation_model(plan)


class TestNoiseModel:
    def test_quantization_floor_positive(self, plan):
        sensor = plan.channels[0].sensor
        quant = quantization_sigma_a(sensor)
        assert quant > 0
        expected = (sensor.chain.adc.lsb_v / np.sqrt(12.0)
                    / sensor.chain.tia.gain_v_per_a)
        assert quant == pytest.approx(expected)

    def test_variance_combines_chain_and_quantization(self, plan):
        sensor = plan.channels[0].sensor
        full = observation_variance_a2(sensor, add_noise=True)
        quiet = observation_variance_a2(sensor, add_noise=False)
        assert quiet == pytest.approx(quantization_sigma_a(sensor) ** 2)
        assert full == pytest.approx(
            reading_noise_sigma_a(sensor) ** 2 + quiet)
        assert full > quiet


class TestResponseSlope:
    def test_matches_analytic_michaelis_menten_derivative(self, plan):
        sensor = plan.channels[0].sensor
        km = sensor.layer.apparent_km
        slope0 = sensor.expected_slope_a_per_molar()
        c = np.array([0.0, 0.5 * km, km, 5.0 * km])
        numeric = response_slope_a_per_molar(sensor, c)
        analytic = slope0 * (km / (km + c)) ** 2
        np.testing.assert_allclose(numeric, analytic, rtol=1e-4)

    def test_rejects_negative_points(self, plan):
        with pytest.raises(ValueError, match=">= 0"):
            response_slope_a_per_molar(plan.channels[0].sensor,
                                       np.array([-1e-3]))


class TestModelConsistency:
    """The subsystem's core claim: the model is the simulator's physics."""

    def test_shapes(self, plan, model):
        assert model.n_channels == plan.n_channels
        assert model.n_samples == plan.n_samples
        assert model.mean_molar.shape == (plan.n_channels, plan.n_samples)
        assert model.gain_a_per_molar.shape == model.mean_molar.shape

    def test_noiseless_offset_matches_simulated_current(self, plan):
        """With every stochastic term off, the simulator's digitized
        reading at the trajectory mean must equal the model's offset up
        to (rail clipping and) one quantization step."""
        quiet = replace(plan, add_noise=False)
        result = run_monitor(quiet)
        model = monitor_observation_model(quiet)
        censored = rail_censored_mask(
            [c.sensor for c in quiet.channels], result.measured_current_a)
        # Some channels of this cohort sit above the rail for their
        # whole trajectory (that is what censoring exists for) — the
        # consistency claim applies to every un-censored reading.
        assert np.any(~censored)
        for i, channel in enumerate(quiet.channels):
            open_sky = ~censored[i]
            if not np.any(open_sky):
                continue
            lsb_i = (channel.sensor.chain.adc.lsb_v
                     / channel.sensor.chain.tia.gain_v_per_a)
            np.testing.assert_allclose(
                result.measured_current_a[i, open_sky],
                model.offset_a[i, open_sky], rtol=0.0, atol=lsb_i)

    def test_ou_parameters_match_the_trajectory(self, plan, model):
        dt = plan.sample_period_s
        for i, channel in enumerate(plan.channels):
            a_c = np.exp(-dt / (channel.trajectory.noise_tau_h * 3600.0))
            assert model.a_signal[i] == pytest.approx(a_c)
            assert model.q_signal[i] == pytest.approx(
                channel.trajectory.noise_sigma_molar ** 2
                * (1.0 - a_c ** 2))
            a_w = np.exp(-dt / (channel.wander_tau_h * 3600.0))
            assert model.a_wander[i] == pytest.approx(a_w)

    def test_noise_off_zeroes_process_terms(self, plan):
        quiet = monitor_observation_model(replace(plan, add_noise=False))
        np.testing.assert_array_equal(quiet.q_signal, 0.0)
        np.testing.assert_array_equal(quiet.q_wander, 0.0)

    def test_gain_decays_with_retention(self, model):
        """Mean trajectories are near-periodic, so the drift retention
        must dominate the gain's long-term trend downward."""
        day_apart = model.gain_a_per_molar[:, 0] \
            / model.gain_a_per_molar[:, -1]
        assert np.all(day_apart > 1.0)

    def test_wander_stationary_variance(self, plan, model):
        sigma = np.array([c.wander_sigma_a for c in plan.channels])
        np.testing.assert_allclose(
            model.wander_stationary_variance_a2(), sigma ** 2, rtol=1e-9)


class TestRailCensoring:
    def test_rail_pinned_readings_flagged(self, plan):
        result = run_monitor(plan)
        sensors = [c.sensor for c in plan.channels]
        mask = rail_censored_mask(sensors, result.measured_current_a)
        chain = sensors[0].chain
        rail_i = chain.tia.rail_v / chain.tia.gain_v_per_a
        # Everything the mask calls open must sit clearly below rail.
        assert np.all(result.measured_current_a[~mask] < rail_i)
        # This glucose cohort genuinely rails part of the time — the
        # scenario the censoring exists for.
        assert np.any(mask)
        assert not np.all(mask)

    def test_shape_mismatch_rejected(self, plan):
        with pytest.raises(ValueError, match="measured block"):
            rail_censored_mask([plan.channels[0].sensor],
                               np.zeros((2, 4)))
