"""Tests for repro.inference.kalman (filter + smoother recursions)."""

import numpy as np
import pytest

from repro.inference.kalman import (
    KalmanState,
    kalman_filter_batch,
    kalman_filter_scalar,
    kalman_predict,
    kalman_update,
    rts_smoother_batch,
    rts_smoother_scalar,
)


def simulate(n_channels=3, n_samples=400, seed=7,
             a_signal=0.95, sigma_signal=2.0, a_wander=0.99,
             sigma_wander=0.5, r=1.0, gain=1.5, offset=10.0):
    """A synthetic cohort drawn exactly from the filter's model."""
    rng = np.random.default_rng(seed)
    q_s = sigma_signal ** 2 * (1.0 - a_signal ** 2)
    q_w = sigma_wander ** 2 * (1.0 - a_wander ** 2)
    d = np.zeros(n_channels)
    w = np.zeros(n_channels)
    truth = np.empty((n_channels, n_samples))
    z = np.empty((n_channels, n_samples))
    for k in range(n_samples):
        d = a_signal * d + np.sqrt(q_s) * rng.standard_normal(n_channels)
        w = a_wander * w + np.sqrt(q_w) * rng.standard_normal(n_channels)
        truth[:, k] = d
        z[:, k] = (offset + gain * d + w
                   + np.sqrt(r) * rng.standard_normal(n_channels))
    params = dict(gain=np.full((n_channels, n_samples), gain),
                  offset=np.full((n_channels, n_samples), offset),
                  r=np.full(n_channels, r),
                  a_signal=a_signal, q_signal=q_s,
                  a_wander=a_wander, q_wander=q_w)
    return truth, z, params


def run_both(z, params):
    args = (params["gain"], params["offset"], params["r"],
            params["a_signal"], params["q_signal"],
            params["a_wander"], params["q_wander"])
    return kalman_filter_batch(z, *args), kalman_filter_scalar(z, *args)


class TestFilter:
    def test_batch_matches_scalar_reference(self):
        _, z, params = simulate()
        batch, scalar = run_both(z, params)
        for name in ("m1", "m2", "p11", "p12", "p22",
                     "pm1", "pm2", "pp11", "pp12", "pp22"):
            np.testing.assert_allclose(
                getattr(batch, name), getattr(scalar, name),
                rtol=0.0, atol=1e-9, err_msg=name)

    def test_filter_beats_raw_inversion(self):
        truth, z, params = simulate()
        trace, _ = run_both(z, params)
        raw = (z - params["offset"]) / params["gain"]
        filter_rmse = np.sqrt(np.mean((trace.m1 - truth) ** 2))
        raw_rmse = np.sqrt(np.mean((raw - truth) ** 2))
        assert filter_rmse < 0.8 * raw_rmse

    def test_variance_converges_and_covers(self):
        truth, z, params = simulate(n_channels=8, n_samples=2000)
        trace, _ = run_both(z, params)
        # Steady-state posterior variance: positive, below the prior
        # stationary variance, and calibrated (95 % band covers ~95 %).
        stationary = params["q_signal"] / (1.0 - params["a_signal"] ** 2)
        tail = trace.p11[:, 100:]
        assert np.all(tail > 0)
        assert np.all(tail < stationary)
        band = 1.96 * np.sqrt(trace.p11)
        coverage = np.mean(np.abs(trace.m1 - truth) <= band)
        assert 0.90 <= coverage <= 0.99

    def test_infinite_variance_sample_is_skipped(self):
        """A censored reading (r = inf) must leave the state at its
        prediction — no information, no update."""
        _, z, params = simulate(n_channels=2, n_samples=5)
        r = np.full_like(z, params["r"][0])
        r[:, 2] = np.inf
        trace = kalman_filter_batch(
            z, params["gain"], params["offset"], r,
            params["a_signal"], params["q_signal"],
            params["a_wander"], params["q_wander"])
        np.testing.assert_array_equal(trace.m1[:, 2], trace.pm1[:, 2])
        np.testing.assert_array_equal(trace.p11[:, 2], trace.pp11[:, 2])

    def test_zero_noise_model_stays_pinned(self):
        """With no process noise and an exact start the posterior stays
        a point mass at the deterministic trajectory."""
        z = np.full((1, 10), 3.0)
        trace = kalman_filter_batch(
            z, gain=np.ones((1, 10)), offset=np.zeros((1, 10)),
            r=np.array([1.0]), a_signal=0.9, q_signal=0.0,
            a_wander=0.9, q_wander=0.0)
        np.testing.assert_array_equal(trace.m1, 0.0)
        np.testing.assert_array_equal(trace.p11, 0.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="n_channels"):
            kalman_filter_batch(np.zeros(5), 1.0, 0.0, 1.0,
                                0.9, 1.0, 0.9, 1.0)
        with pytest.raises(ValueError, match=">= 0"):
            kalman_filter_batch(np.zeros((1, 5)), 1.0, 0.0, -1.0,
                                0.9, 1.0, 0.9, 1.0)

    def test_initial_state_is_respected(self):
        _, z, params = simulate(n_channels=2, n_samples=3)
        start = KalmanState.zeros(2)
        start.m1[:] = 5.0
        trace = kalman_filter_batch(
            z, params["gain"], params["offset"], params["r"],
            params["a_signal"], params["q_signal"],
            params["a_wander"], params["q_wander"], initial=start)
        np.testing.assert_allclose(trace.pm1[:, 0],
                                   params["a_signal"] * 5.0)
        assert np.all(start.m1 == 5.0)  # inputs never mutated


class TestPredictUpdate:
    def test_predict_propagates_covariance(self):
        state = KalmanState.zeros(2)
        state.p11[:] = 4.0
        out = kalman_predict(state, 0.5, 1.0, 1.0, 0.0)
        np.testing.assert_allclose(out.p11, 0.25 * 4.0 + 1.0)
        np.testing.assert_allclose(out.p22, 0.0)

    def test_update_moves_toward_measurement(self):
        state = KalmanState.zeros(1)
        state.p11[:] = 1.0
        out = kalman_update(state, np.array([2.0]), 1.0, 0.0, 1.0)
        assert 0.0 < out.m1[0] < 2.0
        assert out.p11[0] < 1.0


class TestSmoother:
    def test_batch_matches_scalar_reference(self):
        _, z, params = simulate()
        batch_trace, scalar_trace = run_both(z, params)
        batch = rts_smoother_batch(batch_trace, params["a_signal"],
                                   params["a_wander"])
        scalar = rts_smoother_scalar(scalar_trace, params["a_signal"],
                                     params["a_wander"])
        for name in ("m1", "m2", "p11", "p12", "p22"):
            np.testing.assert_allclose(
                getattr(batch, name), getattr(scalar, name),
                rtol=0.0, atol=1e-9, err_msg=name)

    def test_smoothing_reduces_variance_and_error(self):
        truth, z, params = simulate(n_channels=6, n_samples=1000)
        trace, _ = run_both(z, params)
        smoothed = rts_smoother_batch(trace, params["a_signal"],
                                      params["a_wander"])
        interior = slice(10, -10)
        assert np.all(smoothed.p11[:, interior]
                      <= trace.p11[:, interior] + 1e-12)
        filter_rmse = np.sqrt(np.mean((trace.m1 - truth) ** 2))
        smooth_rmse = np.sqrt(np.mean((smoothed.m1 - truth) ** 2))
        assert smooth_rmse < filter_rmse

    def test_last_sample_equals_filter(self):
        _, z, params = simulate(n_samples=50)
        trace, _ = run_both(z, params)
        smoothed = rts_smoother_batch(trace, params["a_signal"],
                                      params["a_wander"])
        np.testing.assert_array_equal(smoothed.m1[:, -1],
                                      trace.m1[:, -1])

    def test_singular_wander_block_is_handled(self):
        """q_wander = 0 keeps the wander covariance identically zero;
        the smoother must fall back to the signal block instead of
        dividing by a zero determinant."""
        _, z, params = simulate(n_channels=2, n_samples=60,
                                sigma_wander=0.0)
        trace, _ = run_both(z, params)
        smoothed = rts_smoother_batch(trace, params["a_signal"],
                                      params["a_wander"])
        assert np.all(np.isfinite(smoothed.m1))
        assert np.all(np.isfinite(smoothed.p11))
        np.testing.assert_array_equal(smoothed.m2, 0.0)
