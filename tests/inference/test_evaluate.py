"""Tests for repro.inference.evaluate (RMSE, coverage, detection)."""

import numpy as np
import pytest

from repro.inference.evaluate import (
    credible_interval,
    detection_delay_h,
    interval_coverage,
    reconstruction_mard,
    reconstruction_rmse,
)


class TestErrors:
    def test_rmse_per_channel(self):
        true = np.array([[1.0, 1.0], [2.0, 2.0]])
        est = np.array([[1.0, 2.0], [2.0, 2.0]])
        rmse = reconstruction_rmse(true, est)
        np.testing.assert_allclose(rmse, [np.sqrt(0.5), 0.0])

    def test_mard_excludes_non_positive_truth(self):
        true = np.array([[0.0, 2.0, 4.0]])
        est = np.array([[5.0, 1.0, 4.0]])
        # Only the 2.0 and 4.0 samples count: (0.5 + 0.0) / 2.
        np.testing.assert_allclose(reconstruction_mard(true, est), [0.25])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            reconstruction_rmse(np.zeros((1, 3)), np.zeros((1, 4)))


class TestIntervals:
    def test_band_is_symmetric_and_clipped(self):
        est = np.array([[1.0, 0.1]])
        std = np.array([[0.2, 0.2]])
        lower, upper = credible_interval(est, std, z=1.96)
        np.testing.assert_allclose(upper, est + 1.96 * std)
        assert lower[0, 0] == pytest.approx(1.0 - 1.96 * 0.2)
        assert lower[0, 1] == 0.0  # clipped at the physical floor

    def test_coverage_counts_containment(self):
        true = np.array([[1.0, 2.0, 3.0, 4.0]])
        lower = np.array([[0.5, 2.5, 2.5, 3.5]])
        upper = np.array([[1.5, 3.5, 3.5, 4.5]])
        np.testing.assert_allclose(
            interval_coverage(true, lower, upper), [0.75])

    def test_gaussian_coverage_is_nominal(self):
        rng = np.random.default_rng(0)
        true = rng.standard_normal((4, 5000))
        est = np.zeros_like(true) + 5.0
        lower, upper = credible_interval(est, np.ones_like(true), 1.96)
        coverage = interval_coverage(true + 5.0, lower, upper)
        assert np.all((coverage > 0.93) & (coverage < 0.97))

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError, match="> 0"):
            credible_interval(np.zeros((1, 2)), np.zeros((1, 2)), 0.0)


class TestDetection:
    WINDOW = (1.0, 3.0)

    def test_delay_in_hours(self):
        true = np.array([[2.0, 2.0, 4.0, 4.0, 4.0]])
        est = np.array([[2.0, 2.0, 2.5, 2.9, 3.5]])
        delay = detection_delay_h(true, est, *self.WINDOW,
                                  sample_period_s=1800.0)
        # Truth leaves at index 2, estimate at index 4: 2 samples late.
        np.testing.assert_allclose(delay, [1.0])

    def test_immediate_detection_is_zero(self):
        true = np.array([[2.0, 4.0]])
        est = np.array([[2.0, 3.7]])
        np.testing.assert_allclose(
            detection_delay_h(true, est, *self.WINDOW, 900.0), [0.0])

    def test_no_excursion_is_nan_and_miss_is_inf(self):
        true = np.array([[2.0, 2.0], [2.0, 4.0]])
        est = np.array([[2.0, 2.0], [2.0, 2.0]])
        delays = detection_delay_h(true, est, *self.WINDOW, 900.0)
        assert np.isnan(delays[0])
        assert np.isinf(delays[1])

    def test_low_side_excursions_count(self):
        true = np.array([[2.0, 0.5, 0.5]])
        est = np.array([[2.0, 1.5, 0.9]])
        np.testing.assert_allclose(
            detection_delay_h(true, est, *self.WINDOW, 3600.0), [1.0])

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="low < high"):
            detection_delay_h(np.zeros((1, 2)), np.zeros((1, 2)),
                              3.0, 1.0, 900.0)
