"""Public-API surface tests.

Every name a subpackage re-exports must import and be functional at the
advertised level — the contract a downstream user relies on.  Also covers
the few public helpers not exercised elsewhere (table rendering with
results, stack volume, platform helpers).
"""

import importlib
import inspect

import numpy as np
import pytest

import repro


SUBPACKAGES = [
    "analytes", "bio", "campaigns", "chem", "classification", "core",
    "electrodes", "engine", "enzymes", "experiments", "inference",
    "instrument", "nano", "pk", "scenarios", "serve", "signal", "system",
    "techniques", "telemetry", "therapy", "transducers",
]


class TestExports:
    @pytest.mark.parametrize("subpackage", SUBPACKAGES)
    def test_subpackage_all_resolves(self, subpackage):
        module = importlib.import_module(f"repro.{subpackage}")
        for name in getattr(module, "__all__", []):
            assert getattr(module, name) is not None, f"{subpackage}.{name}"

    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_all(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestDocstrings:
    """Every public callable must carry a docstring — the contract the
    rendered docs site (mkdocstrings, built with ``--strict`` in CI)
    depends on."""

    @pytest.mark.parametrize("subpackage", SUBPACKAGES)
    def test_every_public_callable_documented(self, subpackage):
        module = importlib.import_module(f"repro.{subpackage}")
        missing = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if not callable(obj):
                continue
            if not (obj.__doc__ or "").strip():
                missing.append(f"{subpackage}.{name}")
            if inspect.isclass(obj):
                missing.extend(
                    f"{subpackage}.{name}.{attr}"
                    for attr, member in vars(obj).items()
                    if not attr.startswith("_")
                    and callable(member)
                    and not (member.__doc__ or "").strip())
        assert not missing, f"undocumented public callables: {missing}"

    @pytest.mark.parametrize("module_name", [
        "repro.engine", "repro.engine.monitor", "repro.engine.plan",
        "repro.engine.measure", "repro.engine.runner",
        "repro.engine.calibrate", "repro.engine.kernels",
        "repro.engine.therapy", "repro.engine.estimation",
        "repro.engine.core", "repro.engine.core.plan",
        "repro.engine.core.kernelset", "repro.engine.core.executor",
        "repro.engine.core.registry", "repro.engine.core.contract",
        "repro.engine.core.bench", "repro.engine.core.snapshot",
        "repro.serve", "repro.serve.session", "repro.serve.server",
        "repro.serve.client", "repro.serve.cli",
        "repro.pk.models", "repro.pk.dosing",
        "repro.pk.population", "repro.pk.drugs",
        "repro.therapy.controllers", "repro.therapy.metrics",
        "repro.scenarios", "repro.scenarios.spec",
        "repro.scenarios.protocols", "repro.scenarios.workloads",
        "repro.scenarios.runner", "repro.scenarios.cli",
        "repro.campaigns", "repro.campaigns.spec",
        "repro.campaigns.store", "repro.campaigns.runner",
        "repro.campaigns.cli", "repro.campaigns.report",
        "repro.inference", "repro.inference.observation",
        "repro.inference.kalman", "repro.inference.fusion",
        "repro.inference.evaluate",
        "repro.telemetry", "repro.telemetry.recorder",
        "repro.telemetry.aggregate", "repro.telemetry.sinks",
        "repro.telemetry.perfetto", "repro.telemetry.metrics",
        "repro.telemetry.cli",
    ])
    def test_engine_modules_documented(self, module_name):
        """The engine is the documented flagship: every module, public
        function and public method needs a docstring."""
        module = importlib.import_module(module_name)
        assert (module.__doc__ or "").strip(), module_name
        missing = []
        for name, obj in vars(module).items():
            if name.startswith("_") or not callable(obj):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module_name}.{name}")
            if inspect.isclass(obj):
                missing.extend(
                    f"{module_name}.{name}.{attr}"
                    for attr, member in vars(obj).items()
                    if not attr.startswith("_")
                    and (callable(member) or isinstance(member, property))
                    and not (getattr(member, "__doc__", "") or "").strip())
        assert not missing, f"undocumented engine callables: {missing}"


class TestRenderTable2WithResults:
    def test_render_groups_and_measured_values(self, glucose_sensor):
        from repro.core.calibration import (
            default_protocol_for_range,
            run_calibration,
        )
        from repro.core.registry import spec_by_id
        from repro.core.tables import render_table2

        spec = spec_by_id("glucose/this-work")
        result = run_calibration(glucose_sensor,
                                 default_protocol_for_range(1e-3),
                                 np.random.default_rng(2))
        text = render_table2({spec.sensor_id: (spec, result)})
        assert "GLUCOSE" in text.upper()
        assert "measured" in text
        assert "55.5" in text


class TestStackGeometry:
    def test_volume_consistency(self):
        from repro.system.stack3d import guiducci_stack

        stack = guiducci_stack()
        expected = stack.footprint_mm2 * stack.total_thickness_um() * 1e-3
        assert stack.volume_mm3() == pytest.approx(expected)

    def test_volume_sub_cubic_centimetre(self):
        """The implantability sanity check: the whole stack fits well
        inside a cubic centimetre."""
        from repro.system.stack3d import guiducci_stack

        assert guiducci_stack().volume_mm3() < 1000.0


class TestPlatformHelpers:
    def test_default_calibration_upper(self):
        from repro.core.platform import default_calibration_upper
        from repro.core.registry import spec_by_id

        upper = default_calibration_upper(spec_by_id("glucose/this-work"))
        assert upper == pytest.approx(1e-3)


class TestWaveformDetails:
    def test_cyclic_scan_rate_signs(self):
        from repro.techniques.waveform import cyclic_wave

        wave = cyclic_wave(0.1, -0.8, 0.1, 100.0)
        rates = wave.scan_rate_v_s()
        n = rates.size
        assert np.median(rates[: n // 2 - 2]) == pytest.approx(-0.1, rel=0.05)
        assert np.median(rates[n // 2 + 2:]) == pytest.approx(0.1, rel=0.05)

    def test_measurement_metadata_roundtrip(self, glucose_sensor):
        record = glucose_sensor.ca_protocol.simulate_step(
            glucose_sensor.steady_state_current, 1e-4, 5.0, 1.0)
        assert record.metadata["concentration_molar"] == 1e-4
        assert record.metadata["plateau_a"] == pytest.approx(
            glucose_sensor.steady_state_current(1e-4))


class TestAcquiredTraceDiagnostics:
    def test_rms_error_zero_without_noise(self, glucose_sensor):
        trace = np.full(400, 1e-8)
        acquired = glucose_sensor.chain.acquire(
            trace, glucose_sensor.ca_protocol.sampling_rate_hz,
            add_noise=False)
        # Noiseless path: the only error left is quantization.
        assert acquired.rms_error_a < glucose_sensor.chain.adc.lsb_v \
            / glucose_sensor.chain.tia.gain_v_per_a

    def test_shape_mismatch_rejected(self):
        from repro.instrument.chain import AcquiredTrace

        with pytest.raises(ValueError):
            AcquiredTrace(np.zeros(3), np.zeros(3), np.zeros(4))
