"""The ``python -m repro telemetry`` surface, driven in-process.

``summary`` renders a metrics snapshot from either source — a JSON
snapshot file or a campaign SQLite store whose shards recorded metrics
— and the usage-error paths (missing file, store without metrics,
malformed JSON) exit 2 with a message instead of a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.scenarios import Scenario
from repro.scenarios.cli import main
from repro.telemetry import (
    MetricsRegistry,
    parse_prometheus,
    set_metrics_registry,
)


@pytest.fixture(scope="module")
def small_campaign() -> CampaignSpec:
    """A four-shard, ~3 ms-per-shard monitor campaign."""
    base = Scenario(
        workload="monitor", name="wear",
        spec={"cohort": {"sensor": "glucose/this-work",
                         "analyte": "glucose", "n_patients": 2},
              "duration_h": 6.0, "sample_period_s": 300.0,
              "keep_traces": False})
    return CampaignSpec(name="fleet", base=base, n_shards=4, seed=2012)


@pytest.fixture()
def snapshot_file(tmp_path):
    """A saved registry snapshot with one counter and one histogram."""
    registry = MetricsRegistry()
    registry.counter("repro_jobs_total", "jobs",
                     ["outcome"]).labels(outcome="done").inc(4)
    hist = registry.histogram("repro_latency_seconds", "latency",
                              buckets=[0.1, 1.0])
    hist.observe(0.05)
    hist.observe(0.5)
    path = tmp_path / "snapshot.json"
    path.write_text(json.dumps(registry.snapshot()))
    return path


@pytest.fixture()
def metered_store(small_campaign, tmp_path):
    """The small campaign run with a live registry installed, so its
    store carries one metrics snapshot per shard."""
    store_path = tmp_path / "fleet.sqlite"
    registry = MetricsRegistry()
    previous = set_metrics_registry(registry)
    try:
        run_campaign(small_campaign, store_path, workers=1)
    finally:
        set_metrics_registry(previous)
    return store_path


class TestSummaryFromSnapshot:
    def test_renders_table(self, snapshot_file, capsys):
        assert main(["telemetry", "summary", str(snapshot_file)]) == 0
        out = capsys.readouterr().out
        assert "repro_jobs_total" in out
        assert "repro_latency_seconds" in out

    def test_json_round_trips(self, snapshot_file, capsys):
        assert main(["telemetry", "summary", str(snapshot_file),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics_schema_version"] == 1
        jobs = payload["instruments"]["repro_jobs_total"]
        assert jobs["series"][0]["value"] == 4

    def test_prometheus_validates(self, snapshot_file, capsys):
        assert main(["telemetry", "summary", str(snapshot_file),
                     "--prometheus"]) == 0
        samples = parse_prometheus(capsys.readouterr().out)
        names = {sample["name"] for sample in samples}
        assert "repro_jobs_total" in names
        assert "repro_latency_seconds_bucket" in names


class TestSummaryFromStore:
    def test_merges_shard_snapshots(self, metered_store, small_campaign,
                                    capsys):
        assert main(["telemetry", "summary", str(metered_store),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        execute = payload["instruments"]["repro_core_execute_seconds"]
        (row,) = execute["series"]
        assert row["labels"] == {"workload": "monitor"}
        # one execute() observation per shard, summed fleet-wide
        assert row["count"] == small_campaign.n_shards

    def test_store_without_metrics_exits_2(self, small_campaign,
                                           tmp_path, capsys):
        store_path = tmp_path / "bare.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        rc = main(["telemetry", "summary", str(store_path)])
        assert rc == 2
        assert "REPRO_METRICS" in capsys.readouterr().out


class TestUsageErrors:
    def test_missing_file_exits_2(self, tmp_path, capsys):
        rc = main(["telemetry", "summary", str(tmp_path / "nope")])
        assert rc == 2
        assert "no such file" in capsys.readouterr().out

    def test_non_snapshot_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"not": "a snapshot"}')
        assert main(["telemetry", "summary", str(path)]) == 2

    def test_binary_garbage_exits_2(self, tmp_path, capsys):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"\x00\x01\x02 not sqlite, not json")
        assert main(["telemetry", "summary", str(path)]) == 2
