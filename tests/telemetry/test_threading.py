"""Thread safety: concurrent recording produces consistent state.

Serve's worker pool and campaign shard threads all write through one
recorder, one JSONL sink and one metrics registry.  These tests hammer
each from many threads and assert the invariants that matter: JSONL
output stays line-complete valid JSON with no interleaved writes,
aggregate counts add up exactly, and registry instruments lose no
updates.
"""

from __future__ import annotations

import threading

from repro.telemetry import (
    InMemoryRecorder,
    JsonlSink,
    MetricsRegistry,
    read_jsonl,
    trace_context,
)

N_THREADS = 8
N_EVENTS = 50


def _run_threads(target) -> None:
    """Start N_THREADS running ``target(thread_index)``, join all."""
    threads = [threading.Thread(target=target, args=(index,))
               for index in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentRecorder:
    def test_spans_and_counts_from_many_threads(self, tmp_path):
        """N threads x spans + counters through one recorder/sink:
        every JSONL line parses, every event lands exactly once."""
        trace = tmp_path / "trace.jsonl"
        recorder = InMemoryRecorder(sinks=[JsonlSink(trace)])

        def work(index: int) -> None:
            for step in range(N_EVENTS):
                with trace_context():
                    with recorder.span("unit.work", thread=index,
                                       step=step):
                        recorder.count("unit.events")

        _run_threads(work)
        recorder.close()

        assert recorder.counters["unit.events"] == N_THREADS * N_EVENTS
        assert len(recorder.spans) == N_THREADS * N_EVENTS

        rows = read_jsonl(trace)  # raises if any line is torn JSON
        spans = [row for row in rows if row["type"] == "span"]
        counts = [row for row in rows if row["type"] == "counter"]
        assert len(spans) == N_THREADS * N_EVENTS
        assert len(counts) == N_THREADS * N_EVENTS
        # every span got its own thread's trace id stamped, none empty
        trace_ids = {row["attrs"]["trace_id"] for row in spans}
        assert len(trace_ids) == N_THREADS * N_EVENTS
        # per-thread events are complete: each (thread, step) pair once
        seen = {(row["attrs"]["thread"], row["attrs"]["step"])
                for row in spans}
        assert len(seen) == N_THREADS * N_EVENTS

    def test_span_depth_is_per_thread(self):
        """Nesting depth lives in thread-local storage: deep nesting
        on one thread never leaks indentation into another."""
        recorder = InMemoryRecorder()
        depths: dict[int, int] = {}
        barrier = threading.Barrier(2)

        def nested(index: int) -> None:
            with recorder.span("outer"):
                barrier.wait(timeout=10)
                if index == 0:
                    with recorder.span("inner"):
                        barrier.wait(timeout=10)
                else:
                    barrier.wait(timeout=10)
                depths[index] = recorder._depth

        _threads = [threading.Thread(target=nested, args=(i,))
                    for i in range(2)]
        for thread in _threads:
            thread.start()
        for thread in _threads:
            thread.join()
        assert depths == {0: 1, 1: 1}


class TestConcurrentRegistry:
    def test_no_lost_updates(self):
        registry = MetricsRegistry()

        def work(index: int) -> None:
            counter = registry.counter("ops_total", "", ["thread"])
            hist = registry.histogram("op_seconds", buckets=[0.5, 1.0])
            for step in range(N_EVENTS):
                counter.labels(thread=index).inc()
                hist.observe(0.25)

        _run_threads(work)
        snapshot = registry.snapshot()
        totals = sum(row["value"] for row in
                     snapshot["instruments"]["ops_total"]["series"])
        assert totals == N_THREADS * N_EVENTS
        lat = snapshot["instruments"]["op_seconds"]["series"][0]
        assert lat["count"] == N_THREADS * N_EVENTS
        assert lat["bucket_counts"][0] == N_THREADS * N_EVENTS

    def test_concurrent_family_registration_is_single(self):
        registry = MetricsRegistry()
        families = []

        def register(index: int) -> None:
            families.append(registry.counter("shared_total"))

        _run_threads(register)
        assert all(family is families[0] for family in families)
