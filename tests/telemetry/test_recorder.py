"""Recorder semantics: strict no-op when disabled, safe when enabled.

The two contracts the whole subsystem hangs on: a disabled recorder
costs nothing on the hot path (the executor's disabled branch makes
*zero* telemetry calls, and the null span is one shared object), and
an enabled recorder is exception-safe (spans record and re-raise,
nesting depth unwinds).
"""

import pytest

from repro.engine.core import kernels_for
from repro.engine.core.executor import execute
from repro.telemetry import (
    NULL_RECORDER,
    InMemoryRecorder,
    NullRecorder,
    count,
    gauge,
    get_recorder,
    recorder_from_env,
    set_recorder,
    span,
    telemetry_env_enabled,
)


class CountingStub(NullRecorder):
    """A disabled recorder that counts every telemetry verb call.

    Still ``enabled = False``: any call that lands here proves a hot
    path did telemetry work despite telemetry being off.
    """

    def __init__(self):
        super().__init__()
        self.calls = 0

    def span(self, name, **attrs):
        self.calls += 1
        return super().span(name, **attrs)

    def count(self, name, value=1.0):
        self.calls += 1

    def gauge(self, name, value):
        self.calls += 1

    def record_span(self, record):
        self.calls += 1


class TestDisabledIsFree:
    def test_executor_disabled_path_makes_zero_telemetry_calls(self):
        """The acceptance stub: a full engine run through the chunked
        executor with telemetry off must never touch the recorder."""
        stub = CountingStub()
        previous = set_recorder(stub)
        try:
            kernels = kernels_for("monitor")
            execute(kernels, kernels.contract_plan())
        finally:
            set_recorder(previous)
        assert stub.calls == 0

    def test_null_span_is_one_shared_object(self):
        """No allocation per span: every disabled span() call returns
        the same context manager instance."""
        first = NULL_RECORDER.span("a", key=1)
        second = NULL_RECORDER.span("b")
        assert first is second

    def test_null_verbs_record_nothing_and_null_span_nests(self):
        with NULL_RECORDER.span("outer"):
            with NULL_RECORDER.span("inner"):
                NULL_RECORDER.count("n")
                NULL_RECORDER.gauge("g", 1.0)

    def test_null_span_propagates_exceptions(self):
        with pytest.raises(RuntimeError, match="boom"):
            with NULL_RECORDER.span("failing"):
                raise RuntimeError("boom")


class TestEnabledSpans:
    def test_span_records_duration_and_attrs(self, recorder):
        with recorder.span("work", workload="monitor"):
            pass
        (record,) = recorder.spans
        assert record.name == "work"
        assert record.attrs == {"workload": "monitor"}
        assert record.duration_s >= 0.0
        assert record.error is None

    def test_nesting_depth_tracks_and_unwinds(self, recorder):
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
            with recorder.span("sibling"):
                pass
        depths = {r.name: r.depth for r in recorder.spans}
        assert depths == {"inner": 1, "sibling": 1, "outer": 0}

    def test_exception_recorded_and_propagated(self, recorder):
        with pytest.raises(ValueError, match="bad"):
            with recorder.span("outer"):
                with recorder.span("failing"):
                    raise ValueError("bad")
        errors = {r.name: r.error for r in recorder.spans}
        assert errors == {"failing": "ValueError", "outer": "ValueError"}
        # Depth unwound cleanly despite the raise: a new root span
        # starts back at depth 0.
        with recorder.span("after"):
            pass
        assert recorder.spans[-1].depth == 0

    def test_counters_accumulate_and_gauges_latest_win(self, recorder):
        recorder.count("chunks")
        recorder.count("chunks", 2)
        recorder.gauge("fill", 0.25)
        recorder.gauge("fill", 0.75)
        assert recorder.counters == {"chunks": 3.0}
        assert recorder.gauges == {"fill": 0.75}

    def test_module_level_verbs_hit_active_recorder(self, recorder):
        with span("modlevel"):
            count("c", 2.0)
            gauge("g", 9.0)
        assert recorder.spans[0].name == "modlevel"
        assert recorder.counters == {"c": 2.0}
        assert recorder.gauges == {"g": 9.0}


class TestActiveRecorder:
    def test_default_is_disabled(self):
        previous = set_recorder(None)
        try:
            assert get_recorder() is NULL_RECORDER
        finally:
            set_recorder(previous)

    def test_set_recorder_returns_previous(self):
        first = InMemoryRecorder()
        previous = set_recorder(first)
        try:
            assert get_recorder() is first
            second = InMemoryRecorder()
            assert set_recorder(second) is first
            assert get_recorder() is second
        finally:
            set_recorder(previous)

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("no", False), ("off", False),
    ])
    def test_env_enable_spellings(self, value, expected):
        assert telemetry_env_enabled({"REPRO_TELEMETRY": value}) \
            is expected

    def test_env_unset_is_disabled(self):
        assert telemetry_env_enabled({}) is False

    def test_recorder_from_env_disabled(self):
        assert recorder_from_env({}) is NULL_RECORDER

    def test_recorder_from_env_enabled_with_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        recorder = recorder_from_env({"REPRO_TELEMETRY": "1",
                                      "REPRO_TELEMETRY_TRACE":
                                      str(trace)})
        assert isinstance(recorder, InMemoryRecorder)
        assert recorder.enabled
        with recorder.span("probe"):
            pass
        recorder.close()
        assert trace.is_file()
