"""Telemetry test fixtures: an installed recorder that always restores.

The active recorder is process-global state, so every test that
enables telemetry must restore whatever was active before it — the
fixture owns that contract so no failing assertion can leak an enabled
recorder into unrelated tests.
"""

import pytest

from repro.telemetry import InMemoryRecorder, set_recorder


@pytest.fixture()
def recorder():
    """An installed InMemoryRecorder, uninstalled on teardown."""
    active = InMemoryRecorder()
    previous = set_recorder(active)
    yield active
    set_recorder(previous)
