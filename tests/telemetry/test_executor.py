"""Executor instrumentation: spans and counters for every workload.

One chunk loop serves all registered kernel sets, so instrumenting it
once gives every workload — and any future fifth — timing for free.
These tests pin what the loop emits (phase spans, chunk/sample
counters, the kernel set's ``describe_metrics`` counters) and, most
importantly, that instrumentation never changes results: the
instrumented run is bit-identical to the disabled one.
"""

import numpy as np

from repro.engine.core import kernels_for, registered_workloads, run_workload
from repro.telemetry import InMemoryRecorder, set_recorder


def run_instrumented(workload, plan):
    """Run ``plan`` under a fresh recorder; return (result, recorder)."""
    recorder = InMemoryRecorder()
    previous = set_recorder(recorder)
    try:
        result = run_workload(workload, plan)
    finally:
        set_recorder(previous)
    return result, recorder


class TestCoreSpans:
    def test_monitor_run_emits_phase_spans(self):
        plan = kernels_for("monitor").contract_plan()
        __, recorder = run_instrumented("monitor", plan)
        names = {record.name for record in recorder.spans}
        assert {"core.execute", "core.compile", "core.init_state",
                "core.segment", "core.run_chunk",
                "core.finalize"} <= names
        execute = [r for r in recorder.spans
                   if r.name == "core.execute"]
        assert len(execute) == 1
        assert execute[0].attrs == {"workload": "monitor"}
        assert execute[0].depth == 0

    def test_chunk_and_sample_counters_add_up(self):
        kernels = kernels_for("monitor")
        plan = kernels.contract_plan()
        __, recorder = run_instrumented("monitor", plan)
        compiled = kernels.compile(plan)
        n_samples = sum(segment.stop - segment.start
                        for segment in compiled.segments)
        chunk_spans = [r for r in recorder.spans
                       if r.name == "core.run_chunk"]
        assert recorder.counters["core.chunks"] == len(chunk_spans)
        assert recorder.counters["core.samples"] == \
            compiled.n_channels * n_samples

    def test_run_chunk_spans_carry_segment_index(self):
        plan = kernels_for("therapy").contract_plan()
        __, recorder = run_instrumented("therapy", plan)
        segments = {record.attrs["segment"]
                    for record in recorder.spans
                    if record.name == "core.segment"}
        assert segments == {0, 1, 2}  # three dose intervals

    def test_every_registered_workload_gets_spans(self):
        for workload in registered_workloads():
            plan = kernels_for(workload).contract_plan()
            __, recorder = run_instrumented(workload, plan)
            names = {record.name for record in recorder.spans}
            assert "core.execute" in names, workload
            assert "core.run_chunk" in names, workload


class TestDescribeMetrics:
    def test_monitor_metrics_land_as_counters(self):
        plan = kernels_for("monitor").contract_plan()
        result, recorder = run_instrumented("monitor", plan)
        assert recorder.counters["monitor.recalibrations"] == \
            int(np.sum(result.n_recalibrations))
        assert recorder.counters["monitor.readings"] == \
            plan.n_channels * plan.n_samples
        assert "monitor.rail_censored_samples" in recorder.counters

    def test_therapy_metrics_land_as_counters(self):
        plan = kernels_for("therapy").contract_plan()
        result, recorder = run_instrumented("therapy", plan)
        assert recorder.counters["therapy.doses"] == \
            result.doses_mol.size
        assert recorder.counters["therapy.doses_adjusted"] == \
            int(np.sum(np.diff(result.doses_mol, axis=1) != 0.0))

    def test_default_describe_metrics_is_empty(self):
        kernels = kernels_for("calibration")
        assert kernels.describe_metrics(None, None) == {}


class TestInstrumentationIsInert:
    def test_instrumented_result_bit_identical_to_disabled(self):
        plan = kernels_for("monitor").contract_plan()
        baseline = run_workload("monitor", plan)
        instrumented, __ = run_instrumented("monitor", plan)
        np.testing.assert_array_equal(
            baseline.measured_current_a,
            instrumented.measured_current_a)
        np.testing.assert_array_equal(baseline.mard, instrumented.mard)
        np.testing.assert_array_equal(baseline.n_recalibrations,
                                      instrumented.n_recalibrations)
