"""Perfetto ``trace_event`` export: schema round-trip and invariants.

A trace the Perfetto UI loads needs complete (``"ph": "X"``) events
with microsecond ``ts``/``dur`` plus ``"M"`` metadata naming the
tracks; these tests serialize through real JSON and load the result
back, so any schema drift fails here before a human opens the UI.
"""

import json

import pytest

from repro.telemetry import (
    SpanRecord,
    complete_event,
    perfetto_json,
    process_name_event,
    span_trace_events,
    thread_name_event,
    write_perfetto,
)


def make_span(name, start_s, duration_s, depth=0, error=None, **attrs):
    """A completed span record at an absolute monotonic start time."""
    return SpanRecord(name=name, start_s=start_s, duration_s=duration_s,
                      depth=depth, error=error, attrs=attrs)


class TestEventBuilders:
    def test_complete_event_converts_to_microseconds(self):
        event = complete_event("work", ts_s=1.5, dur_s=0.25,
                               pid=3, tid=7, args={"segment": 0})
        assert event == {"name": "work", "cat": "repro", "ph": "X",
                        "ts": 1.5e6, "dur": 0.25e6, "pid": 3, "tid": 7,
                        "args": {"segment": 0}}

    def test_metadata_events(self):
        assert process_name_event(1, "repro")["ph"] == "M"
        named = thread_name_event(1, 2, "pid:41")
        assert named["args"] == {"name": "pid:41"}
        assert (named["pid"], named["tid"]) == (1, 2)


class TestSpanTraceEvents:
    def test_timestamps_normalized_to_first_span(self):
        spans = [make_span("late", 100.5, 0.1),
                 make_span("early", 100.0, 0.2)]
        events = span_trace_events(spans)
        by_name = {event["name"]: event for event in events}
        assert by_name["early"]["ts"] == 0.0
        assert by_name["late"]["ts"] == pytest.approx(0.5e6)

    def test_error_spans_carry_error_arg(self):
        (event,) = span_trace_events(
            [make_span("failing", 0.0, 0.1, error="ValueError")])
        assert event["args"]["error"] == "ValueError"

    def test_attrs_pass_through_as_args(self):
        (event,) = span_trace_events(
            [make_span("chunk", 0.0, 0.1, segment=2)])
        assert event["args"] == {"segment": 2}

    def test_empty_spans_yield_no_events(self):
        assert span_trace_events([]) == []


class TestFullTrace:
    def test_json_round_trip_schema(self, tmp_path):
        spans = [make_span("core.execute", 10.0, 1.0),
                 make_span("core.run_chunk", 10.1, 0.4, depth=1)]
        path = write_perfetto(tmp_path / "trace.json", spans,
                              counters={"core.samples": 48.0})
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["otherData"] == {"core.samples": "48.0"}
        events = loaded["traceEvents"]
        phases = [event["ph"] for event in events]
        # Two metadata events (process + track name), then the spans.
        assert phases == ["M", "M", "X", "X"]
        for event in events:
            assert {"name", "ph", "pid"} <= set(event)
        complete = [event for event in events if event["ph"] == "X"]
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] > 0.0

    def test_trace_without_counters_has_no_other_data(self):
        trace = perfetto_json([make_span("a", 0.0, 0.1)])
        assert "otherData" not in trace
        assert len(trace["traceEvents"]) == 3
