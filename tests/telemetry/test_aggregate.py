"""In-memory aggregation: percentiles, summaries, sinks, JSONL dumps."""

import pytest

from repro.telemetry import (
    InMemoryRecorder,
    JsonlSink,
    SpanRecord,
    percentile,
    read_jsonl,
    summarize_spans,
)


def make_span(name, duration_s, start_s=0.0, **attrs):
    """A completed span record with a fixed duration."""
    return SpanRecord(name=name, start_s=start_s, duration_s=duration_s,
                      depth=0, attrs=attrs)


class TestPercentile:
    def test_median_of_odd_sequence(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolates_between_points(self):
        assert percentile([0.0, 1.0], 0.25) == pytest.approx(0.25)

    def test_extremes_are_min_and_max(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 1.5)


class TestSummarize:
    def test_stats_per_name_sorted_by_total(self):
        spans = [make_span("fast", 0.001)] * 3 + [make_span("slow", 0.1)]
        stats = summarize_spans(spans)
        assert list(stats) == ["slow", "fast"]
        assert stats["fast"]["count"] == 3
        assert stats["fast"]["total_s"] == pytest.approx(0.003)
        assert stats["fast"]["p50_s"] == pytest.approx(0.001)
        assert stats["slow"]["p95_s"] == pytest.approx(0.1)

    def test_empty_input_is_empty_summary(self):
        assert summarize_spans([]) == {}

    def test_recorder_summary_and_render(self):
        recorder = InMemoryRecorder()
        with recorder.span("core.run_chunk"):
            pass
        recorder.count("core.samples", 48)
        recorder.gauge("fill", 0.5)
        text = recorder.render_summary()
        assert "core.run_chunk" in text
        assert "counter core.samples = 48" in text
        assert "gauge fill = 0.5" in text
        assert set(recorder.summary()["core.run_chunk"]) == {
            "count", "total_s", "p50_s", "p95_s"}

    def test_render_without_spans(self):
        assert "(no spans recorded)" in \
            InMemoryRecorder().render_summary()


class TestSinks:
    def test_events_stream_to_sink_as_recorded(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        recorder = InMemoryRecorder(sinks=[JsonlSink(trace)])
        with recorder.span("work", segment=0):
            recorder.count("chunks")
        recorder.gauge("fill", 0.5)
        recorder.close()
        events = read_jsonl(trace)
        kinds = [event["type"] for event in events]
        # The counter lands before the span: spans emit on *exit*.
        assert kinds == ["counter", "span", "gauge"]
        span_event = events[1]
        assert span_event["name"] == "work"
        assert span_event["attrs"] == {"segment": 0}

    def test_sink_opens_lazily(self, tmp_path):
        trace = tmp_path / "never.jsonl"
        sink = JsonlSink(trace)
        sink.close()
        assert not trace.exists()

    def test_sink_context_manager_closes_idempotently(self, tmp_path):
        with JsonlSink(tmp_path / "t.jsonl") as sink:
            sink.emit({"type": "counter", "name": "n", "value": 1.0})
        sink.close()  # second close is a no-op
        assert read_jsonl(tmp_path / "t.jsonl")[0]["value"] == 1.0

    def test_read_jsonl_rejects_malformed_line(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_jsonl(bad)

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert len(read_jsonl(trace)) == 2


class TestWriteJsonl:
    def test_post_hoc_dump_matches_live_stream_content(self, tmp_path):
        live_path = tmp_path / "live.jsonl"
        recorder = InMemoryRecorder(sinks=[JsonlSink(live_path)])
        with recorder.span("work"):
            recorder.count("chunks", 2)
        recorder.close()
        dump_path = recorder.write_jsonl(tmp_path / "dump.jsonl")
        live_events = read_jsonl(live_path)
        dump_events = read_jsonl(dump_path)
        # Identical span events; the live stream records each counter
        # increment while the dump keeps final totals, so compare the
        # span verbatim and the counter by its accumulated value.
        assert [e for e in dump_events if e["type"] == "span"] \
            == [e for e in live_events if e["type"] == "span"]
        (counter_dump,) = [e for e in dump_events
                           if e["type"] == "counter"]
        assert counter_dump == {"type": "counter", "name": "chunks",
                                "value": 2.0}
