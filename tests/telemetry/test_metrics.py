"""The metrics layer: typed instruments, snapshots, exposition.

The contracts the tentpole hangs on: instruments validate and
aggregate correctly, the cardinality cap bounds series growth,
snapshots are an exact algebra (counters and buckets add, gauges keep
the max, exemplars keep the last), the Prometheus text exposition is
golden-format-stable and round-trips its own validator, and the
disabled path is one shared no-op object.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS_S,
    METRICS_ENV,
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    OVERFLOW_LABEL,
    exponential_buckets,
    get_metrics_registry,
    histogram_quantile,
    merge_snapshots,
    metrics_env_enabled,
    metrics_registry_from_env,
    parse_prometheus,
    set_metrics_registry,
    snapshot_histogram_rows,
    trace_context,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs", ["outcome"])
        counter.labels(outcome="done").inc()
        counter.labels(outcome="done").inc(2.5)
        series = counter.labels(outcome="done")
        assert series.value == 3.5
        with pytest.raises(ValueError):
            series.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth", "depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_histogram_buckets_sum_count_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", "latency",
                                  buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        series = hist.labels()
        assert series.count == 4
        assert series.sum == pytest.approx(6.05)
        # 0.05 -> le=0.1; 0.5, 0.5 -> le=1.0; 5.0 -> le=10.0
        assert list(series.bucket_counts) == [1, 2, 1, 0]
        assert 0.1 <= series.quantile(0.5) <= 1.0
        assert series.quantile(1.0) <= 10.0

    def test_exponential_buckets_shape(self):
        buckets = exponential_buckets(1e-3, 2.0, 5)
        assert buckets == pytest.approx(
            (1e-3, 2e-3, 4e-3, 8e-3, 16e-3))
        assert len(DEFAULT_LATENCY_BUCKETS_S) == 16
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h1", buckets=[])
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=[1.0, 1.0])
        with pytest.raises(ValueError):
            registry.histogram("h3", buckets=[1.0, math.inf])

    def test_label_names_must_match_exactly(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ["method"])
        with pytest.raises(ValueError):
            counter.labels()
        with pytest.raises(ValueError):
            counter.labels(method="GET", extra="x")
        counter.labels(method="GET").inc()


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ["a"])
        again = registry.counter("x_total", "help", ["a"])
        assert first is again

    def test_signature_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "", ["a"])
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", "", ["b"])
        registry.histogram("h_seconds", buckets=[1.0, 2.0])
        with pytest.raises(ValueError):
            registry.histogram("h_seconds", buckets=[1.0, 3.0])

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("2bad")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "", ["__reserved"])
        with pytest.raises(ValueError):
            registry.counter("ok_total", "", ["a", "a"])

    def test_cardinality_cap_collapses_to_overflow(self):
        registry = MetricsRegistry(cardinality_cap=2)
        counter = registry.counter("c_total", "", ["user"])
        counter.labels(user="a").inc()
        counter.labels(user="b").inc()
        counter.labels(user="c").inc()  # beyond cap -> overflow
        counter.labels(user="d").inc()
        assert counter.overflowed == 2
        labels = [labels for labels, __ in counter.items()]
        assert {"user": OVERFLOW_LABEL} in labels
        overflow = counter.labels(user=OVERFLOW_LABEL)
        assert overflow.value == 2
        # existing series keep working after the cap is hit
        counter.labels(user="a").inc()
        assert counter.labels(user="a").value == 2


class TestSnapshotAlgebra:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs", ["outcome"]) \
            .labels(outcome="done").inc(3)
        registry.gauge("depth", "queue").set(5)
        hist = registry.histogram("lat_seconds", "lat",
                                  buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_snapshot_is_json_clean(self):
        snapshot = self._populated().snapshot()
        assert snapshot["metrics_schema_version"] == 1
        json.loads(json.dumps(snapshot))  # round-trips as pure JSON

    def test_merge_doubles_counters_and_buckets(self):
        a = self._populated().snapshot()
        b = self._populated().snapshot()
        merged = merge_snapshots([a, b])
        jobs = merged["instruments"]["jobs_total"]["series"][0]
        assert jobs["value"] == 6
        lat = merged["instruments"]["lat_seconds"]["series"][0]
        assert lat["count"] == 4
        assert lat["bucket_counts"] == [2, 2, 0]  # le=0.1, le=1, +Inf
        assert lat["sum"] == pytest.approx(1.1)

    def test_merge_gauges_keep_max(self):
        a = self._populated()
        b = self._populated()
        b.gauge("depth").set(9)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["instruments"]["depth"]["series"][0]["value"] == 9

    def test_exemplar_records_active_trace(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=[1.0])
        hist.observe(0.5)  # no trace active -> no exemplar
        with trace_context() as trace_id:
            hist.observe(0.7)
        exemplar = hist.labels().exemplar
        assert exemplar == {"value": 0.7, "trace_id": trace_id}
        snapshot = registry.snapshot()
        row = snapshot["instruments"]["lat_seconds"]["series"][0]
        assert row["exemplar"]["trace_id"] == trace_id

    def test_merge_rejects_bad_schema(self):
        with pytest.raises(ValueError):
            merge_snapshots([{"instruments": {}}])
        with pytest.raises(ValueError):
            merge_snapshots([{"metrics_schema_version": 999,
                              "instruments": {}}])

    def test_histogram_rows_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds",
                                  buckets=[0.1, 1.0, 10.0])
        for __ in range(99):
            hist.observe(0.05)
        hist.observe(5.0)
        rows = snapshot_histogram_rows(registry.snapshot())
        (row,) = rows
        assert row["name"] == "lat_seconds"
        assert row["count"] == 100
        assert row["p50"] <= 0.1
        assert row["p95"] <= 0.1  # 99% of mass in the first bucket
        assert row["p99"] <= 10.0

    def test_histogram_quantile_interpolates(self):
        # counts are per bucket including +Inf: 10 in [0, 1], 10 in
        # (1, 2], none above
        value = histogram_quantile([1.0, 2.0], [10, 10, 0], 0.25)
        assert 0.0 < value <= 1.0
        value = histogram_quantile([1.0, 2.0], [10, 10, 0], 0.75)
        assert 1.0 < value <= 2.0
        with pytest.raises(ValueError):
            histogram_quantile([1.0, 2.0], [10, 10, 0], 1.5)
        with pytest.raises(ValueError):
            histogram_quantile([1.0, 2.0], [10, 10], 0.5)


class TestPrometheusExposition:
    def test_golden_format(self):
        """The exposition layout is frozen: HELP/TYPE comments,
        cumulative ``le`` buckets with ``+Inf``, ``_sum``/``_count``,
        sorted families — any drift breaks real scrapers."""
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "Jobs by outcome.",
                         ["outcome"]).labels(outcome="done").inc(3)
        registry.gauge("repro_queue_depth",
                       "Queued jobs.").set(2)
        hist = registry.histogram("repro_latency_seconds",
                                  "Request latency.",
                                  buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.render_prometheus()
        expected = (
            "# HELP repro_jobs_total Jobs by outcome.\n"
            "# TYPE repro_jobs_total counter\n"
            'repro_jobs_total{outcome="done"} 3\n'
            "# HELP repro_latency_seconds Request latency.\n"
            "# TYPE repro_latency_seconds histogram\n"
            'repro_latency_seconds_bucket{le="0.1"} 1\n'
            'repro_latency_seconds_bucket{le="1"} 2\n'
            'repro_latency_seconds_bucket{le="+Inf"} 2\n'
            "repro_latency_seconds_sum 0.55\n"
            "repro_latency_seconds_count 2\n"
            "# HELP repro_queue_depth Queued jobs.\n"
            "# TYPE repro_queue_depth gauge\n"
            "repro_queue_depth 2\n")
        assert text == expected

    def test_round_trips_validator(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "with \\ and \"quotes\"",
                         ["k"]).labels(k='v"\\\n').inc()
        registry.histogram("h_seconds", buckets=[0.5]).observe(0.1)
        registry.gauge("g").set(-1.5)
        samples = parse_prometheus(registry.render_prometheus())
        names = {sample["name"] for sample in samples}
        assert {"a_total", "h_seconds_bucket", "h_seconds_sum",
                "h_seconds_count", "g"} <= names

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus("no spaces here\n")
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE x wat\nx 1\n")
        # histogram without +Inf bucket
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 1\n'
               "h_sum 0.5\nh_count 1\n")
        with pytest.raises(ValueError):
            parse_prometheus(bad)
        # non-cumulative buckets
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 2\n'
               'h_bucket{le="+Inf"} 1\n'
               "h_sum 0.5\nh_count 1\n")
        with pytest.raises(ValueError):
            parse_prometheus(bad)


class TestFrontDoor:
    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        assert not metrics_env_enabled()
        monkeypatch.setenv(METRICS_ENV, "1")
        assert metrics_env_enabled()
        monkeypatch.setenv(METRICS_ENV, "0")
        assert not metrics_env_enabled()
        assert isinstance(metrics_registry_from_env({}),
                          NullMetricsRegistry)
        assert metrics_registry_from_env(
            {METRICS_ENV: "1"}).enabled

    def test_set_and_get_registry(self):
        registry = MetricsRegistry()
        previous = set_metrics_registry(registry)
        try:
            assert get_metrics_registry() is registry
        finally:
            set_metrics_registry(previous)
        assert get_metrics_registry() is not registry

    def test_null_registry_is_shared_noop(self):
        assert not NULL_METRICS.enabled
        counter = NULL_METRICS.counter("anything")
        gauge = NULL_METRICS.gauge("anything")
        hist = NULL_METRICS.histogram("anything")
        assert counter is gauge is hist
        counter.inc()
        gauge.set(5)
        hist.observe(1.0)
        assert counter.labels(any="label") is counter
        assert NULL_METRICS.snapshot()["instruments"] == {}
