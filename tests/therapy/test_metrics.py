"""Tests for repro.therapy.metrics (therapeutic-window scoring)."""

import numpy as np
import pytest

from repro.pk.drugs import TherapeuticWindow
from repro.therapy.metrics import (
    auc_molar_h,
    fraction_above_window,
    fraction_below_window,
    overdose_exposure,
    time_in_range,
    trough_abs_rel_error,
)

WINDOW = TherapeuticWindow(low_molar=2e-6, high_molar=8e-6,
                           target_trough_molar=3e-6)


class TestWindowFractions:
    def test_partition_sums_to_one(self):
        rng = np.random.default_rng(4)
        c = rng.uniform(0.0, 12e-6, size=(5, 40))
        total = (time_in_range(c, WINDOW)
                 + fraction_below_window(c, WINDOW)
                 + fraction_above_window(c, WINDOW))
        np.testing.assert_allclose(total, 1.0)

    def test_known_fractions(self):
        c = np.array([[1e-6, 3e-6, 5e-6, 9e-6]])
        assert float(time_in_range(c, WINDOW)[0]) == pytest.approx(0.5)
        assert float(fraction_below_window(c, WINDOW)[0]) \
            == pytest.approx(0.25)
        assert float(fraction_above_window(c, WINDOW)[0]) \
            == pytest.approx(0.25)

    def test_one_dimensional_input_lifted(self):
        c = np.array([3e-6, 3e-6])
        assert time_in_range(c, WINDOW).shape == (1,)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            time_in_range(np.zeros((2, 2, 2)), WINDOW)


class TestTroughError:
    def test_perfect_troughs_zero_error(self):
        troughs = np.full((3, 5), WINDOW.target_trough_molar)
        np.testing.assert_array_equal(
            trough_abs_rel_error(troughs, WINDOW.target_trough_molar),
            np.zeros(3))

    def test_known_error(self):
        troughs = np.array([[4.5e-6, 1.5e-6]])  # +50 %, -50 %
        assert float(trough_abs_rel_error(troughs, 3e-6)[0]) \
            == pytest.approx(0.5)

    def test_skip_first_excludes_uncontrolled_interval(self):
        troughs = np.array([[30e-6, 3e-6, 3e-6]])
        assert float(trough_abs_rel_error(troughs, 3e-6, skip_first=1)[0]) \
            == pytest.approx(0.0)
        assert float(trough_abs_rel_error(troughs, 3e-6)[0]) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            trough_abs_rel_error(np.ones((1, 2)), 0.0)
        with pytest.raises(ValueError):
            trough_abs_rel_error(np.ones((1, 2)), 3e-6, skip_first=2)


class TestExposure:
    def test_overdose_exposure_rectangle_sum(self):
        c = np.array([[9e-6, 10e-6, 5e-6]])
        expected = ((9e-6 - 8e-6) + (10e-6 - 8e-6)) * 0.25
        assert float(overdose_exposure(c, 0.25, WINDOW)[0]) \
            == pytest.approx(expected)

    def test_no_overdose_zero(self):
        c = np.full((2, 10), 5e-6)
        np.testing.assert_array_equal(
            overdose_exposure(c, 0.25, WINDOW), np.zeros(2))

    def test_auc(self):
        c = np.full((1, 4), 2e-6)
        assert float(auc_molar_h(c, 0.5)[0]) == pytest.approx(4e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            overdose_exposure(np.ones((1, 2)), 0.0, WINDOW)
        with pytest.raises(ValueError):
            auc_molar_h(np.ones((1, 2)), -1.0)


class TestTherapeuticWindow:
    def test_contains_and_span(self):
        assert WINDOW.contains(3e-6)
        assert not WINDOW.contains(9e-6)
        assert WINDOW.span_molar == pytest.approx(6e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            TherapeuticWindow(low_molar=0.0, high_molar=1e-6,
                              target_trough_molar=5e-7)
        with pytest.raises(ValueError):
            TherapeuticWindow(low_molar=2e-6, high_molar=8e-6,
                              target_trough_molar=9e-6)
