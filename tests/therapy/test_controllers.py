"""Tests for repro.therapy.controllers (dosing policies)."""

import numpy as np
import pytest

from repro.pk.models import OneCompartmentPK, Route
from repro.pk.dosing import steady_state_trough_per_mol
from repro.therapy.controllers import (
    BayesianTroughController,
    ControllerObservation,
    FixedRegimenController,
    ProportionalTroughController,
    RegimenSpec,
)

TARGET = 3.0e-6


@pytest.fixture()
def prior():
    return OneCompartmentPK(clearance_l_per_h=7.0, volume_l=80.0,
                            ka_per_h=0.7, bioavailability=0.4)


@pytest.fixture()
def regimen():
    return RegimenSpec(dose_interval_h=12.0, n_doses=6)


def observation_for(prior, regimen, clearances, doses_mol, k):
    """Noise-free troughs simulated from per-patient true clearances.

    Follows the engine's sampling convention: the trough at a dose
    boundary is read *before* the dose scheduled at that instant, so
    only strictly-past doses (dt > 0) contribute.
    """
    n = clearances.size
    dose_times = np.arange(k) * regimen.dose_interval_h
    trough_times = (np.arange(k) + 1.0) * regimen.dose_interval_h
    troughs = np.zeros((n, k))
    for p in range(n):
        model = OneCompartmentPK(
            clearance_l_per_h=float(clearances[p]),
            volume_l=prior.volume_l, ka_per_h=prior.ka_per_h,
            bioavailability=prior.bioavailability)
        for j, t in enumerate(trough_times):
            troughs[p, j] = sum(
                model.concentration(float(t - t0), float(doses_mol[p, m]),
                                    regimen.route,
                                    regimen.infusion_duration_h)
                for m, t0 in enumerate(dose_times) if t - t0 > 0)
    return ControllerObservation(
        regimen=regimen, interval_index=k,
        time_h=k * regimen.dose_interval_h,
        dose_times_h=dose_times, doses_mol=doses_mol,
        trough_times_h=trough_times, trough_estimates_molar=troughs)


class TestRegimenSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            RegimenSpec(dose_interval_h=0.0, n_doses=3)
        with pytest.raises(ValueError):
            RegimenSpec(dose_interval_h=12.0, n_doses=0)
        with pytest.raises(ValueError):
            RegimenSpec(dose_interval_h=12.0, n_doses=3,
                        route=Route.INFUSION)


class TestFixedRegimen:
    def test_constant_doses(self, prior, regimen):
        controller = FixedRegimenController(dose_mol=2e-4)
        assert np.all(controller.initial_doses(5, regimen) == 2e-4)
        obs = observation_for(prior, regimen, np.array([7.0]),
                              np.full((1, 2), 2e-4), 2)
        assert np.all(controller.next_doses(obs) == 2e-4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedRegimenController(dose_mol=-1.0)


class TestProportionalTrough:
    def test_scales_toward_target(self, prior, regimen):
        controller = ProportionalTroughController(
            initial_dose_mol=2e-4, target_trough_molar=TARGET)
        obs = observation_for(prior, regimen, np.array([7.0, 7.0]),
                              np.full((2, 1), 2e-4), 1)
        # Patient 0 trough forced low, patient 1 forced high.
        obs.trough_estimates_molar[0, -1] = 0.5 * TARGET
        obs.trough_estimates_molar[1, -1] = 2.0 * TARGET
        doses = controller.next_doses(obs)
        assert doses[0] == pytest.approx(2e-4 * 2.0)
        assert doses[1] == pytest.approx(2e-4 * 0.5)

    def test_adjustment_clamped(self, prior, regimen):
        controller = ProportionalTroughController(
            initial_dose_mol=2e-4, target_trough_molar=TARGET,
            max_adjust=1.5)
        obs = observation_for(prior, regimen, np.array([7.0]),
                              np.full((1, 1), 2e-4), 1)
        obs.trough_estimates_molar[0, -1] = 0.0  # sensor dropout
        dose = float(controller.next_doses(obs)[0])
        assert dose == pytest.approx(2e-4 * 1.5)

    def test_dose_clamps(self, prior, regimen):
        controller = ProportionalTroughController(
            initial_dose_mol=2e-4, target_trough_molar=TARGET,
            dose_max_mol=2.2e-4)
        obs = observation_for(prior, regimen, np.array([7.0]),
                              np.full((1, 1), 2e-4), 1)
        obs.trough_estimates_molar[0, -1] = 0.1 * TARGET
        assert float(controller.next_doses(obs)[0]) == pytest.approx(2.2e-4)


class TestBayesianTrough:
    def test_initial_dose_hits_prior_steady_state(self, prior, regimen):
        controller = BayesianTroughController(
            prior=prior, target_trough_molar=TARGET)
        dose = float(controller.initial_doses(3, regimen)[0])
        per_mol = float(steady_state_trough_per_mol(
            prior.params(), regimen.dose_interval_h)[0])
        assert dose * per_mol == pytest.approx(TARGET)

    def test_map_recovers_true_clearance(self, prior, regimen):
        """Noise-free troughs from known clearances: the MAP estimate
        lands within the grid resolution of the truth."""
        controller = BayesianTroughController(
            prior=prior, target_trough_molar=TARGET,
            observation_sigma_molar=1e-8, n_grid=241)
        true_cl = np.array([2.5, 7.0, 13.0])  # PM, EM, UM
        doses = np.full((3, 3), 8e-4)
        obs = observation_for(prior, regimen, true_cl, doses, 3)
        estimate = controller.map_clearance(obs)
        np.testing.assert_allclose(estimate, true_cl, rtol=0.05)

    def test_map_recovers_clearance_on_iv_bolus_regimen(self, prior):
        """Regression: the IV-bolus kernel is non-zero at dt = 0, so the
        likelihood must exclude the dose administered at the trough
        instant (the engine samples the trough first) — with it
        included, the fit for a typical patient was ~6x high."""
        regimen = RegimenSpec(dose_interval_h=12.0, n_doses=6,
                              route=Route.IV_BOLUS)
        controller = BayesianTroughController(
            prior=prior, target_trough_molar=TARGET,
            observation_sigma_molar=1e-8, n_grid=241)
        true_cl = np.array([2.5, 7.0, 13.0])
        obs = observation_for(prior, regimen, true_cl,
                              np.full((3, 3), 8e-4), 3)
        np.testing.assert_allclose(controller.map_clearance(obs),
                                   true_cl, rtol=0.05)

    def test_next_trough_lands_on_target(self, prior, regimen):
        """With clearance identified, the proposed dose puts the next
        trough on target (closed-form inversion check)."""
        controller = BayesianTroughController(
            prior=prior, target_trough_molar=TARGET,
            observation_sigma_molar=1e-8, n_grid=481)
        true_cl = np.array([2.5])
        # Light past doses: carryover sits below target, so the
        # inversion is feasible (a heavily pre-dosed poor metabolizer
        # correctly gets a zero dose instead).
        doses = np.full((1, 3), 3e-4)
        obs = observation_for(prior, regimen, true_cl, doses, 3)
        next_dose = controller.next_doses(obs)
        cl_hat = float(controller.map_clearance(obs)[0])
        model = OneCompartmentPK(cl_hat, prior.volume_l, prior.ka_per_h,
                                 prior.bioavailability)
        next_trough_time = obs.time_h + regimen.dose_interval_h
        predicted = sum(
            model.concentration(next_trough_time - t0, float(d))
            for t0, d in zip(obs.dose_times_h, doses[0])) + \
            model.concentration(regimen.dose_interval_h,
                                float(next_dose[0]))
        assert predicted == pytest.approx(TARGET, rel=0.05)

    def test_prior_regularizes_toward_typical(self, prior, regimen):
        """With huge observation noise the MAP stays near the prior."""
        controller = BayesianTroughController(
            prior=prior, target_trough_molar=TARGET,
            observation_sigma_molar=1.0)
        obs = observation_for(prior, regimen, np.array([2.5]),
                              np.full((1, 2), 8e-4), 2)
        estimate = float(controller.map_clearance(obs)[0])
        assert estimate == pytest.approx(prior.clearance_l_per_h, rel=0.05)

    def test_vector_matches_per_patient_slices(self, prior, regimen):
        """The scalar/vector equivalence contract at controller level."""
        controller = BayesianTroughController(
            prior=prior, target_trough_molar=TARGET,
            observation_sigma_molar=2e-7)
        true_cl = np.array([2.5, 7.0, 13.0])
        doses = np.array([[8e-4, 6e-4], [8e-4, 8e-4], [8e-4, 1e-3]])
        obs = observation_for(prior, regimen, true_cl, doses, 2)
        batch = controller.next_doses(obs)
        for p in range(3):
            single = ControllerObservation(
                regimen=regimen, interval_index=2, time_h=obs.time_h,
                dose_times_h=obs.dose_times_h,
                doses_mol=obs.doses_mol[p:p + 1],
                trough_times_h=obs.trough_times_h,
                trough_estimates_molar=(
                    obs.trough_estimates_molar[p:p + 1]))
            assert float(controller.next_doses(single)[0]) == batch[p]

    def test_dose_clamps_apply(self, prior, regimen):
        controller = BayesianTroughController(
            prior=prior, target_trough_molar=TARGET,
            observation_sigma_molar=1e-8, dose_max_mol=5e-4)
        obs = observation_for(prior, regimen, np.array([20.0]),
                              np.full((1, 2), 1e-4), 2)
        assert float(controller.next_doses(obs)[0]) <= 5e-4

    def test_validation(self, prior):
        with pytest.raises(ValueError):
            BayesianTroughController(prior=prior, target_trough_molar=0.0)
        with pytest.raises(ValueError):
            BayesianTroughController(prior=prior,
                                     target_trough_molar=TARGET,
                                     clearance_cv=0.0)
        with pytest.raises(ValueError):
            BayesianTroughController(prior=prior,
                                     target_trough_molar=TARGET,
                                     n_grid=2)
