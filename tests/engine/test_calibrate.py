"""Tests for engine-backed calibration and the rewired Table 2 path."""

import numpy as np
import pytest

from repro.core.calibration import (
    default_protocol_for_range,
    run_calibration,
)
from repro.engine import (
    calibration_plan,
    run_calibration_batch,
    run_campaign,
)
from repro.experiments.table2 import run_table2


class TestCalibrationPlan:
    def test_blank_group_first(self, glucose_sensor):
        protocol = default_protocol_for_range(1e-3, n_blanks=5,
                                              n_replicates=3)
        plan = calibration_plan([glucose_sensor], [protocol], seed=1)
        assert plan.concentrations_molar[0][0] == 0.0
        assert plan.replicates_for(0)[0] == 5
        assert plan.replicates_for(0)[1:] == (3,) * 9
        assert plan.n_cells == 5 + 9 * 3

    def test_rejects_length_mismatch(self, glucose_sensor):
        with pytest.raises(ValueError, match="protocols"):
            calibration_plan([glucose_sensor], [], seed=1)


class TestRunCalibrationBatch:
    def test_matches_scalar_pipeline_statistically(self, glucose_sensor):
        """Engine and scalar calibrations share the physics; only the
        noise realizations differ, so extracted metrics agree closely."""
        protocol = default_protocol_for_range(1e-3)
        batch = run_calibration_batch(glucose_sensor, protocol, seed=7)
        scalar = run_calibration(glucose_sensor, protocol,
                                 np.random.default_rng(7))
        assert batch.sensitivity_paper == pytest.approx(
            scalar.sensitivity_paper, rel=0.05)
        assert batch.linear_range_molar[1] == pytest.approx(
            scalar.linear_range_molar[1], rel=0.3)

    def test_deterministic_under_seed(self, glucose_sensor):
        protocol = default_protocol_for_range(1e-3)
        a = run_calibration_batch(glucose_sensor, protocol, seed=11)
        b = run_calibration_batch(glucose_sensor, protocol, seed=11)
        assert a.slope_a_per_molar == b.slope_a_per_molar
        assert a.blank_std_a == b.blank_std_a
        assert a.lod_molar == b.lod_molar

    def test_engine_metadata(self, glucose_sensor):
        protocol = default_protocol_for_range(1e-3)
        result = run_calibration_batch(glucose_sensor, protocol, seed=11)
        assert result.metadata["engine"] is True
        assert result.metadata["seed"] == 11
        assert result.metadata["protocol"] is protocol

    def test_noiseless_calibration_collapses_lod(self, glucose_sensor):
        """With noise off the blank scatter is exactly zero, so the
        extracted LOD is zero and the fit is near-perfect."""
        protocol = default_protocol_for_range(1e-3)
        result = run_calibration_batch(glucose_sensor, protocol,
                                       add_noise=False)
        assert result.blank_std_a == 0.0
        assert result.lod_molar == 0.0
        assert result.r_squared > 0.999

    def test_saturated_protocol_still_gated(self, glucose_sensor):
        """The engine path keeps the scalar pipeline's quality gates: a
        grid far past the Michaelis-Menten range cannot calibrate."""
        from repro.core.calibration import CalibrationError

        with pytest.raises(CalibrationError):
            run_calibration_batch(glucose_sensor,
                                  default_protocol_for_range(1e3),
                                  seed=1, add_noise=False)


class TestRunCampaign:
    def test_panel_order_and_results(self, glucose_sensor,
                                     glutamate_sensor):
        protocols = [
            default_protocol_for_range(
                glucose_sensor.linear_range_upper_molar()),
            default_protocol_for_range(
                glutamate_sensor.linear_range_upper_molar()),
        ]
        results = run_campaign([glucose_sensor, glutamate_sensor],
                               protocols, seed=7)
        assert len(results) == 2
        assert results[0].sensor_name == glucose_sensor.name
        assert results[1].sensor_name == glutamate_sensor.name
        for result in results:
            assert result.slope_a_per_molar > 0


class TestTable2EngineRewire:
    def test_engine_and_scalar_paths_agree(self):
        engine_rows = run_table2(groups=["glucose"], seed=7)
        scalar_rows = run_table2(groups=["glucose"], seed=7,
                                 use_engine=False)
        assert engine_rows.keys() == scalar_rows.keys()
        for sensor_id in engine_rows:
            assert engine_rows[sensor_id].measured_sensitivity == \
                pytest.approx(
                    scalar_rows[sensor_id].measured_sensitivity, rel=0.1)

    def test_engine_rows_deterministic(self):
        a = run_table2(groups=["glucose"], seed=13)
        b = run_table2(groups=["glucose"], seed=13)
        for sensor_id in a:
            assert (a[sensor_id].result.slope_a_per_molar
                    == b[sensor_id].result.slope_a_per_molar)
