"""One contract suite for every registered workload.

The execution core owns the invariants every engine used to test
separately: chunk-size invariance, scalar equivalence, and
deterministic replay.  Each registered :class:`KernelSet` declares its
own contract plan and per-field tolerances, so one parametrized suite
covers all four workloads — and any fifth registered later, for free.
"""

from __future__ import annotations

import pytest

from repro.engine.core import (
    check_chunk_invariance,
    check_deterministic_replay,
    check_scalar_equivalence,
    kernels_for,
    registered_workloads,
    run_scalar,
    run_workload,
)

WORKLOADS = registered_workloads()


def test_all_four_engines_are_registered():
    assert set(WORKLOADS) >= {"calibration", "monitor", "therapy",
                              "estimation"}


@pytest.mark.parametrize("workload", WORKLOADS)
class TestExecutionContract:
    def test_deterministic_replay(self, workload):
        """Same plan, same seed: the executor replays bit for bit."""
        check_deterministic_replay(kernels_for(workload))

    def test_chunk_size_invariance(self, workload):
        """Chunking is a working-set knob, never a results knob."""
        check_chunk_invariance(kernels_for(workload))

    def test_scalar_equivalence(self, workload):
        """The chunked path agrees with the per-element reference."""
        check_scalar_equivalence(kernels_for(workload))


@pytest.mark.parametrize("workload", WORKLOADS)
class TestRegistry:
    def test_run_workload_dispatches(self, workload):
        kernels = kernels_for(workload)
        result = run_workload(workload, kernels.contract_plan())
        assert kernels.contract_fields(result)

    def test_plan_type_enforced(self, workload):
        with pytest.raises(TypeError, match="kernels expect"):
            run_workload(workload, object())


def test_unknown_workload_rejected():
    with pytest.raises(KeyError, match="unknown workload"):
        kernels_for("centrifuge")


class TestDeprecatedAliases:
    """The historical ``run_*_scalar`` names still work, but warn."""

    def _check(self, alias, workload):
        kernels = kernels_for(workload)
        plan = kernels.contract_plan()
        with pytest.warns(DeprecationWarning, match="run_scalar"):
            aliased = alias(plan)
        direct = run_scalar(workload, plan)
        assert type(aliased) is type(direct)

    def test_run_batch_scalar(self):
        from repro.engine.runner import run_batch_scalar
        self._check(run_batch_scalar, "calibration")

    def test_run_monitor_scalar(self):
        from repro.engine.monitor import run_monitor_scalar
        self._check(run_monitor_scalar, "monitor")

    def test_run_therapy_scalar(self):
        from repro.engine.therapy import run_therapy_scalar
        self._check(run_therapy_scalar, "therapy")

    def test_run_estimation_scalar(self):
        from repro.engine.estimation import run_estimation_scalar
        self._check(run_estimation_scalar, "estimation")


class TestRegistryGuards:
    def test_duplicate_registration_rejected(self):
        kernels = kernels_for("monitor")
        with pytest.raises(ValueError, match="already registered"):
            from repro.engine.core import register_kernels
            register_kernels(kernels)

    def test_replace_allows_reregistration(self):
        from repro.engine.core import register_kernels
        kernels = kernels_for("monitor")
        assert register_kernels(kernels, replace=True) is kernels
