"""Tests for the batch runner: equivalence, determinism, kernel cache."""

import numpy as np
import pytest

from repro.core.detection import (
    measure_amperometric_point,
    measure_point,
    measure_voltammetric_point,
)
from repro.engine import (
    BatchPlan,
    kernels,
    measure_amperometric_batch,
    measure_voltammetric_batch,
    run_batch,
)
from repro.rng import spawn_generators

GRID = (0.0, 1e-4, 3e-4, 5e-4, 1e-3)


def reference_amperometric_point(sensor, concentration, rng=None,
                                 add_noise=True, step_duration_s=16.0):
    """The historical scalar pipeline, composed from primitives that do
    NOT route through the engine (``simulate_step`` + ``chain.acquire``
    + ``extract_steady_state``).  ``measure_amperometric_point`` is now a
    thin wrapper over the batch path, so comparing against *it* would be
    circular; this reference keeps the equivalence tests honest."""
    from repro.signal.steady_state import extract_steady_state

    record = sensor.ca_protocol.simulate_step(
        sensor.steady_state_current, concentration,
        duration_s=step_duration_s,
        response_time_s=sensor.response_time_s)
    acquired = sensor.chain.acquire(
        record.current_a, record.sampling_rate_hz, rng=rng,
        add_noise=add_noise)
    value = extract_steady_state(acquired.time_s, acquired.current_a).value
    if add_noise and sensor.repeatability_std_a > 0:
        value += float(rng.normal(0.0, sensor.repeatability_std_a))
    return value


class TestNoiselessEquivalence:
    """Batch and scalar noiseless paths must agree to 1e-12."""

    def test_amperometric_vs_independent_reference(self, glucose_sensor):
        concs = np.array(GRID)
        batch = measure_amperometric_batch(glucose_sensor, concs,
                                           add_noise=False)
        reference = np.array([
            reference_amperometric_point(glucose_sensor, c, add_noise=False)
            for c in concs])
        np.testing.assert_allclose(batch, reference, rtol=1e-12, atol=0.0)

    def test_scalar_wrapper_matches_reference(self, glucose_sensor):
        """The public scalar API (engine-backed wrapper) must still
        report what the historical pipeline reported."""
        for c in GRID:
            wrapper = measure_amperometric_point(glucose_sensor, c,
                                                 add_noise=False)
            reference = reference_amperometric_point(glucose_sensor, c,
                                                     add_noise=False)
            assert wrapper == pytest.approx(reference, rel=1e-12)

    def test_voltammetric(self, cp_sensor):
        concs = np.array([0.0, 5e-6, 20e-6])
        batch = measure_voltammetric_batch(cp_sensor, concs,
                                           add_noise=False)
        scalar = np.array([
            measure_voltammetric_point(cp_sensor, c, add_noise=False)
            for c in concs])
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=0.0)

    def test_run_batch_mixed_panel(self, glucose_sensor, cp_sensor):
        plan = BatchPlan(
            sensors=(glucose_sensor, cp_sensor),
            concentrations_molar=(GRID, (0.0, 5e-6, 20e-6)),
            replicates=2, seed=3, add_noise=False)
        result = run_batch(plan)
        for i, sensor in enumerate(plan.sensors):
            for j, concentration in enumerate(plan.concentrations_molar[i]):
                expected = measure_point(sensor, concentration,
                                         add_noise=False)
                np.testing.assert_allclose(
                    result.replicate_values(i, j),
                    np.full(2, expected), rtol=1e-12, atol=0.0)


class TestDeterminism:
    def test_same_seed_replays_bit_for_bit(self, glucose_sensor):
        plan = BatchPlan(sensors=(glucose_sensor,),
                         concentrations_molar=(GRID,),
                         replicates=3, seed=99)
        a = run_batch(plan).flat_values()
        b = run_batch(plan).flat_values()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, glucose_sensor):
        plan_a = BatchPlan(sensors=(glucose_sensor,),
                           concentrations_molar=(GRID,),
                           replicates=3, seed=1)
        plan_b = BatchPlan(sensors=(glucose_sensor,),
                           concentrations_molar=(GRID,),
                           replicates=3, seed=2)
        assert not np.array_equal(run_batch(plan_a).flat_values(),
                                  run_batch(plan_b).flat_values())

    def test_matches_scalar_loop_with_spawned_generators(self,
                                                         glucose_sensor):
        """Vectorization must not change the physics OR the randomness:
        the batch equals the historical scalar pipeline driven by the
        same per-cell spawned generators, bit for bit."""
        plan = BatchPlan(sensors=(glucose_sensor,),
                         concentrations_molar=(GRID,),
                         replicates=2, seed=2024)
        batch = run_batch(plan).flat_values()
        rngs = spawn_generators(2024, plan.n_cells)
        scalar = np.array([
            reference_amperometric_point(
                glucose_sensor,
                plan.concentrations_molar[0][cell.concentration],
                rngs[cell.flat])
            for cell in plan.cells()])
        np.testing.assert_array_equal(batch, scalar)

    def test_replicates_are_independent(self, glucose_sensor):
        plan = BatchPlan(sensors=(glucose_sensor,),
                         concentrations_molar=((5e-4,),),
                         replicates=6, seed=5)
        replicates = run_batch(plan).replicate_values(0, 0)
        assert np.unique(replicates).size == replicates.size


class TestBatchMeasureValidation:
    def test_rejects_negative_concentration(self, glucose_sensor):
        with pytest.raises(ValueError, match=">= 0"):
            measure_amperometric_batch(glucose_sensor,
                                       np.array([1e-4, -1e-4]))

    def test_rejects_two_dimensional_grid(self, glucose_sensor):
        with pytest.raises(ValueError, match="1-D"):
            measure_amperometric_batch(glucose_sensor, np.zeros((2, 2)))

    def test_rejects_empty_cells(self, glucose_sensor):
        with pytest.raises(ValueError, match="at least one cell"):
            measure_amperometric_batch(glucose_sensor, np.array([]))

    def test_rejects_mismatched_generator_count(self, glucose_sensor):
        rngs = spawn_generators(0, 3)
        with pytest.raises(ValueError, match="one generator per cell"):
            measure_amperometric_batch(glucose_sensor,
                                       np.array([0.0, 1e-4]), rngs=rngs)

    def test_rejects_mismatched_generators_noiseless_too(self,
                                                         glucose_sensor):
        """Campaign wiring errors must surface even in noiseless
        debugging runs, not only once noise is switched on."""
        rngs = spawn_generators(0, 3)
        with pytest.raises(ValueError, match="one generator per cell"):
            measure_amperometric_batch(glucose_sensor,
                                       np.array([0.0, 1e-4]), rngs=rngs,
                                       add_noise=False)


class TestKernelCache:
    def test_repeated_cells_hit_cache(self, glucose_sensor):
        kernels.clear_caches()
        concs = np.array(GRID)
        first = measure_amperometric_batch(glucose_sensor, concs,
                                           add_noise=False)
        second = measure_amperometric_batch(glucose_sensor, concs,
                                            add_noise=False)
        info = kernels.cache_info()
        assert info["clean_rows"].hits >= 1
        assert info["clean_plateaus"].hits >= 1
        np.testing.assert_array_equal(first, second)

    def test_cached_arrays_are_read_only(self, glucose_sensor):
        kernels.clear_caches()
        measure_amperometric_batch(glucose_sensor, np.array([1e-4]),
                                   add_noise=False)
        times, rows = kernels.amperometric_clean_rows(
            glucose_sensor.chain, glucose_sensor.ca_protocol,
            glucose_sensor.response_time_s, 16.0,
            (float(glucose_sensor.steady_state_current(1e-4)),))
        assert not times.flags.writeable
        assert not rows.flags.writeable
        with pytest.raises(ValueError):
            rows[0, 0] = 0.0

    def test_noiseless_values_returned_writable(self, glucose_sensor):
        """The public API hands out copies, not the cache's arrays."""
        values = measure_amperometric_batch(glucose_sensor,
                                            np.array([1e-4, 1e-4]),
                                            add_noise=False)
        values[0] = -1.0  # must not raise, and must not poison the cache
        again = measure_amperometric_batch(glucose_sensor,
                                           np.array([1e-4, 1e-4]),
                                           add_noise=False)
        assert again[0] != -1.0
