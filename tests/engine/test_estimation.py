"""Tests for repro.engine.estimation (the reconstruction workload)."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.engine.estimation import EstimationPlan, run_estimation
from repro.engine.monitor import MonitorPlan, glucose_cohort


@pytest.fixture(scope="module")
def plan():
    return EstimationPlan(monitor=MonitorPlan(
        channels=glucose_cohort(4), duration_h=24.0,
        sample_period_s=600.0, seed=42))


@pytest.fixture(scope="module")
def result(plan):
    return run_estimation(plan)


class TestPlan:
    def test_requires_traces(self):
        with pytest.raises(ValueError, match="keep_traces"):
            EstimationPlan(monitor=MonitorPlan(
                channels=glucose_cohort(2), duration_h=6.0,
                keep_traces=False))

    def test_interval_level_validated(self, plan):
        with pytest.raises(ValueError, match="interval level"):
            replace(plan, interval_level=1.5)

    def test_delegated_properties(self, plan):
        assert plan.n_channels == 4
        assert plan.n_samples == plan.monitor.n_samples
        assert plan.seed == 42
        assert plan.duration_h == 24.0
        assert plan.interval_z == pytest.approx(1.959964, rel=1e-5)


class TestRunEstimation:
    def test_reconstruction_beats_linear_estimator(self, result):
        assert float(np.mean(result.filtered_mard)) \
            < 0.5 * float(np.mean(result.linear_mard))

    def test_coverage_calibrated(self, result):
        filtered = float(np.mean(result.filtered_coverage))
        smoothed = float(np.mean(result.smoothed_coverage))
        assert 0.90 <= filtered <= 0.99
        assert 0.90 <= smoothed <= 0.99

    def test_traces_shaped_and_physical(self, plan, result):
        shape = (plan.n_channels, plan.n_samples)
        assert result.filtered_concentration_molar.shape == shape
        assert result.smoothed_concentration_molar.shape == shape
        assert np.all(result.filtered_concentration_molar >= 0)
        assert np.all(result.filtered_std_molar >= 0)

    def test_interval_contains_reconstruction(self, result):
        # The default band follows the default reconstruction (the
        # smoothed pass here), so the pair is always consistent.
        lower, upper = result.interval()
        reconstruction, _ = result.reconstruction()
        assert np.all(lower <= reconstruction + 1e-18)
        assert np.all(reconstruction <= upper + 1e-18)
        filtered_lower, filtered_upper = result.interval(smoothed=False)
        assert np.all(
            filtered_lower <= result.filtered_concentration_molar + 1e-18)
        assert np.all(
            result.filtered_concentration_molar <= filtered_upper + 1e-18)

    def test_reconstruction_prefers_smoothed(self, result):
        best, std = result.reconstruction()
        np.testing.assert_array_equal(
            best, result.smoothed_concentration_molar)
        np.testing.assert_array_equal(std, result.smoothed_std_molar)

    def test_smooth_off_skips_smoother(self, plan):
        causal = run_estimation(replace(plan, smooth=False))
        assert causal.smoothed_concentration_molar is None
        assert causal.smoothed_mard is None
        best, _ = causal.reconstruction()
        np.testing.assert_array_equal(
            best, causal.filtered_concentration_molar)
        with pytest.raises(ValueError, match="smoother"):
            causal.interval(smoothed=True)

    def test_detection_delays_delegate(self, result):
        from repro.analytes.physiological import physiological_range

        window = physiological_range("glucose")
        delays = result.excursion_detection_delays_h(
            window.low_molar, window.high_molar)
        assert delays.shape == (result.plan.n_channels,)

    def test_deterministic_replay(self, plan):
        a = run_estimation(plan)
        b = run_estimation(plan)
        np.testing.assert_array_equal(a.filtered_concentration_molar,
                                      b.filtered_concentration_molar)


class TestResultExports:
    def test_summary_mentions_coverage_and_channels(self, result):
        text = result.summary()
        assert "coverage" in text
        assert "patient-000" in text
        assert "linear" in text

    def test_summary_row_flat_and_serializable(self, result):
        row = result.summary_row()
        assert row["workload"] == "estimation"
        assert row["n_channels"] == 4
        assert 0.90 <= row["cohort_filtered_coverage"] <= 0.99
        json.dumps(row)

    def test_to_dict_with_traces(self, result):
        data = result.to_dict(include_traces=True)
        assert len(data["channels"]) == 4
        assert "smoothed_mard" in data["channels"][0]
        assert len(data["filtered_std_molar"]) == 4
        json.dumps(data)

    def test_to_dict_without_traces_is_compact(self, result):
        data = result.to_dict()
        assert "filtered_concentration_molar" not in data
