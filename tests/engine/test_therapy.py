"""Tests for repro.engine.therapy (closed-loop virtual-patient dosing).

Covers the domain gates of the therapy subsystem: controller path
equivalence, the explicit zero-recalibration path for short regimens,
and the personalization claim itself — the Bayesian controller
shrinking trough error versus fixed dosing for poor and ultrarapid
metabolizer cohorts.  The execution-contract gates (chunk invariance,
scalar equivalence, deterministic replay) live in
``tests/engine/test_core_contract.py``.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.engine.core import run_scalar
from repro.engine.therapy import TherapyPlan, run_therapy
from repro.pk import CYCLOSPORINE, CYPPhenotype, Route
from repro.pk.dosing import steady_state_trough_per_mol
from repro.therapy import (
    BayesianTroughController,
    FixedRegimenController,
    ProportionalTroughController,
)

DRUG = CYCLOSPORINE
TARGET = DRUG.window.target_trough_molar


def bayes_controller(**overrides):
    settings = dict(prior=DRUG.typical_model(),
                    target_trough_molar=TARGET,
                    observation_sigma_molar=4e-7)
    settings.update(overrides)
    return BayesianTroughController(**settings)


def typical_dose_mol() -> float:
    """The dose landing the population-typical patient on target."""
    per_mol = float(steady_state_trough_per_mol(
        DRUG.typical_model().params(), 12.0)[0])
    return TARGET / per_mol


@pytest.fixture(scope="module")
def cohort():
    return DRUG.population.sample(6, seed=17)


def short_plan(cohort, **overrides) -> TherapyPlan:
    settings = dict(controller=bayes_controller(), n_doses=4,
                    dose_interval_h=12.0, sample_period_s=1800.0,
                    seed=29, process_noise_sigma_molar=1e-7,
                    wander_sigma_a=2e-9)
    settings.update(overrides)
    return TherapyPlan.for_drug(DRUG, cohort, **settings)


class TestPlanValidation:
    def test_misaligned_dose_grid_rejected(self, cohort):
        with pytest.raises(ValueError):
            short_plan(cohort, dose_interval_h=12.1)

    def test_infusion_needs_duration(self, cohort):
        with pytest.raises(ValueError):
            short_plan(cohort, route=Route.INFUSION)

    def test_duration_only_for_infusions(self, cohort):
        with pytest.raises(ValueError):
            short_plan(cohort, infusion_duration_h=2.0)

    def test_n_doses_positive(self, cohort):
        with pytest.raises(ValueError):
            short_plan(cohort, n_doses=0)

    def test_grid_properties(self, cohort):
        plan = short_plan(cohort)
        assert plan.samples_per_interval == 24
        assert plan.n_samples == 96
        assert plan.duration_h == 48.0
        np.testing.assert_array_equal(
            plan.dose_times_h, [0.0, 12.0, 24.0, 36.0])

    def test_for_drug_wires_sensor_and_window(self, cohort):
        plan = short_plan(cohort)
        assert plan.window == DRUG.window
        assert plan.sensor.analyte.name == "ifosfamide"  # CYP3A4 electrode


class TestControllerEquivalence:
    @pytest.mark.parametrize("controller", [
        FixedRegimenController(dose_mol=8e-4),
        ProportionalTroughController(initial_dose_mol=8e-4,
                                     target_trough_molar=TARGET),
    ], ids=["fixed", "proportional"])
    def test_every_controller_is_path_equivalent(self, cohort, controller):
        plan = short_plan(cohort, controller=controller)
        batch = run_therapy(plan)
        scalar = run_scalar("therapy", plan)
        np.testing.assert_allclose(batch.doses_mol, scalar.doses_mol,
                                   rtol=0.0, atol=1e-12)
        np.testing.assert_allclose(
            batch.estimated_concentration_molar,
            scalar.estimated_concentration_molar, rtol=0.0, atol=1e-9)


class TestDeterminism:
    def test_same_seed_replays(self, cohort):
        a = run_therapy(short_plan(cohort))
        b = run_therapy(short_plan(cohort))
        np.testing.assert_array_equal(a.measured_current_a,
                                      b.measured_current_a)
        np.testing.assert_array_equal(a.doses_mol, b.doses_mol)

    def test_different_seed_differs(self, cohort):
        a = run_therapy(short_plan(cohort))
        b = run_therapy(short_plan(cohort, seed=30))
        assert np.any(a.measured_current_a != b.measured_current_a)


class TestZeroRecalibrationPath:
    """The satellite regression: reference schedules that cannot fire
    inside a short regimen must degrade to open loop, identically on
    both engine paths."""

    def test_short_course_never_recalibrates(self, cohort):
        plan = short_plan(cohort, n_doses=1)  # 12 h < 24 h references
        assert plan.n_reference_draws == 0
        batch = run_therapy(plan)
        scalar = run_scalar("therapy", plan)
        assert int(np.sum(batch.n_recalibrations)) == 0
        assert int(np.sum(scalar.n_recalibrations)) == 0
        np.testing.assert_allclose(
            batch.estimated_concentration_molar,
            scalar.estimated_concentration_molar, rtol=0.0, atol=1e-9)

    def test_zero_recal_equals_disabled_policy(self, cohort):
        from repro.engine.monitor import RecalibrationPolicy

        never = run_therapy(short_plan(cohort, n_doses=1))
        disabled = run_therapy(short_plan(
            cohort, n_doses=1,
            recalibration=RecalibrationPolicy(enabled=False)))
        np.testing.assert_array_equal(
            never.estimated_concentration_molar,
            disabled.estimated_concentration_molar)

    def test_long_course_does_recalibrate(self, cohort):
        plan = short_plan(cohort, n_doses=6)  # 72 h, daily references
        assert plan.n_reference_draws == 3
        result = run_therapy(plan)
        assert int(np.sum(result.n_recalibrations)) > 0


class TestClosedLoopPersonalization:
    """The acceptance claim: model-informed dosing beats fixed dosing
    where pharmacogetics bite — poor and ultrarapid metabolizers."""

    @pytest.mark.parametrize("phenotype", [CYPPhenotype.POOR,
                                           CYPPhenotype.ULTRARAPID])
    def test_bayesian_shrinks_trough_error(self, phenotype):
        stratum = DRUG.population.monomorphic(phenotype).sample(
            8, seed=41)
        fixed_dose = typical_dose_mol()
        shared = dict(n_doses=6, dose_interval_h=12.0,
                      sample_period_s=1800.0, seed=43,
                      process_noise_sigma_molar=1e-7,
                      wander_sigma_a=2e-9)
        fixed = run_therapy(TherapyPlan.for_drug(
            DRUG, stratum,
            controller=FixedRegimenController(dose_mol=fixed_dose),
            **shared))
        bayes = run_therapy(TherapyPlan.for_drug(
            DRUG, stratum, controller=bayes_controller(), **shared))
        fixed_error = float(np.mean(fixed.trough_abs_rel_error))
        bayes_error = float(np.mean(bayes.trough_abs_rel_error))
        assert bayes_error < 0.7 * fixed_error, (
            f"{phenotype.value}: Bayesian {bayes_error:.2f} vs fixed "
            f"{fixed_error:.2f}")

    def test_bayesian_cuts_poor_metabolizer_toxicity(self):
        poor = DRUG.population.monomorphic(CYPPhenotype.POOR).sample(
            8, seed=47)
        shared = dict(n_doses=6, dose_interval_h=12.0,
                      sample_period_s=1800.0, seed=49,
                      process_noise_sigma_molar=1e-7,
                      wander_sigma_a=2e-9)
        fixed = run_therapy(TherapyPlan.for_drug(
            DRUG, poor,
            controller=FixedRegimenController(
                dose_mol=typical_dose_mol()),
            **shared))
        bayes = run_therapy(TherapyPlan.for_drug(
            DRUG, poor, controller=bayes_controller(), **shared))
        assert (float(np.mean(bayes.overdose_exposure_molar_h))
                < 0.5 * float(np.mean(fixed.overdose_exposure_molar_h)))

    def test_proportional_sits_between(self, cohort):
        """Reactive titration helps but the model-informed controller
        stays at least as good on the mixed cohort."""
        shared = dict(n_doses=6, seed=53,
                      process_noise_sigma_molar=1e-7,
                      wander_sigma_a=2e-9, sample_period_s=1800.0)
        mixed = DRUG.population.sample(12, seed=51)
        fixed = run_therapy(TherapyPlan.for_drug(
            DRUG, mixed,
            controller=FixedRegimenController(
                dose_mol=typical_dose_mol()), **shared))
        proportional = run_therapy(TherapyPlan.for_drug(
            DRUG, mixed,
            controller=ProportionalTroughController(
                initial_dose_mol=typical_dose_mol(),
                target_trough_molar=TARGET), **shared))
        assert (float(np.mean(proportional.trough_abs_rel_error))
                < float(np.mean(fixed.trough_abs_rel_error)))


class TestTherapyResult:
    def test_trace_shapes(self, cohort):
        plan = short_plan(cohort)
        result = run_therapy(plan)
        shape = (plan.n_patients, plan.n_samples)
        assert result.true_concentration_molar.shape == shape
        assert result.estimated_concentration_molar.shape == shape
        assert result.measured_current_a.shape == shape
        assert result.doses_mol.shape == (plan.n_patients, plan.n_doses)
        assert result.time_h.shape == (plan.n_samples,)

    def test_keep_traces_off(self, cohort):
        result = run_therapy(short_plan(cohort, keep_traces=False))
        assert result.true_concentration_molar is None
        assert result.measured_current_a is None
        assert result.time_in_range.shape == (cohort.n_patients,)

    def test_troughs_align_with_traces(self, cohort):
        plan = short_plan(cohort)
        result = run_therapy(plan)
        spi = plan.samples_per_interval
        for k in range(plan.n_doses):
            np.testing.assert_array_equal(
                result.trough_true_molar[:, k],
                result.true_concentration_molar[:, (k + 1) * spi - 1])

    def test_window_fractions_partition(self, cohort):
        result = run_therapy(short_plan(cohort))
        np.testing.assert_allclose(
            result.time_in_range + result.fraction_below
            + result.fraction_above, 1.0)

    def test_summary_mentions_phenotypes(self, cohort):
        result = run_therapy(short_plan(cohort))
        text = result.summary()
        assert "in-range" in text
        present = {p.phenotype for p in cohort.patients}
        for phenotype in present:
            assert phenotype.value in text

    def test_noiseless_troughs_converge_to_target(self, cohort):
        """Physics sanity: without noise or drift the Bayesian loop
        pins later troughs close to target for every patient."""
        from repro.bio.matrix import BUFFER
        from repro.core.longterm import DriftBudget
        from repro.engine.monitor import RecalibrationPolicy
        from repro.enzymes.stability import EnzymeStability

        stable = DriftBudget(
            stability=EnzymeStability(half_life_s=1e12),
            matrix=BUFFER, temperature_k=298.15)
        plan = short_plan(
            cohort, n_doses=6, add_noise=False, budget=stable,
            controller=bayes_controller(observation_sigma_molar=1e-8),
            recalibration=RecalibrationPolicy(enabled=False))
        result = run_therapy(plan)
        final_troughs = result.trough_true_molar[:, -1]
        np.testing.assert_allclose(final_troughs, TARGET, rtol=0.15)

    def test_open_loop_plan_replaces_cleanly(self, cohort):
        plan = short_plan(cohort)
        open_loop = replace(plan, keep_traces=False)
        assert open_loop.keep_traces is False


class TestFilteredTroughs:
    """The PR-5 refactor: the controller can consume Kalman-filtered
    trough estimates (and their variances) instead of raw readouts."""

    def test_plan_knobs_validated(self, cohort):
        with pytest.raises(ValueError, match="filter process sigma"):
            short_plan(cohort, filter_troughs=True,
                       filter_process_sigma_molar=0.0)
        default = short_plan(cohort, filter_troughs=True)
        assert default.trough_filter_step_sigma_molar \
            == pytest.approx(0.05 * TARGET)
        explicit = short_plan(cohort, filter_troughs=True,
                              filter_process_sigma_molar=1e-7)
        assert explicit.trough_filter_step_sigma_molar == 1e-7

    def test_raw_plan_carries_no_variances(self, cohort):
        result = run_therapy(short_plan(cohort, keep_traces=False))
        assert result.trough_variance_molar2 is None
        assert "trough_variance_molar2" not in \
            result.to_dict()["patients"][0]

    def test_variances_shaped_and_positive(self, cohort):
        plan = short_plan(cohort, filter_troughs=True, keep_traces=False)
        result = run_therapy(plan)
        variances = result.trough_variance_molar2
        assert variances.shape == (plan.n_patients, plan.n_doses)
        assert np.all(variances > 0)
        assert "trough_variance_molar2" in \
            result.to_dict()["patients"][0]

    def test_filtered_troughs_reduce_readout_error(self, cohort):
        raw = run_therapy(short_plan(cohort, keep_traces=False))
        filtered = run_therapy(short_plan(cohort, filter_troughs=True,
                                          keep_traces=False))
        raw_err = np.abs(raw.trough_estimated_molar
                         - raw.trough_true_molar)
        filtered_err = np.abs(filtered.trough_estimated_molar
                              - filtered.trough_true_molar)
        assert float(np.mean(filtered_err)) < float(np.mean(raw_err))
