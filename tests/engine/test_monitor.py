"""Tests for repro.engine.monitor (streaming wear-time simulation)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.analytes.physiological import ConcentrationTrajectory
from repro.bio.matrix import BUFFER, SERUM
from repro.core.longterm import DriftBudget
from repro.engine.monitor import (
    MonitorChannel,
    MonitorPlan,
    RecalibrationPolicy,
    cohort,
    glucose_cohort,
    run_monitor,
)
from repro.engine.core import run_scalar
from repro.enzymes.stability import EnzymeStability

WEEK_S = 7 * 24 * 3600.0


@pytest.fixture(scope="module")
def channels():
    return glucose_cohort(n_patients=3)


def short_plan(channels, **overrides) -> MonitorPlan:
    settings = dict(channels=channels, duration_h=36.0,
                    sample_period_s=900.0, chunk_samples=32, seed=99)
    settings.update(overrides)
    return MonitorPlan(**settings)


class TestPlanValidation:
    def test_rejects_empty_cohort(self):
        with pytest.raises(ValueError):
            MonitorPlan(channels=(), duration_h=24.0)

    def test_rejects_non_positive_duration(self, channels):
        with pytest.raises(ValueError):
            MonitorPlan(channels=channels, duration_h=0.0)

    def test_rejects_horizon_shorter_than_period(self, channels):
        with pytest.raises(ValueError):
            MonitorPlan(channels=channels, duration_h=0.01,
                        sample_period_s=3600.0)

    def test_rejects_reference_faster_than_sampling(self, channels):
        with pytest.raises(ValueError):
            MonitorPlan(channels=channels, duration_h=24.0,
                        sample_period_s=3600.0,
                        recalibration=RecalibrationPolicy(
                            reference_interval_h=0.5))

    def test_rejects_bad_spec_tolerance(self, channels):
        with pytest.raises(ValueError):
            MonitorPlan(channels=channels, duration_h=24.0,
                        spec_tolerance=1.5)

    def test_sample_count(self, channels):
        plan = MonitorPlan(channels=channels, duration_h=24.0,
                           sample_period_s=3600.0)
        assert plan.n_samples == 24
        assert plan.n_channels == 3

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RecalibrationPolicy(reference_interval_h=-1.0)
        with pytest.raises(ValueError):
            RecalibrationPolicy(tolerance=0.0)

    def test_channel_validation(self, channels):
        with pytest.raises(ValueError):
            replace(channels[0], wander_sigma_a=-1.0)
        with pytest.raises(ValueError):
            replace(channels[0], slope_a_per_molar=0.0)


class TestDeterminism:
    def test_same_seed_replays(self, channels):
        a = run_monitor(short_plan(channels))
        b = run_monitor(short_plan(channels))
        np.testing.assert_array_equal(a.measured_current_a,
                                      b.measured_current_a)
        np.testing.assert_array_equal(a.mard, b.mard)

    def test_different_seed_differs(self, channels):
        a = run_monitor(short_plan(channels))
        b = run_monitor(short_plan(channels, seed=100))
        assert np.any(a.measured_current_a != b.measured_current_a)

    def test_noiseless_run_is_deterministic_without_seed(self, channels):
        a = run_monitor(short_plan(channels, seed=None, add_noise=False))
        b = run_monitor(short_plan(channels, seed=None, add_noise=False))
        np.testing.assert_array_equal(a.measured_current_a,
                                      b.measured_current_a)


class TestDriftAndRecalibration:
    def test_open_loop_mard_grows_with_drift(self, channels):
        policy = RecalibrationPolicy(enabled=False)
        short = run_monitor(short_plan(channels, duration_h=12.0,
                                       recalibration=policy,
                                       add_noise=False))
        long = run_monitor(short_plan(channels, duration_h=72.0,
                                      recalibration=policy,
                                      add_noise=False))
        assert float(np.mean(long.mard)) > float(np.mean(short.mard))

    def test_recalibration_reduces_mard(self, channels):
        open_loop = run_monitor(short_plan(
            channels, duration_h=72.0,
            recalibration=RecalibrationPolicy(enabled=False)))
        closed = run_monitor(short_plan(
            channels, duration_h=72.0,
            recalibration=RecalibrationPolicy(
                reference_interval_h=6.0, tolerance=0.05)))
        assert float(np.mean(closed.mard)) < float(np.mean(open_loop.mard))
        assert np.all(closed.n_recalibrations >= 1)
        assert np.all(open_loop.n_recalibrations == 0)

    def test_recalibration_times_are_reference_aligned(self, channels):
        policy = RecalibrationPolicy(reference_interval_h=6.0,
                                     tolerance=0.05)
        result = run_monitor(short_plan(channels, duration_h=72.0,
                                        recalibration=policy))
        for times in result.recalibration_times_h:
            for t in times:
                assert t / 6.0 == pytest.approx(round(t / 6.0))

    def test_no_drift_no_recalibration(self):
        # Concentrations deep inside the linear range (C << Km), so the
        # linear estimator carries no Michaelis-Menten bias: with no
        # drift and no noise there is nothing for a re-fit to absorb.
        stable = MonitorChannel(
            patient_id="stable",
            sensor=glucose_cohort(1)[0].sensor,
            trajectory=ConcentrationTrajectory(
                baseline_molar=5e-5,
                circadian_amplitude_molar=1e-5,
                floor_molar=1e-5),
            budget=DriftBudget(
                stability=EnzymeStability(half_life_s=1e9 * WEEK_S),
                matrix=BUFFER,
                temperature_k=298.15),
        )
        result = run_monitor(short_plan((stable,), duration_h=72.0,
                                        add_noise=False))
        assert int(result.n_recalibrations[0]) == 0
        assert result.final_retention[0] > 0.999
        # Quantization-only error: estimates essentially perfect.
        assert float(result.mard[0]) < 0.01

    def test_zero_floor_reference_sample_skips_recal(self, channels):
        """Regression: a channel whose true level clamps to a 0.0
        trajectory floor at a reference sample must skip that re-fit,
        not crash the cohort (on either path)."""
        noisy = MonitorChannel(
            patient_id="noisy",
            sensor=channels[0].sensor,
            trajectory=ConcentrationTrajectory(
                baseline_molar=1e-4,
                noise_sigma_molar=5e-4,   # clamps to the floor often
                noise_tau_h=0.5,
                floor_molar=0.0),
            budget=channels[0].budget,
        )
        plan = short_plan((noisy,), duration_h=48.0,
                          recalibration=RecalibrationPolicy(
                              reference_interval_h=0.25,
                              tolerance=0.05),
                          sample_period_s=900.0)
        batch = run_monitor(plan)
        scalar = run_scalar("monitor", plan)
        assert np.any(batch.true_concentration_molar == 0.0)
        assert np.isfinite(batch.mard).all()
        np.testing.assert_allclose(
            batch.estimated_concentration_molar,
            scalar.estimated_concentration_molar, rtol=0.0, atol=1e-9)
        assert batch.recalibration_times_h == scalar.recalibration_times_h

    def test_reference_schedule_that_never_fires(self, channels):
        """Regression (the zero-recalibration path): a reference
        interval longer than the wear time is legal — the plan degrades
        to open-loop monitoring, identically on both engine paths, and
        reports it through ``n_reference_draws``."""
        plan = short_plan(channels, duration_h=6.0,
                          recalibration=RecalibrationPolicy(
                              reference_interval_h=12.0))
        assert plan.n_reference_draws == 0
        batch = run_monitor(plan)
        scalar = run_scalar("monitor", plan)
        assert int(np.sum(batch.n_recalibrations)) == 0
        assert int(np.sum(scalar.n_recalibrations)) == 0
        np.testing.assert_allclose(
            batch.estimated_concentration_molar,
            scalar.estimated_concentration_molar, rtol=0.0, atol=1e-9)
        open_loop = run_monitor(short_plan(
            channels, duration_h=6.0,
            recalibration=RecalibrationPolicy(enabled=False)))
        np.testing.assert_array_equal(
            batch.estimated_concentration_molar,
            open_loop.estimated_concentration_molar)

    def test_reference_draw_count_property(self, channels):
        plan = short_plan(channels, duration_h=36.0,
                          recalibration=RecalibrationPolicy(
                              reference_interval_h=12.0))
        assert plan.n_reference_draws == 3
        disabled = short_plan(channels, duration_h=36.0,
                              recalibration=RecalibrationPolicy(
                                  enabled=False))
        assert disabled.n_reference_draws == 0

    def test_reference_on_final_sample_still_fires(self, channels):
        """Boundary of the zero-recal path: an interval equal to the
        wear time fires exactly once, at the last sample."""
        plan = short_plan(channels, duration_h=36.0,
                          recalibration=RecalibrationPolicy(
                              reference_interval_h=36.0,
                              tolerance=0.01))
        assert plan.n_reference_draws == 1
        batch = run_monitor(plan)
        scalar = run_scalar("monitor", plan)
        np.testing.assert_array_equal(batch.n_recalibrations,
                                      scalar.n_recalibrations)
        for times in batch.recalibration_times_h:
            assert all(t == pytest.approx(36.0) for t in times)

    def test_final_retention_matches_budget(self, channels):
        result = run_monitor(short_plan(channels))
        t_end_h = result.plan.n_samples * result.plan.sample_period_s / 3600
        for i, channel in enumerate(channels):
            assert result.final_retention[i] == pytest.approx(
                channel.budget.sensitivity_retention(t_end_h))


class TestMonitorResult:
    def test_trace_shapes(self, channels):
        plan = short_plan(channels)
        result = run_monitor(plan)
        shape = (plan.n_channels, plan.n_samples)
        assert result.true_concentration_molar.shape == shape
        assert result.estimated_concentration_molar.shape == shape
        assert result.measured_current_a.shape == shape
        assert result.time_h.shape == (plan.n_samples,)
        assert result.mard.shape == (plan.n_channels,)

    def test_keep_traces_off(self, channels):
        result = run_monitor(short_plan(channels, keep_traces=False))
        assert result.true_concentration_molar is None
        assert result.estimated_concentration_molar is None
        assert result.measured_current_a is None
        assert result.time_h is None
        assert result.mard.shape == (len(channels),)

    def test_summary_mentions_every_patient(self, channels):
        result = run_monitor(short_plan(channels))
        text = result.summary()
        for channel in channels:
            assert channel.patient_id in text
        assert "MARD" in text

    def test_time_in_spec_bounds(self, channels):
        result = run_monitor(short_plan(channels))
        assert np.all(result.time_in_spec >= 0.0)
        assert np.all(result.time_in_spec <= 1.0)
        assert np.all(result.mard >= 0.0)


class TestCohortBuilders:
    def test_cohort_size_and_ids(self, channels):
        assert len(channels) == 3
        assert len({c.patient_id for c in channels}) == 3

    def test_patients_differ_deterministically(self, channels):
        baselines = {c.trajectory.baseline_molar for c in channels}
        assert len(baselines) == 3
        again = glucose_cohort(n_patients=3)
        for a, b in zip(channels, again):
            assert a.trajectory == b.trajectory

    def test_rejects_empty_cohort(self):
        with pytest.raises(ValueError):
            cohort(glucose_cohort(1)[0].sensor, "glucose", 0)

    def test_custom_matrix(self):
        sensor = glucose_cohort(1)[0].sensor
        channels = cohort(sensor, "glucose", 2, matrix=SERUM)
        assert all(c.budget.matrix is SERUM for c in channels)

    def test_day0_overrides(self, channels):
        custom = replace(channels[0], slope_a_per_molar=1.0,
                         intercept_a=2.0)
        assert custom.day0_slope_a_per_molar == 1.0
        assert custom.day0_intercept_a == 2.0
        default = channels[0]
        assert (default.day0_slope_a_per_molar
                == default.sensor.expected_slope_a_per_molar())
        assert (default.day0_intercept_a
                == default.sensor.background_current_a)
