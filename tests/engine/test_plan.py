"""Tests for repro.engine.plan: campaign description and validation."""

import numpy as np
import pytest

from repro.engine import BatchPlan, BatchResult


def make_plan(glucose_sensor, **overrides):
    kwargs = dict(
        sensors=(glucose_sensor,),
        concentrations_molar=((0.0, 1e-4, 5e-4),),
        replicates=2,
        seed=1,
    )
    kwargs.update(overrides)
    return BatchPlan(**kwargs)


class TestBatchPlanValidation:
    def test_accepts_well_formed(self, glucose_sensor):
        plan = make_plan(glucose_sensor)
        assert plan.n_cells == 6

    def test_rejects_empty_sensor_panel(self):
        with pytest.raises(ValueError, match="at least one sensor"):
            BatchPlan(sensors=(), concentrations_molar=())

    def test_rejects_grid_count_mismatch(self, glucose_sensor):
        with pytest.raises(ValueError, match="concentration grids"):
            make_plan(glucose_sensor,
                      concentrations_molar=((0.0,), (1e-4,)))

    def test_rejects_empty_grid(self, glucose_sensor):
        with pytest.raises(ValueError, match="at least one"):
            make_plan(glucose_sensor, concentrations_molar=((),))

    def test_rejects_negative_concentration(self, glucose_sensor):
        with pytest.raises(ValueError, match=">= 0"):
            make_plan(glucose_sensor, concentrations_molar=((-1e-4,),))

    def test_rejects_non_finite_concentration(self, glucose_sensor):
        with pytest.raises(ValueError, match="finite"):
            make_plan(glucose_sensor,
                      concentrations_molar=((float("nan"),),))

    def test_rejects_zero_replicates(self, glucose_sensor):
        with pytest.raises(ValueError, match="replicates"):
            make_plan(glucose_sensor, replicates=0)

    def test_rejects_replicate_tuple_mismatch(self, glucose_sensor):
        with pytest.raises(ValueError, match="replicate"):
            make_plan(glucose_sensor, replicates=((2, 2),))

    def test_rejects_non_positive_duration(self, glucose_sensor):
        with pytest.raises(ValueError, match="duration"):
            make_plan(glucose_sensor, step_duration_s=0.0)


class TestCellEnumeration:
    def test_canonical_order(self, glucose_sensor):
        plan = make_plan(glucose_sensor, replicates=((3, 1, 2),))
        cells = list(plan.cells())
        assert [c.flat for c in cells] == list(range(6))
        assert [c.concentration for c in cells] == [0, 0, 0, 1, 2, 2]
        assert [c.replicate for c in cells] == [0, 1, 2, 0, 0, 1]

    def test_sensor_cell_span(self, glucose_sensor, glutamate_sensor):
        plan = BatchPlan(
            sensors=(glucose_sensor, glutamate_sensor),
            concentrations_molar=((0.0, 1e-4), (0.0, 1e-3, 2e-3)),
            replicates=2, seed=0)
        assert plan.sensor_cell_span(0) == (0, 4)
        assert plan.sensor_cell_span(1) == (4, 10)
        assert plan.n_cells == 10

    def test_per_sensor_replicates(self, glucose_sensor):
        plan = make_plan(glucose_sensor, replicates=((5, 3, 3),))
        assert plan.replicates_for(0) == (5, 3, 3)
        assert plan.n_cells == 11


class TestBatchResult:
    def test_accessors(self, glucose_sensor):
        plan = make_plan(glucose_sensor, replicates=((3, 2, 2),))
        values = ((np.array([1.0, 2.0, 3.0]),
                   np.array([4.0, 6.0]),
                   np.array([8.0, 8.0])),)
        result = BatchResult(plan=plan, values_a=values)
        np.testing.assert_allclose(result.means(0), [2.0, 5.0, 8.0])
        np.testing.assert_allclose(result.stds(0),
                                   [1.0, np.sqrt(2.0), 0.0])
        np.testing.assert_allclose(result.flat_values(),
                                   [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 8.0])
        np.testing.assert_allclose(result.replicate_values(0, 1), [4.0, 6.0])

    def test_rejects_wrong_group_count(self, glucose_sensor):
        plan = make_plan(glucose_sensor)
        with pytest.raises(ValueError, match="concentration groups"):
            BatchResult(plan=plan, values_a=((np.zeros(2),),))

    def test_rejects_wrong_replicate_shape(self, glucose_sensor):
        plan = make_plan(glucose_sensor)
        with pytest.raises(ValueError, match="shape"):
            BatchResult(plan=plan, values_a=(
                (np.zeros(2), np.zeros(3), np.zeros(2)),))
