"""Campaign telemetry: lifecycle events, report, trace, versioning.

The store's ``telemetry`` table is the wall-clock side of the
campaign layer — worker ids, durations, span summaries — and these
tests pin its four contracts: the runner records the full
``queued -> running -> done/failed`` lifecycle (plus ``spans`` when
instrumented), the deterministic export never changes whether or not
telemetry was on, readers refuse a mismatched telemetry schema while
shard data stays readable, and ``python -m repro campaign report`` on
the checked-in example fleet renders percentiles and a
Perfetto-loadable trace end to end.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

import pytest

from repro.campaigns import (
    ArtifactStore,
    duration_stats,
    perfetto_trace,
    render_report,
    run_campaign,
    shard_timings,
    span_breakdown,
    worker_utilization,
)
from repro.campaigns.report import ShardTiming
from repro.scenarios import Scenario
from repro.scenarios.cli import main as cli_main
from repro.telemetry import InMemoryRecorder, set_recorder

EXAMPLE_FLEET = Path(__file__).resolve().parents[2] \
    / "examples" / "campaigns" / "glucose_fleet.json"


@pytest.fixture()
def recorder():
    """An installed (enabled) recorder, uninstalled on teardown."""
    active = InMemoryRecorder()
    previous = set_recorder(active)
    yield active
    set_recorder(previous)


class TestLifecycleEvents:
    def test_run_records_full_lifecycle_per_shard(self, small_campaign,
                                                  tmp_path):
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        with ArtifactStore.open(store_path) as store:
            events = store.telemetry_events()
        by_kind = {}
        for event in events:
            by_kind.setdefault(event["event"], []).append(event)
        n = small_campaign.n_shards
        assert len(by_kind["queued"]) == n
        assert len(by_kind["running"]) == n
        assert len(by_kind["done"]) == n
        assert "failed" not in by_kind
        for event in by_kind["done"]:
            assert event["worker"].startswith("pid:")
            assert event["duration_s"] > 0.0
        # Without telemetry enabled in the workers, no span payloads.
        assert "spans" not in by_kind

    def test_instrumented_run_records_span_payloads(
            self, small_campaign, tmp_path, recorder):
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        with ArtifactStore.open(store_path) as store:
            events = store.telemetry_events()
        spans = [e for e in events if e["event"] == "spans"]
        assert len(spans) == small_campaign.n_shards
        summary = spans[0]["payload"]["summary"]
        assert "core.run_chunk" in summary
        assert {"count", "total_s", "p50_s", "p95_s"} <= \
            set(summary["core.run_chunk"])
        # The shard recorders replayed into the process recorder too.
        assert any(r.name == "core.execute" for r in recorder.spans)

    def test_failed_shard_records_failed_event(self, tmp_path):
        from repro.campaigns import CampaignSpec

        bad = CampaignSpec(
            name="bad", n_shards=2, seed=1,
            base=Scenario(workload="monitor", name="broken",
                          spec={"cohort": {"sensor": "glucose/this-work",
                                           "analyte": "glucose",
                                           "n_patients": 0},
                                "duration_h": 1.0}))
        store_path = tmp_path / "bad.sqlite"
        run_campaign(bad, store_path, workers=1)
        with ArtifactStore.open(store_path) as store:
            events = store.telemetry_events()
        failed = [e for e in events if e["event"] == "failed"]
        assert len(failed) == 2
        assert all(e["duration_s"] is not None for e in failed)

    def test_resume_requeues_with_queued_events(self, small_campaign,
                                                tmp_path):
        store_path = tmp_path / "fleet.sqlite"
        ArtifactStore.create(store_path, small_campaign).close()
        with ArtifactStore.open(store_path) as store:
            store.mark_running(0)
            store.mark_running(1)
            assert store.reset_running() == 2
            events = store.telemetry_events()
        queued = [e for e in events if e["event"] == "queued"]
        # One per shard at create + one per requeued shard.
        assert len(queued) == small_campaign.n_shards + 2

    def test_unknown_event_kind_rejected(self, small_campaign,
                                         tmp_path):
        store_path = tmp_path / "fleet.sqlite"
        ArtifactStore.create(store_path, small_campaign).close()
        with ArtifactStore.open(store_path) as store:
            with pytest.raises(ValueError, match="unknown telemetry"):
                store.record_event("exploded", 0)


class TestDeterministicExport:
    def test_export_identical_with_and_without_telemetry(
            self, small_campaign, tmp_path, reference_export, recorder):
        """Telemetry rows are wall-clock data and must never leak into
        the deterministic export: an instrumented run exports byte-
        identically to the uninstrumented reference."""
        store_path = tmp_path / "instrumented.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        with ArtifactStore.open(store_path) as store:
            assert store.export_json() == reference_export


class TestTelemetrySchemaVersioning:
    def test_mismatch_refuses_telemetry_but_not_shards(
            self, small_campaign, tmp_path):
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        conn = sqlite3.connect(store_path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = '999' "
                "WHERE key = 'telemetry_schema_version'")
        conn.close()
        with ArtifactStore.open(store_path) as store:
            with pytest.raises(ValueError,
                               match="telemetry schema version 999"):
                store.telemetry_events()
            # Shard data is unaffected by a telemetry-only mismatch.
            assert store.counts()["done"] == small_campaign.n_shards
            assert "shards" in json.loads(store.export_json())

    def test_report_cli_reports_mismatch_as_usage_error(
            self, small_campaign, tmp_path, capsys):
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        conn = sqlite3.connect(store_path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = '999' "
                "WHERE key = 'telemetry_schema_version'")
        conn.close()
        assert cli_main(["campaign", "report", str(store_path)]) == 2
        assert "telemetry schema version" in capsys.readouterr().out


class TestStatusThroughputAndEta:
    def test_partial_campaign_shows_throughput_and_eta(
            self, small_campaign, tmp_path):
        from repro.campaigns import execute_shard

        store_path = tmp_path / "fleet.sqlite"
        ArtifactStore.create(store_path, small_campaign).close()
        for index in range(3):
            execute_shard(store_path, index)
        with ArtifactStore.open(store_path) as store:
            summary = store.status_summary()
            rate = store.completion_rate_per_s()
        assert rate is not None and rate > 0.0
        assert "throughput:" in summary and "shards/min" in summary
        assert "eta:" in summary and "5 shards remaining" in summary

    def test_fresh_store_has_no_rate(self, small_campaign, tmp_path):
        store_path = tmp_path / "fleet.sqlite"
        ArtifactStore.create(store_path, small_campaign).close()
        with ArtifactStore.open(store_path) as store:
            assert store.completion_rate_per_s() is None
            assert "throughput: n/a" in store.status_summary()

    def test_finished_campaign_shows_no_eta(self, small_campaign,
                                            tmp_path):
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        with ArtifactStore.open(store_path) as store:
            summary = store.status_summary()
        assert "eta:" not in summary


class TestReportPieces:
    def make_events(self):
        """Two workers, three shards, one span payload."""
        return [
            {"shard_index": 0, "event": "queued", "worker": None,
             "wall_s": 0.0, "duration_s": None, "payload": None},
            {"shard_index": 0, "event": "done", "worker": "pid:1",
             "wall_s": 10.0, "duration_s": 2.0, "payload": None},
            {"shard_index": 1, "event": "done", "worker": "pid:2",
             "wall_s": 11.0, "duration_s": 3.0, "payload": None},
            {"shard_index": 2, "event": "failed", "worker": "pid:1",
             "wall_s": 12.0, "duration_s": 1.0, "payload": None},
            {"shard_index": 0, "event": "spans", "worker": "pid:1",
             "wall_s": 10.0, "duration_s": None,
             "payload": {"summary": {"core.run_chunk": {
                 "count": 4, "total_s": 1.5, "p50_s": 0.3,
                 "p95_s": 0.6}}, "counters": {"core.chunks": 4.0}}},
        ]

    def test_shard_timings_from_terminal_events(self):
        timings = shard_timings(self.make_events())
        assert [t.shard_index for t in timings] == [0, 1, 2]
        assert timings[0].started_wall_s == pytest.approx(8.0)
        assert timings[2].status == "failed"

    def test_duration_stats(self):
        stats = duration_stats(shard_timings(self.make_events()))
        assert stats["count"] == 3
        assert stats["p50_s"] == pytest.approx(2.0)
        assert stats["min_s"] == 1.0 and stats["max_s"] == 3.0
        assert duration_stats([]) is None

    def test_worker_utilization(self):
        table = worker_utilization(shard_timings(self.make_events()))
        assert set(table) == {"pid:1", "pid:2"}
        assert table["pid:1"]["shards"] == 2
        assert table["pid:1"]["busy_s"] == pytest.approx(3.0)
        # Span runs from the first start (8.0) to the last end (12.0).
        assert table["pid:2"]["utilization"] == pytest.approx(3.0 / 4.0)

    def test_span_breakdown_merges_counts_and_totals(self):
        events = self.make_events()
        events.append({
            "shard_index": 1, "event": "spans", "worker": "pid:2",
            "wall_s": 11.0, "duration_s": None,
            "payload": {"summary": {"core.run_chunk": {
                "count": 6, "total_s": 2.5, "p50_s": 0.4,
                "p95_s": 0.9}}, "counters": {}}})
        table = span_breakdown(events)
        row = table["core.run_chunk"]
        assert row["count"] == 10
        assert row["total_s"] == pytest.approx(4.0)
        assert row["mean_s"] == pytest.approx(0.4)
        assert row["max_p95_s"] == pytest.approx(0.9)

    def test_synthetic_timing_dataclass_roundtrip(self):
        timing = ShardTiming(shard_index=1, worker="pid:9",
                             started_wall_s=1.0, duration_s=0.5,
                             status="done")
        assert timing.started_wall_s + timing.duration_s == 1.5


class TestEndToEndReport:
    def test_example_fleet_report_and_perfetto_trace(
            self, tmp_path, capsys, recorder):
        """The acceptance gate: an instrumented run of the checked-in
        glucose fleet must yield a report with p50/p95 shard durations
        and a Perfetto-loadable trace file."""
        store_path = tmp_path / "fleet.sqlite"
        trace_path = tmp_path / "fleet_trace.json"
        assert cli_main(["campaign", "run", str(EXAMPLE_FLEET),
                         "--store", str(store_path)]) == 0
        assert cli_main(["campaign", "report", str(store_path),
                         "--perfetto-out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out
        assert "shard durations (8 finished)" in out
        assert "workers (1):" in out
        assert "slowest spans" in out
        assert "core.run_chunk" in out
        trace = json.loads(trace_path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        complete = [e for e in trace["traceEvents"]
                    if e["ph"] == "X"]
        assert len(complete) == 8
        assert all(e["dur"] > 0 for e in complete)
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metadata)

    def test_report_on_unfinished_store_degrades(self, small_campaign,
                                                 tmp_path, capsys):
        store_path = tmp_path / "fleet.sqlite"
        ArtifactStore.create(store_path, small_campaign).close()
        assert cli_main(["campaign", "report", str(store_path)]) == 0
        assert "no finished shards yet" in capsys.readouterr().out

    def test_multiworker_run_records_events_across_processes(
            self, small_campaign, tmp_path):
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=2)
        with ArtifactStore.open(store_path) as store:
            events = store.telemetry_events()
            trace = perfetto_trace(store)
            report = render_report(store)
        done = [e for e in events if e["event"] == "done"]
        assert len(done) == small_campaign.n_shards
        assert len([e for e in trace["traceEvents"]
                    if e["ph"] == "X"]) == small_campaign.n_shards
        assert "workers (" in report
