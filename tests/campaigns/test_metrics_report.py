"""Fleet-wide metrics and retry budgets in ``campaign report``.

The cross-process half of the metrics tentpole: every shard's
registry snapshot persists as a ``metrics`` telemetry event, the
report merges them into one fleet-wide histogram view (true
distribution, not an average of averages — including across real
worker processes), ``failed`` events carry the raising exception
class so retries group into per-error-class budgets, and
``campaign report --json`` emits the whole payload machine-readably.
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import ArtifactStore, run_campaign
from repro.campaigns.report import (
    merged_metrics,
    render_report,
    report_payload,
    retry_budgets,
)
from repro.scenarios.cli import main as cli_main
from repro.telemetry import MetricsRegistry, set_metrics_registry

from tests.campaigns.test_retry import _flaky_spec, flaky_workload  # noqa: F401


@pytest.fixture()
def registry(monkeypatch):
    """An installed enabled registry + env flag for worker processes."""
    monkeypatch.setenv("REPRO_METRICS", "1")
    active = MetricsRegistry()
    previous = set_metrics_registry(active)
    yield active
    set_metrics_registry(previous)


class TestMeteredCampaign:
    def test_every_shard_persists_a_snapshot(self, registry,
                                             small_campaign, tmp_path):
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        with ArtifactStore.open(store_path) as store:
            events = [e for e in store.telemetry_events()
                      if e["event"] == "metrics"]
        assert len(events) == small_campaign.n_shards
        for event in events:
            payload = event["payload"]
            assert payload["trace_id"]
            snapshot = payload["snapshot"]
            assert snapshot["metrics_schema_version"] == 1
            execute = snapshot["instruments"][
                "repro_core_execute_seconds"]
            assert execute["series"][0]["count"] == 1

    def test_report_merges_across_worker_processes(self, registry,
                                                   small_campaign,
                                                   tmp_path):
        """The acceptance gate: a multi-process run still reports one
        fleet-wide histogram with every shard's observation in it."""
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=2)
        with ArtifactStore.open(store_path) as store:
            merged = merged_metrics(store.telemetry_events())
            text = render_report(store)
        execute = merged["instruments"]["repro_core_execute_seconds"]
        (row,) = execute["series"]
        assert row["count"] == small_campaign.n_shards
        assert "fleet-wide latency histograms" in text
        assert "repro_core_execute_seconds" in text

    def test_unmetered_report_points_at_the_flag(self, small_campaign,
                                                 tmp_path):
        store_path = tmp_path / "bare.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        with ArtifactStore.open(store_path) as store:
            assert merged_metrics(store.telemetry_events()) is None
            assert "REPRO_METRICS=1" in render_report(store)

    def test_lifecycle_events_carry_trace_ids(self, registry,
                                              small_campaign, tmp_path):
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        with ArtifactStore.open(store_path) as store:
            events = store.telemetry_events()
        by_shard: dict = {}
        for event in events:
            if event["event"] in ("running", "done") \
                    and event["payload"]:
                by_shard.setdefault(event["shard_index"], set()).add(
                    event["payload"]["trace_id"])
        assert len(by_shard) == small_campaign.n_shards
        # one trace id per shard, shared by running and done
        assert all(len(ids) == 1 for ids in by_shard.values())


class TestRetryBudgets:
    def test_budgets_group_by_error_class(self, flaky_workload,  # noqa: F811
                                          tmp_path):
        spec = _flaky_spec("budget", tmp_path, fail_attempts=1,
                           max_retries=2)
        run_campaign(spec, tmp_path / "c.sqlite", workers=1)
        with ArtifactStore.open(tmp_path / "c.sqlite") as store:
            budgets = retry_budgets(store.telemetry_events(),
                                    store.spec.max_retries)
            text = render_report(store)
        (error_class,) = budgets
        assert error_class == "RuntimeError"
        row = budgets[error_class]
        assert row["failures"] == 4
        assert row["shards"] == 4
        assert row["retries_used"] == 4
        assert row["max_retries_used"] == 1
        assert row["max_retries"] == 2
        assert row["recovered_shards"] == 4
        assert "retry budgets (max_retries=2):" in text
        assert "RuntimeError" in text

    def test_exhausted_budget_shows_unrecovered(self, flaky_workload,  # noqa: F811
                                                tmp_path):
        spec = _flaky_spec("exhaust", tmp_path, fail_attempts=5,
                           max_retries=1, n_shards=2)
        run_campaign(spec, tmp_path / "c.sqlite", workers=1)
        with ArtifactStore.open(tmp_path / "c.sqlite") as store:
            budgets = retry_budgets(store.telemetry_events(),
                                    store.spec.max_retries)
        row = budgets["RuntimeError"]
        assert row["failures"] == 4  # 2 shards x (initial + 1 retry)
        assert row["recovered_shards"] == 0


class TestReportJson:
    def test_cli_json_payload(self, registry, small_campaign,
                              tmp_path, capsys):
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        rc = cli_main(["campaign", "report", str(store_path), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaign"] == small_campaign.name
        assert payload["n_shards"] == small_campaign.n_shards
        assert payload["counts"]["done"] == small_campaign.n_shards
        assert payload["retry_budgets"] == {}
        execute = payload["metrics"]["instruments"][
            "repro_core_execute_seconds"]
        assert execute["series"][0]["count"] == small_campaign.n_shards
        (histogram_row,) = [
            row for row in payload["metric_histograms"]
            if row["name"] == "repro_core_execute_seconds"]
        assert histogram_row["count"] == small_campaign.n_shards

    def test_payload_matches_render(self, small_campaign, tmp_path):
        store_path = tmp_path / "fleet.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        with ArtifactStore.open(store_path) as store:
            payload = report_payload(store)
        assert payload["metrics"] is None
        assert payload["metric_histograms"] == []
        json.dumps(payload)  # the whole payload is JSON-clean