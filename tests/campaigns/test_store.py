"""ArtifactStore: schema versioning, WAL concurrency, export fidelity.

The store is the campaign's single source of truth, so these tests pin
its three survival properties: it refuses stores written by a
different schema with a clear error; two processes writing rows
concurrently never corrupt it (WAL); and its export carries exactly
the rows the scenario CLI would emit for the same shard.
"""

from __future__ import annotations

import json
import sqlite3
from multiprocessing import get_context

import pytest

from repro.campaigns import (
    ArtifactStore,
    CampaignSpec,
    STORE_SCHEMA_VERSION,
    run_campaign,
)
from repro.scenarios import Scenario
from repro.scenarios.cli import main as scenario_cli_main


@pytest.fixture()
def store_path(small_campaign, tmp_path):
    """A freshly created (all-pending) store for the small campaign."""
    path = tmp_path / "fleet.sqlite"
    ArtifactStore.create(path, small_campaign).close()
    return path


class TestLifecycle:
    def test_create_expands_manifest_and_shards(self, small_campaign,
                                                store_path):
        with ArtifactStore.open(store_path) as store:
            assert store.spec == small_campaign
            assert store.spec_hash == small_campaign.spec_hash()
            assert store.workload == "monitor"
            assert store.n_shards() == small_campaign.n_shards
            assert store.counts() == {"pending": small_campaign.n_shards,
                                      "running": 0, "done": 0,
                                      "failed": 0}
            assert store.pending_indices() == tuple(
                range(small_campaign.n_shards))
            # Shard rows are the resolved scenarios, seeds included.
            assert store.shard_scenario(3) == small_campaign.shard(3)

    def test_create_refuses_existing_path(self, small_campaign,
                                          store_path):
        with pytest.raises(FileExistsError, match="resume"):
            ArtifactStore.create(store_path, small_campaign)

    def test_open_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ArtifactStore.open(tmp_path / "nope.sqlite")

    def test_open_non_store_file(self, tmp_path):
        bogus = tmp_path / "bogus.sqlite"
        bogus.write_text("this is not a database")
        with pytest.raises(ValueError, match="not a campaign store"):
            ArtifactStore.open(bogus)

    def test_wal_mode_is_active(self, store_path):
        with ArtifactStore.open(store_path) as store:
            mode = store._conn.execute(
                "PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"


class TestSchemaVersioning:
    def test_version_mismatch_raises_clear_error(self, store_path):
        conn = sqlite3.connect(store_path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = ?",
                (str(STORE_SCHEMA_VERSION + 1), "store_schema_version"))
        conn.close()
        with pytest.raises(ValueError) as excinfo:
            ArtifactStore.open(store_path)
        message = str(excinfo.value)
        assert str(STORE_SCHEMA_VERSION + 1) in message
        assert f"reads version {STORE_SCHEMA_VERSION}" in message

    def test_missing_version_entry_raises(self, store_path):
        conn = sqlite3.connect(store_path)
        with conn:
            conn.execute("DELETE FROM meta WHERE key = ?",
                         ("store_schema_version",))
        conn.close()
        with pytest.raises(ValueError, match="store_schema_version"):
            ArtifactStore.open(store_path)


def _record_rows(store_path, indices):
    """Worker: mark + record a result row for each index (own handle)."""
    with ArtifactStore.open(store_path) as store:
        for index in indices:
            store.mark_running(index)
            store.record_result(
                index, {"workload": "monitor", "shard": index},
                elapsed_s=0.001)


class TestConcurrentWriters:
    def test_two_processes_interleave_without_corruption(self,
                                                         store_path):
        """Disjoint halves written from two live processes at once."""
        n = 8
        context = get_context("fork")
        workers = [
            context.Process(target=_record_rows,
                            args=(store_path, list(range(half, n, 2))))
            for half in (0, 1)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        conn = sqlite3.connect(store_path)
        assert conn.execute(
            "PRAGMA integrity_check").fetchone()[0] == "ok"
        conn.close()
        with ArtifactStore.open(store_path) as store:
            assert store.counts()["done"] == n
            rows = store.export_rows()
        assert [row["result"]["shard"] for row in rows] == list(range(n))

    def test_readonly_reader_sees_live_writes(self, store_path):
        writer = ArtifactStore.open(store_path)
        reader = ArtifactStore.open(store_path, readonly=True)
        writer.mark_running(0)
        writer.record_result(0, {"workload": "monitor"}, elapsed_s=0.1)
        assert reader.counts()["done"] == 1
        with pytest.raises(sqlite3.OperationalError):
            reader.mark_running(1)  # read-only handles cannot write
        writer.close()
        reader.close()


class TestExport:
    def test_export_matches_scenario_cli_artifact(self, monitor_base,
                                                  tmp_path, capsys):
        """A stored shard row is the scenario CLI's own summary_row."""
        spec = CampaignSpec(name="pair", base=monitor_base,
                            n_shards=2, seed=7)
        store_path = tmp_path / "pair.sqlite"
        run_campaign(spec, store_path, workers=1)
        with ArtifactStore.open(store_path) as store:
            row = store.export_rows()[0]

        # Replay the same resolved shard through python -m repro run.
        scenario_file = tmp_path / "shard0.json"
        Scenario.from_dict(row["scenario"]).save(scenario_file)
        artifact_file = tmp_path / "shard0.out.json"
        rc = scenario_cli_main(["run", str(scenario_file),
                                "--out", str(artifact_file)])
        capsys.readouterr()
        assert rc == 0
        artifact = json.loads(artifact_file.read_text())
        assert artifact["scenario"] == row["scenario"]
        # to_dict() is summary_row() plus trace extras, so the stored
        # row must be an exact sub-mapping of the CLI result export.
        assert row["result"].items() <= artifact["result"].items()

    def test_export_excludes_wall_clock_fields(self, store_path):
        with ArtifactStore.open(store_path) as store:
            store.mark_running(0)
            store.record_result(0, {"workload": "monitor"},
                                elapsed_s=123.0)
            text = store.export_json()
        assert "elapsed" not in text
        payload = json.loads(text)
        assert set(payload) == {"store_schema_version", "spec_hash",
                                "campaign", "shards"}

    def test_failure_rows_round_trip(self, store_path):
        with ArtifactStore.open(store_path) as store:
            store.record_failure(2, "KeyError: 'no such sensor'")
            rows = store.export_rows()
            assert store.counts()["failed"] == 1
        assert rows[2]["status"] == "failed"
        assert rows[2]["error"] == "KeyError: 'no such sensor'"
        assert rows[2]["result"] is None
