"""CampaignSpec: property-based round trips and seed-spawning laws.

The Hypothesis suites pin the two contracts campaigns rest on:

* serialization is lossless — ``from_dict(to_dict())`` /
  ``from_json(to_json())`` rebuild an equal spec for *any* valid
  campaign, not just the examples we thought of;
* shard seeding is position-stable — shard ``i``'s seed depends only
  on ``(campaign seed, i)``, never on ``n_shards``, access order or
  worker count, which is what makes resumed campaigns bit-identical.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import SCHEMA_VERSION, CampaignSpec
from repro.scenarios import Scenario

# JSON-clean scalar values a workload spec mapping might carry.
_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)

_spec_mappings = st.dictionaries(
    st.text(min_size=1, max_size=10), _json_scalars, max_size=4)

_base_scenarios = st.builds(
    Scenario,
    workload=st.sampled_from(
        ["calibration", "monitor", "therapy", "estimation"]),
    name=st.text(min_size=1, max_size=16),
    spec=_spec_mappings,
    description=st.text(max_size=16),
)

_campaigns = st.builds(
    CampaignSpec,
    name=st.text(min_size=1, max_size=16),
    base=_base_scenarios,
    n_shards=st.integers(min_value=1, max_value=128),
    seed=st.integers(min_value=0, max_value=2**63 - 1),
    description=st.text(max_size=16),
)


class TestRoundTrip:
    @given(spec=_campaigns)
    @settings(max_examples=60)
    def test_dict_round_trip_is_lossless(self, spec):
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    @given(spec=_campaigns)
    @settings(max_examples=60)
    def test_json_round_trip_is_lossless(self, spec):
        assert CampaignSpec.from_json(spec.to_json()) == spec

    @given(spec=_campaigns)
    @settings(max_examples=30)
    def test_spec_hash_is_stable_and_content_addressed(self, spec):
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt.spec_hash() == spec.spec_hash()
        bumped = CampaignSpec(
            name=spec.name, base=spec.base, n_shards=spec.n_shards,
            seed=spec.seed + 1, description=spec.description)
        assert bumped.spec_hash() != spec.spec_hash()

    def test_file_round_trip(self, small_campaign, tmp_path):
        path = small_campaign.save(tmp_path / "fleet.json")
        assert CampaignSpec.load(path) == small_campaign


class TestShardSeeding:
    @given(seed=st.integers(min_value=0, max_value=2**63 - 1),
           n_small=st.integers(min_value=1, max_value=48),
           n_large=st.integers(min_value=1, max_value=48))
    @settings(max_examples=40)
    def test_seeds_are_a_stable_prefix(self, monitor_base, seed,
                                       n_small, n_large):
        """Growing a campaign never changes existing shards' seeds."""
        if n_small > n_large:
            n_small, n_large = n_large, n_small
        small = CampaignSpec(name="c", base=monitor_base,
                             n_shards=n_small, seed=seed)
        large = CampaignSpec(name="c", base=monitor_base,
                             n_shards=n_large, seed=seed)
        assert small.shard_seeds() == large.shard_seeds()[:n_small]

    @given(seed=st.integers(min_value=0, max_value=2**63 - 1),
           order=st.permutations(list(range(12))))
    @settings(max_examples=25)
    def test_shard_lookup_is_order_independent(self, monitor_base,
                                               seed, order):
        """shard(i) equals shards()[i] regardless of access order."""
        spec = CampaignSpec(name="c", base=monitor_base,
                            n_shards=12, seed=seed)
        expanded = spec.shards()
        for index in order:
            assert spec.shard(index) == expanded[index]

    def test_shards_are_resolved_named_scenarios(self, small_campaign):
        shards = small_campaign.shards()
        assert len(shards) == small_campaign.n_shards
        assert [s.name for s in shards] == [
            f"fleet/{i:05d}" for i in range(small_campaign.n_shards)]
        seeds = [s.seed for s in shards]
        assert all(isinstance(seed, int) for seed in seeds)
        assert len(set(seeds)) == len(seeds), "shard seeds collide"

    def test_shard_index_out_of_range(self, small_campaign):
        with pytest.raises(ValueError, match="out of range"):
            small_campaign.shard(small_campaign.n_shards)
        with pytest.raises(ValueError, match="out of range"):
            small_campaign.shard(-1)


class TestValidation:
    def test_seeded_base_is_rejected(self, monitor_base):
        with pytest.raises(ValueError, match="unseeded"):
            CampaignSpec(name="c", base=monitor_base.with_seed(3),
                         n_shards=4, seed=1)

    @pytest.mark.parametrize("n_shards", [0, -1, 2.0, True, "8"])
    def test_bad_n_shards_rejected(self, monitor_base, n_shards):
        with pytest.raises(ValueError, match="n_shards"):
            CampaignSpec(name="c", base=monitor_base,
                         n_shards=n_shards, seed=1)

    @pytest.mark.parametrize("seed", [-1, 1.5, True, None, "7"])
    def test_bad_seed_rejected(self, monitor_base, seed):
        with pytest.raises(ValueError, match="seed"):
            CampaignSpec(name="c", base=monitor_base,
                         n_shards=4, seed=seed)

    def test_base_must_be_scenario(self):
        with pytest.raises(ValueError, match="Scenario"):
            CampaignSpec(name="c", base={"workload": "monitor"},
                         n_shards=4, seed=1)

    def test_unknown_envelope_keys_rejected(self, small_campaign):
        data = small_campaign.to_dict()
        data["shards"] = []
        with pytest.raises(ValueError, match="unknown campaign keys"):
            CampaignSpec.from_dict(data)

    def test_schema_version_mismatch_rejected(self, small_campaign):
        data = small_campaign.to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            CampaignSpec.from_dict(data)

    def test_missing_fields_rejected(self, small_campaign):
        data = small_campaign.to_dict()
        del data["base"], data["seed"]
        with pytest.raises(ValueError, match="missing"):
            CampaignSpec.from_dict(data)
