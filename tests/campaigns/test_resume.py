"""The headline crash drill: SIGKILL a live campaign, resume, compare.

A campaign process (whole process group — workers included) is killed
mid-shard with ``SIGKILL``, the hardest failure the runner promises to
survive: no handlers run, no transactions finish, no cleanup happens.
Resuming from the store must complete the campaign and export **byte
for byte** what an uninterrupted run exports — the resumability
guarantee the whole subsystem exists for.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaigns import ArtifactStore, resume_campaign, run_campaign
from repro.campaigns.runner import THROTTLE_ENV

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Per-shard delay for the subprocess run: long enough that the kill
#: reliably lands mid-campaign, short enough to keep the test quick.
_THROTTLE_S = 0.25


def _campaign_env() -> dict:
    """Subprocess env: importable repro + throttled shards."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env[THROTTLE_ENV] = str(_THROTTLE_S)
    return env


def _counts(store_path: Path) -> dict:
    """Current per-status counts, polling-safe (read-only handle)."""
    with ArtifactStore.open(store_path, readonly=True) as store:
        return store.counts()


def _export(store_path: Path) -> str:
    with ArtifactStore.open(store_path) as store:
        return store.export_json()


def kill_campaign_mid_run(spec_file: Path, store_path: Path,
                          workers: int, min_done: int = 2,
                          timeout_s: float = 90.0) -> dict:
    """Start a campaign subprocess and SIGKILL its process group once
    at least ``min_done`` shards are on disk.  Returns the post-kill
    counts (asserting the campaign really was interrupted)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         str(spec_file), "--store", str(store_path),
         "--workers", str(workers)],
        env=_campaign_env(), cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        start_new_session=True)
    try:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if process.poll() is not None:
                pytest.fail("campaign finished before the kill landed; "
                            "raise the throttle")
            if store_path.exists():
                try:
                    if _counts(store_path)["done"] >= min_done:
                        break
                except ValueError:
                    pass  # store file mid-creation
            time.sleep(0.02)
        else:
            pytest.fail("campaign never reached the kill point")
    finally:
        # Kill the whole group: the runner parent AND its pool workers
        # die instantly, exactly like a machine crash.
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass  # already gone (only on the fail paths above)
        process.wait()
    # Give WAL a beat in case the OS is still flushing the dead
    # process's last committed frames, then read the wreckage.
    time.sleep(0.1)
    counts = _counts(store_path)
    assert counts["done"] >= min_done
    assert counts["done"] + counts["failed"] < sum(counts.values()), \
        "campaign completed despite the kill"
    return counts


class TestKillResume:
    def test_sigkilled_campaign_resumes_byte_identical(
            self, small_campaign, reference_export, tmp_path):
        """The PR's headline gate, single-worker subprocess."""
        spec_file = small_campaign.save(tmp_path / "fleet.json")
        store_path = tmp_path / "killed.sqlite"
        kill_campaign_mid_run(spec_file, store_path, workers=1)

        report = resume_campaign(store_path, workers=1)
        assert report.counts["done"] == small_campaign.n_shards
        assert report.counts["failed"] == 0
        assert 0 < report.n_executed <= small_campaign.n_shards
        assert _export(store_path) == reference_export

    def test_sigkilled_pool_campaign_resumes_byte_identical(
            self, small_campaign, reference_export, tmp_path):
        """Same drill with a worker pool: group kill takes down the
        parent and both workers mid-shard."""
        spec_file = small_campaign.save(tmp_path / "fleet.json")
        store_path = tmp_path / "killed-pool.sqlite"
        kill_campaign_mid_run(spec_file, store_path, workers=2)

        report = resume_campaign(store_path, workers=2)
        assert report.counts["done"] == small_campaign.n_shards
        assert _export(store_path) == reference_export


class TestResumeSemantics:
    def test_resume_skips_done_and_requeues_running(self, small_campaign,
                                                    reference_export,
                                                    tmp_path):
        """In-process model of a crash: some shards done, one left
        ``running`` (its worker died), the rest pending."""
        from repro.campaigns import execute_shard

        store_path = tmp_path / "partial.sqlite"
        ArtifactStore.create(store_path, small_campaign).close()
        for index in (0, 1, 2):
            execute_shard(store_path, index)
        with ArtifactStore.open(store_path) as store:
            store.mark_running(3)  # the shard the "crash" interrupted

        report = resume_campaign(store_path, workers=1)
        # Only the five unfinished shards ran; 0-2 were never re-run.
        assert report.n_executed == 5
        assert _export(store_path) == reference_export

    def test_resume_of_finished_store_is_a_no_op(self, small_campaign,
                                                 tmp_path):
        store_path = tmp_path / "done.sqlite"
        run_campaign(small_campaign, store_path, workers=1)
        before = _export(store_path)
        report = resume_campaign(store_path, workers=1)
        assert report.n_executed == 0
        assert report.counts["done"] == small_campaign.n_shards
        assert _export(store_path) == before
