"""Shard retry: failed shards re-queue with backoff, then settle.

``CampaignSpec.max_retries`` re-queues shards whose execution raised.
These tests register a deliberately flaky workload (fails its first N
attempts per shard, succeeding afterwards) to prove that transient
failures heal, permanent failures exhaust the budget and stay
``failed``, the default fails fast, and every re-queue leaves a
``queued`` telemetry event carrying the retry round and backoff.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.campaigns import ArtifactStore, CampaignSpec, run_campaign
from repro.campaigns.runner import RETRY_BASE_ENV, _retry_backoff_s
from repro.scenarios import Scenario
from repro.scenarios.protocols import WORKLOADS, register_workload


class _FlakyResult:
    """Minimal ResultProtocol carrier for the flaky workload."""

    def __init__(self, attempts: int) -> None:
        self.attempts = attempts

    def summary(self) -> str:
        return f"flaky: succeeded on attempt {self.attempts}"

    def summary_row(self) -> dict:
        return {"attempts": self.attempts}

    def to_dict(self, include_traces: bool = False) -> dict:
        return {"attempts": self.attempts}


class _FlakyWorkload:
    """Fails each shard's first ``fail_attempts`` runs, then succeeds.

    Attempt counts persist as marker files under the spec's
    ``marker_dir``, keyed by the shard seed — exactly the shape of an
    environmental failure (fails now, succeeds on retry) while staying
    fully in-process.
    """

    name = "flaky-retry-test"
    plan_type = dict

    def build_plan(self, spec, seed):
        return {"marker_dir": spec["marker_dir"],
                "fail_attempts": spec.get("fail_attempts", 1),
                "seed": seed}

    def run(self, plan):
        marker = Path(plan["marker_dir"]) / f"seed-{plan['seed']}"
        attempts = int(marker.read_text()) if marker.exists() else 0
        marker.write_text(str(attempts + 1))
        if attempts < plan["fail_attempts"]:
            raise RuntimeError(
                f"transient failure on attempt {attempts + 1}")
        return _FlakyResult(attempts + 1)

    def run_scalar(self, plan):
        return self.run(plan)

    def summarize(self, result):
        return result.summary()

    def describe(self) -> str:
        return "test-only flaky workload"

    def example_spec(self) -> dict:
        return {"marker_dir": "/tmp", "fail_attempts": 1}


@pytest.fixture
def flaky_workload(monkeypatch):
    """Register the flaky workload and retry instantly (no backoff)."""
    monkeypatch.setenv(RETRY_BASE_ENV, "0")
    register_workload(_FlakyWorkload())
    yield _FlakyWorkload.name
    WORKLOADS.pop(_FlakyWorkload.name, None)


def _flaky_spec(name, tmp_path, *, fail_attempts, max_retries,
                n_shards=4):
    base = Scenario(
        workload=_FlakyWorkload.name, name="flaky",
        spec={"marker_dir": str(tmp_path / "markers"),
              "fail_attempts": fail_attempts})
    (tmp_path / "markers").mkdir(exist_ok=True)
    return CampaignSpec(name=name, base=base, n_shards=n_shards,
                        seed=7, max_retries=max_retries)


class TestRetryHealsTransientFailures:
    def test_all_shards_done_after_one_retry(self, flaky_workload,
                                             tmp_path):
        """Each shard fails once; one retry round drives all to done."""
        spec = _flaky_spec("heal", tmp_path, fail_attempts=1,
                           max_retries=2)
        report = run_campaign(spec, tmp_path / "c.sqlite", workers=1)
        assert report.counts == {"pending": 0, "running": 0,
                                 "done": 4, "failed": 0}
        # every shard executed twice: the failed round plus the retry
        assert report.n_executed == 8

    def test_retry_events_carry_round_and_backoff(self, flaky_workload,
                                                  tmp_path):
        """Re-queues land in the telemetry table as 'queued' events."""
        spec = _flaky_spec("audit", tmp_path, fail_attempts=1,
                           max_retries=1, n_shards=2)
        run_campaign(spec, tmp_path / "c.sqlite", workers=1)
        with ArtifactStore.open(tmp_path / "c.sqlite") as store:
            # initial expansion also queues (payload None); the retry
            # re-queues are the ones carrying a payload
            events = [e for e in store.telemetry_events()
                      if e["event"] == "queued"
                      and e["payload"] is not None]
        assert len(events) == 2
        for event in events:
            assert event["payload"]["retry"] == 1
            assert event["payload"]["backoff_s"] == 0.0

    def test_deeper_flakiness_needs_more_rounds(self, flaky_workload,
                                                tmp_path):
        """Shards failing twice heal only with max_retries >= 2."""
        spec = _flaky_spec("deep", tmp_path, fail_attempts=2,
                           max_retries=2, n_shards=2)
        report = run_campaign(spec, tmp_path / "c.sqlite", workers=1)
        assert report.counts["done"] == 2
        assert report.counts["failed"] == 0


class TestRetryBudgetExhaustion:
    def test_permanent_failure_stays_failed(self, flaky_workload,
                                            tmp_path):
        """A shard that always raises exhausts the budget as failed."""
        spec = _flaky_spec("doomed", tmp_path, fail_attempts=99,
                           max_retries=2, n_shards=2)
        report = run_campaign(spec, tmp_path / "c.sqlite", workers=1)
        assert report.counts["failed"] == 2
        assert report.counts["done"] == 0
        # initial round + exactly max_retries re-runs, then give up
        assert report.n_executed == 2 * 3

    def test_default_fails_fast(self, flaky_workload, tmp_path):
        """max_retries=0 (the default) never re-runs a failed shard."""
        spec = _flaky_spec("fast", tmp_path, fail_attempts=1,
                           max_retries=0, n_shards=2)
        report = run_campaign(spec, tmp_path / "c.sqlite", workers=1)
        assert report.counts["failed"] == 2
        assert report.n_executed == 2
        with ArtifactStore.open(tmp_path / "c.sqlite") as store:
            events = [e for e in store.telemetry_events()
                      if e["event"] == "queued"
                      and e["payload"] is not None]
        assert events == []


class TestRetrySpecSurface:
    def test_spec_roundtrip_carries_max_retries(self, monitor_base):
        spec = CampaignSpec(name="r", base=monitor_base, n_shards=2,
                            seed=1, max_retries=3)
        again = CampaignSpec.from_json(spec.to_json())
        assert again.max_retries == 3
        assert again == spec

    def test_max_retries_defaults_to_zero(self, monitor_base):
        spec = CampaignSpec(name="r", base=monitor_base, n_shards=2,
                            seed=1)
        assert spec.max_retries == 0
        assert CampaignSpec.from_dict(spec.to_dict()).max_retries == 0

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "2"])
    def test_invalid_max_retries_rejected(self, monitor_base, bad):
        with pytest.raises(ValueError, match="max_retries"):
            CampaignSpec(name="r", base=monitor_base, n_shards=2,
                         seed=1, max_retries=bad)


class TestBackoffShape:
    def test_exponential_with_bounded_jitter(self, monkeypatch):
        """Round r centers on base * 2**(r-1), jittered within 50 %."""
        monkeypatch.setenv(RETRY_BASE_ENV, "0.5")
        for round_index, center in ((1, 0.5), (2, 1.0), (3, 2.0)):
            samples = [_retry_backoff_s(round_index) for _ in range(32)]
            assert all(0.5 * center <= s < 1.5 * center
                       for s in samples)

    def test_zero_base_disables_waiting(self, monkeypatch):
        monkeypatch.setenv(RETRY_BASE_ENV, "0")
        assert _retry_backoff_s(3) == 0.0
