"""Shared campaign fixtures: tiny-but-real shard workloads.

Every fixture scenario runs the full engine path in a few
milliseconds, so campaign tests exercise real multi-process execution
without slow suites.  ``reference_export`` builds the uninterrupted
ground-truth export the crash/resume tests compare against.
"""

from __future__ import annotations

import pytest

from repro.campaigns import ArtifactStore, CampaignSpec, run_campaign
from repro.scenarios import Scenario


@pytest.fixture(scope="session")
def monitor_base() -> Scenario:
    """A ~3 ms two-patient, six-hour glucose wear scenario (unseeded)."""
    return Scenario(
        workload="monitor", name="wear",
        spec={"cohort": {"sensor": "glucose/this-work",
                         "analyte": "glucose", "n_patients": 2},
              "duration_h": 6.0, "sample_period_s": 300.0,
              "keep_traces": False})


@pytest.fixture(scope="session")
def small_campaign(monitor_base) -> CampaignSpec:
    """An eight-shard monitor campaign — small, fast, fully seeded."""
    return CampaignSpec(name="fleet", base=monitor_base,
                        n_shards=8, seed=2012)


@pytest.fixture(scope="session")
def reference_export(small_campaign, tmp_path_factory) -> str:
    """Canonical export of `small_campaign` run uninterrupted, in-process."""
    store_path = tmp_path_factory.mktemp("reference") / "ref.sqlite"
    run_campaign(small_campaign, store_path, workers=1)
    with ArtifactStore.open(store_path) as store:
        return store.export_json()
