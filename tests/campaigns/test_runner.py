"""Campaign runner: every workload shards; workers never change results.

``run_campaign`` must produce the identical store content whether
shards run in-process or across a worker pool, for every registered
workload — the per-shard seeds are position-stable and each shard's
scenario is fully resolved, so parallelism is pure mechanism.
"""

from __future__ import annotations

import pytest

from repro.campaigns import (
    ArtifactStore,
    CampaignSpec,
    execute_shard,
    run_campaign,
)
from repro.scenarios import Scenario, run_scenario

#: One tiny-but-real base scenario per registered workload.
WORKLOAD_BASES = {
    "calibration": Scenario(
        workload="calibration", name="calib",
        spec={"sensors": ["glucose/this-work"],
              "n_blanks": 2, "n_replicates": 2}),
    "monitor": Scenario(
        workload="monitor", name="wear",
        spec={"cohort": {"sensor": "glucose/this-work",
                         "analyte": "glucose", "n_patients": 2},
              "duration_h": 6.0, "sample_period_s": 300.0,
              "keep_traces": False}),
    "therapy": Scenario(
        workload="therapy", name="course",
        spec={"drug": "cyclosporine", "n_patients": 2, "cohort_seed": 7,
              "controller": {"kind": "fixed", "dose_mg": 200.0},
              "n_doses": 2, "sample_period_s": 1800.0,
              "keep_traces": False}),
    "estimation": Scenario(
        workload="estimation", name="reconstruct",
        spec={"cohort": {"sensor": "glucose/this-work",
                         "analyte": "glucose", "n_patients": 2},
              "duration_h": 6.0, "sample_period_s": 600.0}),
}


class TestEveryWorkloadShards:
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_BASES))
    def test_campaign_rows_match_direct_scenario_runs(self, workload,
                                                      tmp_path):
        """Stored rows equal run_scenario(...)'s own summary_row."""
        spec = CampaignSpec(name=f"{workload}-fleet",
                            base=WORKLOAD_BASES[workload],
                            n_shards=3, seed=99)
        report = run_campaign(spec, tmp_path / "c.sqlite", workers=1)
        assert report.counts == {"pending": 0, "running": 0,
                                 "done": 3, "failed": 0}
        assert report.n_executed == 3
        with ArtifactStore.open(tmp_path / "c.sqlite") as store:
            rows = store.export_rows()
        for index, row in enumerate(rows):
            shard = spec.shard(index)
            assert row["scenario"] == shard.to_dict()
            assert row["result"] == run_scenario(shard).summary_row()


class TestWorkerInvariance:
    def test_two_workers_export_identically(self, small_campaign,
                                            reference_export,
                                            tmp_path):
        run_campaign(small_campaign, tmp_path / "mw.sqlite", workers=2)
        with ArtifactStore.open(tmp_path / "mw.sqlite") as store:
            assert store.export_json() == reference_export

    def test_bad_worker_count_rejected(self, small_campaign, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(small_campaign, tmp_path / "c.sqlite",
                         workers=0)


class TestFailureIsolation:
    def test_bad_shard_is_recorded_not_raised(self, tmp_path):
        """A shard whose plan cannot build fails as data, not a crash."""
        base = Scenario(
            workload="monitor", name="broken",
            spec={"cohort": {"sensor": "no-such/sensor",
                             "analyte": "glucose", "n_patients": 2},
                  "duration_h": 6.0})
        spec = CampaignSpec(name="doomed", base=base, n_shards=2, seed=1)
        report = run_campaign(spec, tmp_path / "d.sqlite", workers=1)
        assert report.counts["failed"] == 2
        assert report.counts["done"] == 0
        with ArtifactStore.open(tmp_path / "d.sqlite") as store:
            rows = store.export_rows()
        assert all(row["status"] == "failed" for row in rows)
        assert all("no-such/sensor" in row["error"] for row in rows)

    def test_execute_shard_reports_final_status(self, small_campaign,
                                                tmp_path):
        path = tmp_path / "one.sqlite"
        ArtifactStore.create(path, small_campaign).close()
        assert execute_shard(path, 5) == (5, "done")
        with ArtifactStore.open(path) as store:
            assert store.counts()["done"] == 1
            assert store.pending_indices() == (0, 1, 2, 3, 4, 6, 7)
