"""The ``python -m repro campaign`` surface, driven in-process.

Covers the four subcommands end to end — run, status, resume, export —
plus the usage-error paths (missing store, pre-existing store), which
must exit 2 with a message instead of a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import ArtifactStore
from repro.scenarios.cli import main


@pytest.fixture()
def spec_file(small_campaign, tmp_path):
    """The small campaign saved as a CLI-consumable JSON file."""
    return small_campaign.save(tmp_path / "fleet.json")


class TestRun:
    def test_run_executes_all_shards(self, spec_file, small_campaign,
                                     tmp_path, capsys):
        store = tmp_path / "fleet.sqlite"
        rc = main(["campaign", "run", str(spec_file),
                   "--store", str(store), "--workers", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"ran {small_campaign.n_shards} of " \
               f"{small_campaign.n_shards} shards" in out
        with ArtifactStore.open(store) as opened:
            assert opened.counts()["done"] == small_campaign.n_shards

    def test_run_refuses_existing_store(self, spec_file, tmp_path,
                                        capsys):
        store = tmp_path / "fleet.sqlite"
        assert main(["campaign", "run", str(spec_file),
                     "--store", str(store)]) == 0
        capsys.readouterr()
        rc = main(["campaign", "run", str(spec_file),
                   "--store", str(store)])
        assert rc == 2
        assert "resume" in capsys.readouterr().out

    def test_run_missing_spec_file(self, tmp_path, capsys):
        rc = main(["campaign", "run", str(tmp_path / "nope.json"),
                   "--store", str(tmp_path / "s.sqlite")])
        assert rc == 2
        capsys.readouterr()


class TestStatusExportResume:
    @pytest.fixture()
    def finished_store(self, spec_file, tmp_path, capsys):
        store = tmp_path / "fleet.sqlite"
        main(["campaign", "run", str(spec_file), "--store", str(store)])
        capsys.readouterr()
        return store

    def test_status_reports_counts(self, finished_store, capsys):
        assert main(["campaign", "status", str(finished_store)]) == 0
        out = capsys.readouterr().out
        assert "done: 8" in out
        assert "progress: 8/8" in out

    def test_export_to_file_and_stdout_agree(self, finished_store,
                                             tmp_path, capsys):
        out_file = tmp_path / "rows.json"
        assert main(["campaign", "export", str(finished_store),
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["campaign", "export", str(finished_store)]) == 0
        stdout_text = capsys.readouterr().out
        assert stdout_text == out_file.read_text()
        payload = json.loads(stdout_text)
        assert len(payload["shards"]) == 8
        assert all(row["status"] == "done" for row in payload["shards"])

    def test_resume_finished_store_is_no_op(self, finished_store,
                                            capsys):
        assert main(["campaign", "resume", str(finished_store)]) == 0
        assert "ran 0 of 8 shards" in capsys.readouterr().out

    def test_status_missing_store_exits_2(self, tmp_path, capsys):
        rc = main(["campaign", "status",
                   str(tmp_path / "missing.sqlite")])
        assert rc == 2
        assert "no campaign store" in capsys.readouterr().out

    def test_help_lists_campaign_command(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("run", "status", "resume", "export"):
            assert command in out
