"""Tests for repro.system.blocks and repro.system.composition."""

import pytest

from repro.system.blocks import (
    BlockKind,
    STANDARD_BLOCKS,
    SystemBlock,
    block_by_name,
)
from repro.system.composition import (
    CompositionError,
    PlatformDesign,
    reference_biosensor_node,
)


class TestBlockLibrary:
    def test_paper_block_list_present(self):
        """Section 1: power source, transducer circuitry, control unit,
        wireless communication."""
        kinds = {block.kind for block in STANDARD_BLOCKS}
        assert BlockKind.POWER in kinds
        assert BlockKind.ANALOG_FRONT_END in kinds
        assert BlockKind.DIGITAL_CONTROL in kinds
        assert BlockKind.RF in kinds
        assert BlockKind.SENSOR in kinds

    def test_sensor_does_not_scale(self):
        sensor = block_by_name("cnt electrode array")
        assert sensor.scaling_exponent == 0.0

    def test_digital_scales_quadratically(self):
        control = block_by_name("control mcu + dsp")
        assert control.scaling_exponent == pytest.approx(2.0)

    def test_analog_scales_weakly(self):
        afe = block_by_name("potentiostat + tia front-end")
        assert 0.0 < afe.scaling_exponent < 1.0

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="available"):
            block_by_name("quantum flux capacitor")

    def test_block_validation(self):
        with pytest.raises(ValueError):
            SystemBlock("bad", BlockKind.ADC, 0.0, 1.0, True)


class TestComposition:
    def test_reference_node_is_valid(self):
        design = reference_biosensor_node()
        assert design.total_area_mm2 () > 0
        assert design.total_power_mw() <= design.power_budget_mw

    def test_analog_dominates_biosensing_soc(self):
        """The quantitative root of the heterogeneous-integration
        argument: most of a biosensing SoC is analog."""
        design = reference_biosensor_node()
        assert design.analog_fraction() > 0.5

    def test_missing_required_block_rejected(self):
        blocks = tuple(b for b in STANDARD_BLOCKS
                       if b.kind is not BlockKind.POWER)
        with pytest.raises(CompositionError, match="power"):
            PlatformDesign(name="no-power", blocks=blocks)

    def test_unsatisfied_interface_rejected(self):
        # ADC alone requires analog_voltage and supply nobody provides.
        blocks = tuple(b for b in STANDARD_BLOCKS
                       if b.kind in (BlockKind.SENSOR, BlockKind.ADC,
                                     BlockKind.ANALOG_FRONT_END,
                                     BlockKind.DIGITAL_CONTROL,
                                     BlockKind.POWER))
        # This set is closed; removing the AFE breaks electrode_current.
        broken = tuple(b for b in blocks
                       if b.kind is not BlockKind.ANALOG_FRONT_END)
        with pytest.raises(CompositionError):
            PlatformDesign(name="broken", blocks=broken)

    def test_power_budget_enforced(self):
        with pytest.raises(CompositionError, match="exceeds"):
            reference_biosensor_node(power_budget_mw=1.0)

    def test_radio_optional(self):
        with_radio = reference_biosensor_node(with_radio=True)
        without = reference_biosensor_node(with_radio=False)
        assert without.total_power_mw() < with_radio.total_power_mw()

    def test_summary_accounts_blocks(self):
        design = reference_biosensor_node()
        summary = design.summary()
        assert "total:" in summary
        for block in design.blocks:
            assert block.name in summary
