"""Tests for scaling trends, the 3-D stack and the NRE model."""

import pytest

from repro.system.blocks import STANDARD_BLOCKS, block_by_name
from repro.system.nre import (
    amortized_unit_cost_usd,
    design_cost_usd,
    mask_set_cost_usd,
    nre_cost_usd,
    platform_vs_custom_crossover,
)
from repro.system.scaling import (
    best_node_for_block,
    homogeneous_vs_heterogeneous,
    scaled_area_mm2,
    scaled_power_mw,
)
from repro.system.stack3d import (
    StackLayer,
    ThreeDStack,
    guiducci_stack,
    tsv_parasitic_capacitance_ff,
)


class TestScaling:
    def test_digital_shrinks_quadratically(self):
        control = block_by_name("control mcu + dsp")
        at_180 = scaled_area_mm2(control, 180.0)
        at_90 = scaled_area_mm2(control, 90.0)
        assert at_90 == pytest.approx(at_180 / 4.0)

    def test_sensor_never_shrinks(self):
        sensor = block_by_name("cnt electrode array")
        assert scaled_area_mm2(sensor, 40.0) \
            == pytest.approx(scaled_area_mm2(sensor, 350.0))

    def test_analog_shrinks_slower_than_digital(self):
        afe = block_by_name("potentiostat + tia front-end")
        control = block_by_name("control mcu + dsp")
        afe_gain = scaled_area_mm2(afe, 180.0) / scaled_area_mm2(afe, 90.0)
        dig_gain = (scaled_area_mm2(control, 180.0)
                    / scaled_area_mm2(control, 90.0))
        assert dig_gain > afe_gain

    def test_analog_power_barely_scales(self):
        afe = block_by_name("potentiostat + tia front-end")
        assert scaled_power_mw(afe, 40.0) > 0.7 * scaled_power_mw(afe, 180.0)

    def test_digital_prefers_advanced_nodes(self):
        control = block_by_name("control mcu + dsp")
        assert best_node_for_block(control) <= 90.0

    def test_sensor_prefers_mature_nodes(self):
        sensor = block_by_name("cnt electrode array")
        assert best_node_for_block(sensor) == 350.0

    def test_heterogeneous_wins(self):
        """The paper's section 1 claim: heterogeneous technologies beat a
        single-node SoC for biosensing systems."""
        comparison = homogeneous_vs_heterogeneous(STANDARD_BLOCKS)
        assert comparison["saving_ratio"] > 1.0


class TestThreeDStack:
    def test_guiducci_stack_feasible(self):
        assert guiducci_stack().is_feasible()

    def test_disposable_biolayer_on_top(self):
        stack = guiducci_stack()
        disposables = stack.disposable_layers()
        assert len(disposables) == 1
        assert disposables[0].name == "disposable biolayer"

    def test_permanent_layers_carry_electronics(self):
        stack = guiducci_stack()
        names = {layer.name for layer in stack.permanent_layers()}
        assert "analog readout tier" in names
        assert "rf tier" in names

    def test_replacement_fraction_below_half(self):
        # The point of the split: most area persists across uses.
        assert guiducci_stack().replacement_cost_fraction() < 0.5

    def test_thickness_sums_layers_and_bonds(self):
        stack = guiducci_stack()
        dies = sum(layer.thickness_um for layer in stack.layers)
        assert stack.total_thickness_um(bond_um=10.0) \
            == pytest.approx(dies + 30.0)

    def test_tsv_budget_counts_signals(self):
        stack = guiducci_stack()
        assert stack.total_tsvs() == 40

    def test_infeasible_when_tsvs_explode(self):
        sensor = block_by_name("cnt electrode array")
        afe = block_by_name("potentiostat + tia front-end")
        layers = (
            StackLayer("bio", (sensor,), 350.0, disposable=True,
                       signals_down=100_000),
            StackLayer("readout", (afe,), 180.0),
        )
        stack = ThreeDStack(layers=layers, tsv_pitch_um=100.0,
                            tsv_diameter_um=20.0)
        assert not stack.is_feasible()

    def test_needs_two_layers(self):
        sensor = block_by_name("cnt electrode array")
        with pytest.raises(ValueError, match="two layers"):
            ThreeDStack(layers=(StackLayer("solo", (sensor,), 350.0),))

    def test_tsv_capacitance_tens_of_ff(self):
        assert 5.0 < tsv_parasitic_capacitance_ff() < 200.0


class TestNre:
    def test_mask_costs_rise_with_node(self):
        assert mask_set_cost_usd(40.0) > mask_set_cost_usd(180.0)

    def test_reuse_discount_cuts_design_cost(self):
        kinds = ["adc", "analog front-end"]
        full = design_cost_usd(kinds, reuse_discount=0.0)
        reused = design_cost_usd(kinds, reuse_discount=0.7)
        assert reused == pytest.approx(0.3 * full)

    def test_nre_sums_design_and_masks(self):
        kinds = ["adc"]
        assert nre_cost_usd(kinds, 180.0) == pytest.approx(
            design_cost_usd(kinds) + mask_set_cost_usd(180.0))

    def test_amortization(self):
        assert amortized_unit_cost_usd(1e6, 100_000, 2.0) \
            == pytest.approx(12.0)

    def test_platform_crossover_small(self):
        """The paper's NRE argument: a platform pays off after a handful
        of derivative products."""
        kinds = [b.kind.value for b in STANDARD_BLOCKS]
        result = platform_vs_custom_crossover(kinds, 180.0)
        assert 2 <= result["crossover_products"] <= 10

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError, match="available"):
            mask_set_cost_usd(28.0)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="available"):
            design_cost_usd(["flux capacitor"])
