"""Tests for repro.system.energy."""

import pytest

from repro.system.composition import reference_biosensor_node
from repro.system.energy import EnergyBudget


@pytest.fixture()
def budget():
    return EnergyBudget(design=reference_biosensor_node())


class TestEnergyPerMeasurement:
    def test_includes_active_and_radio(self, budget):
        active = budget.design.total_power_mw() * budget.measurement_duration_s
        expected = active + budget.radio_energy_per_report_mj
        assert budget.energy_per_measurement_mj() == pytest.approx(expected)

    def test_radio_free_node_cheaper(self):
        with_radio = EnergyBudget(design=reference_biosensor_node())
        without = EnergyBudget(design=reference_biosensor_node(
            with_radio=False), radio_energy_per_report_mj=0.0)
        assert without.energy_per_measurement_mj() \
            < with_radio.energy_per_measurement_mj()


class TestAveragePower:
    def test_idle_node_sits_at_standby(self, budget):
        assert budget.average_power_mw(0.0) \
            == pytest.approx(budget.standby_power_mw)

    def test_power_grows_with_rate(self, budget):
        assert budget.average_power_mw(4.0) > budget.average_power_mw(1.0)

    def test_duty_cycling_wins_big(self, budget):
        """Hourly panels cost orders of magnitude less than always-on —
        the whole point of duty-cycled biosensing nodes."""
        always_on = budget.design.total_power_mw()
        hourly = budget.average_power_mw(1.0)
        assert hourly < always_on / 10.0


class TestBatteryLife:
    def test_hourly_monitoring_runs_for_weeks(self, budget):
        # A 100 mAh coin cell at one panel per hour.
        days = budget.battery_life_days(100.0, 1.0)
        assert days > 14.0

    def test_life_scales_with_capacity(self, budget):
        d1 = budget.battery_life_days(50.0, 1.0)
        d2 = budget.battery_life_days(100.0, 1.0)
        assert d2 == pytest.approx(2 * d1)

    def test_more_measurements_shorter_life(self, budget):
        assert budget.battery_life_days(100.0, 12.0) \
            < budget.battery_life_days(100.0, 1.0)

    def test_max_rate_meets_target(self, budget):
        rate = budget.max_measurement_rate_per_hour(100.0, target_days=30.0)
        assert rate > 0
        achieved = budget.battery_life_days(100.0, rate)
        assert achieved == pytest.approx(30.0, rel=1e-6)

    def test_impossible_target_gives_zero_rate(self, budget):
        assert budget.max_measurement_rate_per_hour(1.0, 10_000.0) == 0.0

    def test_rejects_bad_inputs(self, budget):
        with pytest.raises(ValueError):
            budget.battery_life_days(0.0, 1.0)
        with pytest.raises(ValueError):
            budget.max_measurement_rate_per_hour(100.0, 0.0)
