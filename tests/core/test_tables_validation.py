"""Tests for repro.core.tables and repro.core.validation."""

import pytest

from repro.core.registry import TABLE1_SPECS, spec_by_id
from repro.core.tables import format_table2_row, render_table1, table1_rows
from repro.core.validation import (
    ranking_matches,
    relative_error,
    winner,
    within_factor,
)


class TestTable1:
    def test_seven_rows(self):
        assert len(table1_rows(TABLE1_SPECS)) == 7

    def test_glucose_row(self):
        rows = table1_rows(TABLE1_SPECS)
        assert ("GLUCOSE", "GOD", "Chronoamperometry") in rows

    def test_cp_row_uses_cv(self):
        rows = table1_rows(TABLE1_SPECS)
        assert ("CYCLOPHOSPHAMIDE", "CYP2B6", "Cyclic voltammetry") in rows

    def test_render_contains_header(self):
        text = render_table1(TABLE1_SPECS)
        assert "Table 1" in text
        assert "Technique" in text


class TestTable2Formatting:
    def test_row_without_result(self):
        line = format_table2_row(spec_by_id("glucose/this-work"))
        assert "55.500" in line
        assert "measured" not in line

    def test_unreported_lod_shown_as_dash(self):
        line = format_table2_row(spec_by_id("glucose/ryu2010"))
        assert "LOD -" in line


class TestValidationHelpers:
    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_relative_error_rejects_zero_expected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_within_factor(self):
        assert within_factor(55.0, 55.5, 1.5)
        assert within_factor(30.0, 55.5, 2.0)
        assert not within_factor(10.0, 55.5, 2.0)

    def test_within_factor_symmetric(self):
        assert within_factor(2.0, 1.0, 2.0)
        assert within_factor(0.5, 1.0, 2.0)

    def test_within_factor_validates(self):
        with pytest.raises(ValueError):
            within_factor(-1.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            within_factor(1.0, 1.0, 0.5)

    def test_ranking_matches(self):
        values = {"aa": 1140.0, "ft": 883.0, "ifo": 160.0, "cp": 102.0}
        assert ranking_matches(values, ["aa", "ft", "ifo", "cp"])
        assert not ranking_matches(values, ["ft", "aa", "ifo", "cp"])

    def test_ranking_requires_same_keys(self):
        with pytest.raises(ValueError):
            ranking_matches({"a": 1.0}, ["a", "b"])

    def test_winner(self):
        assert winner({"a": 1.0, "b": 3.0}) == "b"
        with pytest.raises(ValueError):
            winner({})
