"""Tests for the multiplexed (shared-readout) platform mode."""

import numpy as np
import pytest

from repro.core.platform import reference_metabolite_platform
from repro.instrument.multiplexer import ChannelMultiplexer
from repro.units import molar_from_millimolar


def calibrated_platform(multiplexer=None):
    platform = reference_metabolite_platform()
    platform.multiplexer = multiplexer
    uppers = {0: molar_from_millimolar(1.0),
              1: molar_from_millimolar(1.0),
              2: molar_from_millimolar(2.0)}
    platform.calibrate(np.random.default_rng(21),
                       upper_molar_by_channel=uppers)
    return platform


class TestMultiplexedPanel:
    def test_good_isolation_preserves_estimates(self):
        clean = calibrated_platform(None)
        muxed = calibrated_platform(ChannelMultiplexer(off_isolation=1e-6))
        truth = {"glucose": 0.5e-3, "lactate": 0.4e-3, "glutamate": 0.8e-3}
        clean_est = clean.measure_sample(truth, np.random.default_rng(4))
        muxed_est = muxed.measure_sample(truth, np.random.default_rng(4))
        for analyte in truth:
            assert muxed_est[analyte] == pytest.approx(clean_est[analyte],
                                                       rel=0.02)

    def test_poor_isolation_biases_weak_channel(self):
        """A glutamate channel (tiny currents) next to a strong glucose
        channel picks up leakage when isolation is poor."""
        muxed = calibrated_platform(ChannelMultiplexer(off_isolation=5e-2))
        truth = {"glucose": 0.9e-3, "lactate": 0.9e-3, "glutamate": 0.0}
        estimates = muxed.measure_sample(truth, np.random.default_rng(4))
        # The blank glutamate channel reads a phantom concentration.
        assert estimates["glutamate"] > 50e-6

    def test_panel_duration_counts_channels(self):
        muxed = calibrated_platform(ChannelMultiplexer(settling_time_s=0.5))
        assert muxed.panel_duration_s(20.0) == pytest.approx(3 * 20.5)

    def test_panel_duration_requires_multiplexer(self):
        clean = calibrated_platform(None)
        with pytest.raises(RuntimeError, match="multiplexer"):
            clean.panel_duration_s()
