"""Tests for repro.core.calibration."""

import numpy as np
import pytest

from repro.core.calibration import (
    CalibrationError,
    CalibrationProtocol,
    default_protocol_for_range,
    run_calibration,
)


class TestProtocol:
    def test_default_protocol_spans_range(self):
        protocol = default_protocol_for_range(1e-3)
        assert min(protocol.concentrations_molar) == pytest.approx(1e-4)
        assert max(protocol.concentrations_molar) == pytest.approx(1.6e-3)

    def test_rejects_descending_standards(self):
        with pytest.raises(ValueError):
            CalibrationProtocol(concentrations_molar=(2e-3, 1e-3, 3e-3))

    def test_rejects_too_few_standards(self):
        with pytest.raises(ValueError):
            CalibrationProtocol(concentrations_molar=(1e-3, 2e-3))

    def test_rejects_single_blank(self):
        with pytest.raises(ValueError):
            CalibrationProtocol(concentrations_molar=(1e-3, 2e-3, 3e-3),
                                n_blanks=1)


class TestGlucoseCalibration:
    @pytest.fixture(scope="class")
    def result(self, glucose_sensor):
        protocol = default_protocol_for_range(1e-3)
        return run_calibration(glucose_sensor, protocol,
                               np.random.default_rng(42))

    def test_sensitivity_matches_paper(self, result):
        assert result.sensitivity_paper == pytest.approx(55.5, rel=0.05)

    def test_linear_range_matches_paper(self, result):
        assert result.linear_range_molar[1] == pytest.approx(1e-3, rel=0.3)

    def test_lod_matches_paper(self, result):
        assert result.lod_molar == pytest.approx(2e-6, rel=0.6)

    def test_loq_is_ten_thirds_lod(self, result):
        assert result.loq_molar == pytest.approx(result.lod_molar * 10 / 3)

    def test_fit_quality(self, result):
        assert result.r_squared > 0.995

    def test_summary_contains_units(self, result):
        text = result.summary()
        assert "uA mM^-1 cm^-2" in text
        assert "LOD" in text

    def test_points_are_recorded(self, result):
        assert len(result.points) == 9
        concentrations = [p.concentration_molar for p in result.points]
        assert concentrations == sorted(concentrations)

    def test_saturating_points_excluded(self, result):
        # Standards at 1.25x and 1.6x the range must not be in the fit.
        assert result.n_linear_points <= 7


class TestCalibrationFailureModes:
    def test_dead_sensor_raises(self, glucose_sensor):
        """A sensor whose signal never rises produces a CalibrationError,
        not silent garbage."""
        from dataclasses import replace
        dead_layer = replace(glucose_sensor.layer,
                             coverage_mol_m2=1e-30)
        dead = replace(glucose_sensor, layer=dead_layer,
                       repeatability_std_a=1e-9)
        protocol = default_protocol_for_range(1e-3)
        with pytest.raises(CalibrationError):
            run_calibration(dead, protocol, np.random.default_rng(0))

    def test_reproducible_given_seed(self, glucose_sensor):
        protocol = default_protocol_for_range(1e-3)
        r1 = run_calibration(glucose_sensor, protocol,
                             np.random.default_rng(5))
        r2 = run_calibration(glucose_sensor, protocol,
                             np.random.default_rng(5))
        assert r1.sensitivity_paper == r2.sensitivity_paper
        assert r1.lod_molar == r2.lod_molar
