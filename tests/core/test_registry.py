"""Tests for repro.core.registry."""

import pytest

from repro.core.registry import (
    TABLE1_SPECS,
    TABLE2_SPECS,
    build_sensor,
    spec_by_id,
    specs_by_group,
)
from repro.core.sensor import ReadoutMode


class TestSpecTable:
    def test_eighteen_table2_rows(self):
        assert len(TABLE2_SPECS) == 18

    def test_seven_this_work_sensors(self):
        assert len(TABLE1_SPECS) == 7

    def test_group_sizes_match_paper(self):
        assert len(specs_by_group("glucose")) == 5
        assert len(specs_by_group("lactate")) == 5
        assert len(specs_by_group("glutamate")) == 4
        assert len(specs_by_group("cyp")) == 4

    def test_unique_sensor_ids(self):
        ids = [spec.sensor_id for spec in TABLE2_SPECS]
        assert len(set(ids)) == len(ids)

    def test_unknown_group_raises(self):
        with pytest.raises(KeyError, match="available"):
            specs_by_group("cholesterol")

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="available"):
            spec_by_id("glucose/nonexistent")


class TestPaperValues:
    """Spot-check Table 2 values against the paper text."""

    @pytest.mark.parametrize("sensor_id, sensitivity, upper_mm, lod_um", [
        ("glucose/this-work", 55.5, 1.0, 2.0),
        ("glucose/wang2003", 14.2, 13.0, 10.0),
        ("lactate/goran2011", 40.0, 0.325, 4.0),
        ("lactate/this-work", 25.0, 1.0, 11.0),
        ("glutamate/ammam2010", 384.0, 0.14, 0.3),
        ("glutamate/this-work", 0.9, 2.0, 78.0),
        ("cyp/arachidonic-acid", 1140.0, 0.04, 0.4),
        ("cyp/cyclophosphamide", 102.0, 0.07, 2.0),
        ("cyp/ifosfamide", 160.0, 0.14, 2.0),
        ("cyp/ftorafur", 883.0, 0.008, 0.7),
    ])
    def test_row(self, sensor_id, sensitivity, upper_mm, lod_um):
        spec = spec_by_id(sensor_id)
        assert spec.paper_sensitivity == pytest.approx(sensitivity)
        assert spec.paper_range_mm[1] == pytest.approx(upper_mm)
        assert spec.assumed_lod_um == pytest.approx(lod_um)

    def test_ryu_lod_assumed(self):
        spec = spec_by_id("glucose/ryu2010")
        assert spec.paper_lod_um is None
        assert spec.assumed_lod_um > 0

    def test_cyp_rows_use_cv(self):
        for spec in specs_by_group("cyp"):
            assert spec.technique == "CV"
            assert spec.electrode == "spe"

    def test_oxidase_rows_use_ca(self):
        for group in ("glucose", "lactate", "glutamate"):
            for spec in specs_by_group(group):
                assert spec.technique == "CA"

    def test_this_work_metabolites_on_microchip(self):
        for group in ("glucose", "lactate", "glutamate"):
            this_work = [s for s in specs_by_group(group) if s.is_this_work]
            assert len(this_work) == 1
            assert this_work[0].electrode == "microchip"


class TestBuildSensor:
    def test_builds_every_spec(self):
        # Every row of Table 2 must produce a runnable sensor.
        for spec in TABLE2_SPECS:
            sensor = build_sensor(spec, gain_trim=False)
            assert sensor.area_m2 > 0
            assert sensor.layer.coverage_mol_m2 > 0

    def test_readout_mode_follows_technique(self, glucose_sensor, cp_sensor):
        assert glucose_sensor.readout is ReadoutMode.AMPEROMETRIC_STEADY_STATE
        assert cp_sensor.readout is ReadoutMode.VOLTAMMETRIC_PEAK

    def test_km_inversion(self, glucose_sensor):
        # Range 0-1 mM at 10 % tolerance -> Km_app = 9 mM.
        assert glucose_sensor.layer.apparent_km == pytest.approx(9e-3)

    def test_repeatability_encodes_lod(self, glucose_sensor):
        # repeatability = LOD * slope / 3.
        from repro.units import sensitivity_si_from_paper
        slope = sensitivity_si_from_paper(55.5) * glucose_sensor.area_m2
        assert glucose_sensor.repeatability_std_a \
            == pytest.approx(2e-6 * slope / 3.0, rel=1e-6)

    def test_coverage_physically_plausible(self):
        # All inverted coverages within 0.1 pmol/cm^2 .. 10 nmol/cm^2.
        for spec in TABLE2_SPECS:
            sensor = build_sensor(spec, gain_trim=False)
            pmol_cm2 = sensor.layer.coverage_mol_m2 * 1e12 / 1e4
            assert 0.01 < pmol_cm2 < 1e4, spec.sensor_id

    def test_gain_trim_adjusts_coverage(self):
        spec = spec_by_id("cyp/cyclophosphamide")
        raw = build_sensor(spec, gain_trim=False)
        trimmed = build_sensor(spec, gain_trim=True)
        # Voltammetric peak extraction recovers only part of the plateau;
        # the trim must compensate by raising the coverage.
        assert trimmed.layer.coverage_mol_m2 > raw.layer.coverage_mol_m2
