"""Tests for repro.core.platform (multi-target chip)."""

import numpy as np
import pytest

from repro.core.platform import (
    MultiTargetPlatform,
    reference_metabolite_platform,
)
from repro.core.registry import spec_by_id
from repro.units import molar_from_millimolar


@pytest.fixture(scope="module")
def calibrated_platform():
    platform = reference_metabolite_platform()
    uppers = {0: molar_from_millimolar(1.0),
              1: molar_from_millimolar(1.0),
              2: molar_from_millimolar(2.0)}
    platform.calibrate(np.random.default_rng(21),
                       upper_molar_by_channel=uppers)
    return platform


class TestConstruction:
    def test_reference_platform_channels(self):
        platform = reference_metabolite_platform()
        assert platform.analytes == {0: "glucose", 1: "lactate",
                                     2: "glutamate"}

    def test_rejects_duplicate_channel(self):
        platform = reference_metabolite_platform()
        from repro.core.registry import build_sensor
        with pytest.raises(ValueError, match="already hosts"):
            platform.add_channel(0, build_sensor(spec_by_id("glucose/this-work")))

    def test_rejects_off_chip_channel(self):
        platform = MultiTargetPlatform()
        from repro.core.registry import build_sensor
        with pytest.raises(ValueError, match="channel"):
            platform.add_channel(7, build_sensor(spec_by_id("glucose/this-work")))

    def test_too_many_specs_rejected(self):
        specs = [spec_by_id("glucose/this-work")] * 6
        with pytest.raises(ValueError, match="channels"):
            MultiTargetPlatform.from_specs(specs)


class TestCalibration:
    def test_calibrates_every_channel(self, calibrated_platform):
        assert set(calibrated_platform.calibrations) == {0, 1, 2}

    def test_channel_sensitivities_match_paper(self, calibrated_platform):
        sensitivities = {
            ch: result.sensitivity_paper
            for ch, result in calibrated_platform.calibrations.items()}
        assert sensitivities[0] == pytest.approx(55.5, rel=0.1)   # glucose
        assert sensitivities[1] == pytest.approx(25.0, rel=0.1)   # lactate
        assert sensitivities[2] == pytest.approx(0.9, rel=0.15)   # glutamate


class TestSampleMeasurement:
    def test_recovers_known_sample(self, calibrated_platform):
        truth = {"glucose": 0.5e-3, "lactate": 0.4e-3, "glutamate": 0.8e-3}
        estimates = calibrated_platform.measure_sample(
            truth, np.random.default_rng(4))
        for analyte, true_level in truth.items():
            assert estimates[analyte] == pytest.approx(true_level, rel=0.15)

    def test_absent_analyte_reads_near_zero(self, calibrated_platform):
        estimates = calibrated_platform.measure_sample(
            {"glucose": 0.5e-3}, np.random.default_rng(4))
        assert estimates["lactate"] < 0.05e-3

    def test_requires_calibration(self):
        platform = reference_metabolite_platform()
        with pytest.raises(RuntimeError, match="calibrated"):
            platform.measure_sample({"glucose": 1e-3})


class TestMonitoring:
    def test_tracks_profiles(self, calibrated_platform):
        hours = np.linspace(0.0, 4.0, 5)
        profiles = {
            "glucose": np.linspace(0.8e-3, 0.2e-3, 5),   # consumption
            "lactate": np.linspace(0.1e-3, 0.6e-3, 5),   # production
            "glutamate": np.full(5, 0.5e-3),
        }
        estimates = calibrated_platform.monitor(
            hours, profiles, np.random.default_rng(8))
        # Trends recovered: glucose falls, lactate rises.
        assert estimates["glucose"][-1] < estimates["glucose"][0]
        assert estimates["lactate"][-1] > estimates["lactate"][0]

    def test_rejects_mismatched_profiles(self, calibrated_platform):
        with pytest.raises(ValueError, match="timeline"):
            calibrated_platform.monitor(
                np.linspace(0, 1, 3), {"glucose": np.zeros(5)})
