"""Tests for repro.core.sensor."""

import pytest

from repro.core.sensor import ReadoutMode


class TestComposition:
    def test_glucose_sensor_composition(self, glucose_sensor):
        assert glucose_sensor.analyte.name == "glucose"
        assert glucose_sensor.layer.enzyme.abbreviation == "GOD"
        assert glucose_sensor.readout is ReadoutMode.AMPEROMETRIC_STEADY_STATE
        assert glucose_sensor.film.has_nanotubes

    def test_cp_sensor_composition(self, cp_sensor):
        assert cp_sensor.analyte.name == "cyclophosphamide"
        assert cp_sensor.layer.enzyme.abbreviation == "CYP2B6"
        assert cp_sensor.readout is ReadoutMode.VOLTAMMETRIC_PEAK

    def test_glucose_on_microchip_area(self, glucose_sensor):
        assert glucose_sensor.area_m2 == pytest.approx(2.5e-7)

    def test_cp_on_spe_area(self, cp_sensor):
        assert cp_sensor.area_m2 == pytest.approx(1.3e-5)

    def test_describe_mentions_composition(self, glucose_sensor):
        text = glucose_sensor.describe()
        assert "glucose" in text
        assert "MWCNT" in text


class TestResponseModel:
    def test_steady_state_monotonic(self, glucose_sensor):
        i1 = glucose_sensor.steady_state_current(0.1e-3)
        i2 = glucose_sensor.steady_state_current(0.5e-3)
        assert i2 > i1

    def test_expected_sensitivity_near_paper_value(self, glucose_sensor):
        # Gain trim targets the *regression* slope over the linear range;
        # the analytic initial slope therefore sits ~10 % above 55.5
        # (Michaelis-Menten curvature biases range-wide regressions low).
        assert glucose_sensor.expected_sensitivity_paper() \
            == pytest.approx(55.5, rel=0.17)

    def test_linear_range_upper_from_km(self, glucose_sensor):
        assert glucose_sensor.linear_range_upper_molar(0.1) \
            == pytest.approx(1e-3, rel=0.02)

    def test_expected_lod_near_paper(self, glucose_sensor):
        assert glucose_sensor.expected_lod_molar() \
            == pytest.approx(2e-6, rel=0.3)

    def test_double_layer_includes_film_enhancement(self, glucose_sensor):
        enhanced = glucose_sensor.double_layer().capacitance_per_area
        bare = glucose_sensor.cell.bare_double_layer().capacitance_per_area
        assert enhanced == pytest.approx(
            bare * glucose_sensor.film.capacitance_enhancement())

    def test_detected_couple_is_h2o2_for_oxidase(self, glucose_sensor):
        assert glucose_sensor.detected_couple().name == "hydrogen_peroxide"

    def test_detected_couple_is_heme_for_cyp(self, cp_sensor):
        assert cp_sensor.detected_couple().name == "cyp_heme"

    def test_film_boosts_detected_couple_kinetics(self, glucose_sensor):
        from repro.chem.species import HYDROGEN_PEROXIDE
        assert glucose_sensor.detected_couple().k0 > HYDROGEN_PEROXIDE.k0
