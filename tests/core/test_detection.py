"""Tests for repro.core.detection."""

import numpy as np
import pytest

from repro.core.detection import (
    estimate_concentration,
    measure_amperometric_point,
    measure_point,
    measure_voltammetric_point,
)


class TestAmperometricPoint:
    def test_noiseless_point_matches_steady_state(self, glucose_sensor):
        value = measure_amperometric_point(glucose_sensor, 0.5e-3,
                                           add_noise=False)
        expected = glucose_sensor.steady_state_current(0.5e-3)
        assert value == pytest.approx(expected, rel=2e-2)

    def test_monotonic_in_concentration(self, glucose_sensor):
        low = measure_amperometric_point(glucose_sensor, 0.1e-3,
                                         add_noise=False)
        high = measure_amperometric_point(glucose_sensor, 0.8e-3,
                                          add_noise=False)
        assert high > low

    def test_noise_scatter_matches_repeatability(self, glucose_sensor):
        rng = np.random.default_rng(3)
        values = [measure_amperometric_point(glucose_sensor, 0.0, rng)
                  for __ in range(40)]
        assert np.std(values) == pytest.approx(
            glucose_sensor.repeatability_std_a, rel=0.5)

    def test_rejects_negative_concentration(self, glucose_sensor):
        with pytest.raises(ValueError):
            measure_amperometric_point(glucose_sensor, -1e-3)


class TestVoltammetricPoint:
    def test_peak_grows_with_drug(self, cp_sensor):
        blank = measure_voltammetric_point(cp_sensor, 0.0, add_noise=False)
        dosed = measure_voltammetric_point(cp_sensor, 30e-6, add_noise=False)
        assert dosed > blank

    def test_linearity_in_low_range(self, cp_sensor):
        blank = measure_voltammetric_point(cp_sensor, 0.0, add_noise=False)
        p1 = measure_voltammetric_point(cp_sensor, 5e-6, add_noise=False)
        p2 = measure_voltammetric_point(cp_sensor, 10e-6, add_noise=False)
        assert (p2 - blank) == pytest.approx(2 * (p1 - blank), rel=0.1)

    def test_dispatch_by_readout_mode(self, glucose_sensor, cp_sensor):
        amp = measure_point(glucose_sensor, 0.1e-3, add_noise=False)
        volt = measure_point(cp_sensor, 10e-6, add_noise=False)
        assert amp > 0
        assert volt > 0

    def test_reproducible_with_seed(self, cp_sensor):
        a = measure_voltammetric_point(cp_sensor, 10e-6,
                                       np.random.default_rng(9))
        b = measure_voltammetric_point(cp_sensor, 10e-6,
                                       np.random.default_rng(9))
        assert a == b


class TestConcentrationEstimate:
    def test_inverts_linear_calibration(self):
        assert estimate_concentration(1e-6, 1e-3, 0.0) == pytest.approx(1e-3)

    def test_intercept_subtracted(self):
        assert estimate_concentration(1.5e-6, 1e-3, 0.5e-6) \
            == pytest.approx(1e-3)

    def test_clips_negative_to_zero(self):
        assert estimate_concentration(-1e-9, 1e-3, 0.0) == 0.0

    def test_rejects_bad_slope(self):
        with pytest.raises(ValueError):
            estimate_concentration(1e-6, 0.0)
