"""Tests for repro.core.selectivity (the abstract's selectivity claim)."""

import pytest

from repro.core.registry import build_sensor, spec_by_id
from repro.core.selectivity import (
    cross_reactivity_factor,
    response_to_analyte,
    selectivity_matrix,
    worst_cross_talk,
)


@pytest.fixture(scope="module")
def metabolite_sensors(glucose_sensor, glutamate_sensor):
    lactate = build_sensor(spec_by_id("lactate/this-work"))
    return {
        "glucose": glucose_sensor,
        "lactate": lactate,
        "glutamate": glutamate_sensor,
    }


class TestCrossReactivityTable:
    def test_cognate_is_unity(self):
        assert cross_reactivity_factor("GOD", "glucose") == 1.0
        assert cross_reactivity_factor("CYP2B6", "cyclophosphamide") == 1.0

    def test_oxidases_ignore_foreign_metabolites(self):
        assert cross_reactivity_factor("GOD", "lactate") == 0.0
        assert cross_reactivity_factor("LOD", "glucose") < 0.01

    def test_cyp_isoforms_overlap_more_than_oxidases(self):
        cyp_worst = cross_reactivity_factor("CYP2B6", "ifosfamide")
        oxidase_worst = cross_reactivity_factor("LOD", "glucose")
        assert cyp_worst > oxidase_worst

    def test_unknown_enzyme_raises(self):
        with pytest.raises(KeyError, match="available"):
            cross_reactivity_factor("XYZ", "glucose")


class TestResponses:
    def test_cognate_response_positive(self, glucose_sensor):
        blank = response_to_analyte(glucose_sensor, "glucose", 0.0)
        dosed = response_to_analyte(glucose_sensor, "glucose", 5e-4)
        assert dosed > blank

    def test_foreign_analyte_gives_blank_response(self, glucose_sensor):
        blank = response_to_analyte(glucose_sensor, "glucose", 0.0)
        foreign = response_to_analyte(glucose_sensor, "lactate", 5e-4)
        assert foreign == pytest.approx(blank, rel=1e-6)

    def test_rejects_negative_concentration(self, glucose_sensor):
        with pytest.raises(ValueError):
            response_to_analyte(glucose_sensor, "glucose", -1e-3)


class TestSelectivityMatrix:
    @pytest.fixture(scope="class")
    def matrix(self, metabolite_sensors):
        return selectivity_matrix(metabolite_sensors,
                                  test_concentration_molar=2e-4)

    def test_diagonal_is_unity(self, matrix):
        for i, row in enumerate(matrix["rows"].values()):
            assert row[i] == pytest.approx(1.0, rel=1e-6)

    def test_off_diagonal_below_one_percent(self, matrix):
        """The abstract's selectivity claim, quantified: metabolite
        channels cross-talk below 1 %."""
        assert worst_cross_talk(matrix) < 0.01

    def test_columns_match_channel_analytes(self, matrix):
        assert matrix["analytes"] == ["glucose", "lactate", "glutamate"]

    def test_empty_panel_rejected(self):
        with pytest.raises(ValueError):
            selectivity_matrix({})
