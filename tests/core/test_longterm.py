"""Tests for repro.core.longterm (drift budget and recalibration)."""

import numpy as np
import pytest

from repro.bio.matrix import BUFFER, SERUM
from repro.core.longterm import (
    DriftBudget,
    drift_corrected_estimate,
    drift_corrected_estimate_batch,
    one_point_recalibration,
    one_point_recalibration_batch,
)
from repro.enzymes.stability import EnzymeStability

WEEK_S = 7 * 24 * 3600.0


@pytest.fixture()
def budget():
    return DriftBudget(
        stability=EnzymeStability(half_life_s=2 * WEEK_S),
        matrix=SERUM,
    )


class TestDriftBudget:
    def test_full_sensitivity_at_zero(self, budget):
        assert budget.sensitivity_retention(0.0) == pytest.approx(1.0)

    def test_retention_decays(self, budget):
        day = budget.sensitivity_retention(24.0)
        week = budget.sensitivity_retention(7 * 24.0)
        assert 0.0 < week < day < 1.0

    def test_serum_decays_faster_than_buffer(self, budget):
        clean = DriftBudget(stability=budget.stability, matrix=BUFFER,
                            temperature_k=budget.temperature_k)
        assert clean.sensitivity_retention(48.0) \
            > budget.sensitivity_retention(48.0)

    def test_body_temperature_decays_faster_than_room(self, budget):
        cool = DriftBudget(stability=budget.stability, matrix=SERUM,
                           temperature_k=298.15)
        assert cool.sensitivity_retention(48.0) \
            > budget.sensitivity_retention(48.0)

    def test_hours_to_error_consistent(self, budget):
        deadline = budget.hours_to_error(0.1)
        assert budget.sensitivity_retention(deadline) \
            == pytest.approx(0.9, rel=1e-2)

    def test_schedule_spacing(self, budget):
        times = budget.recalibration_schedule(
            horizon_hours=7 * 24.0, max_relative_error=0.1)
        assert len(times) >= 2
        intervals = [b - a for a, b in zip(times, times[1:])]
        assert all(i == pytest.approx(intervals[0]) for i in intervals)

    def test_stable_sensor_needs_no_recalibration(self):
        budget = DriftBudget(
            stability=EnzymeStability(half_life_s=1e12),
            matrix=BUFFER)
        assert budget.recalibration_schedule(1000.0, 0.1) == []

    def test_rejects_bad_error_limit(self, budget):
        with pytest.raises(ValueError):
            budget.hours_to_error(0.0)


class TestRecalibration:
    def test_one_point_recovers_true_slope(self):
        true_slope = 1.4e-4
        signal = true_slope * 0.5e-3 + 1e-9
        corrected = one_point_recalibration(
            slope_a_per_molar=2e-4,  # stale calibration
            reference_concentration_molar=0.5e-3,
            measured_signal_a=signal,
            intercept_a=1e-9)
        assert corrected == pytest.approx(true_slope, rel=1e-9)

    def test_rejects_dead_reference_measurement(self):
        with pytest.raises(ValueError, match="non-positive"):
            one_point_recalibration(1e-4, 0.5e-3, measured_signal_a=0.0,
                                    intercept_a=1e-6)

    def test_drift_corrected_estimate_debiases(self):
        slope, retention, true_c = 1e-4, 0.8, 1e-3
        signal = slope * retention * true_c
        naive = signal / slope
        corrected = drift_corrected_estimate(signal, slope, 0.0, retention)
        assert naive < true_c
        assert corrected == pytest.approx(true_c, rel=1e-9)

    def test_correction_clips_negative(self):
        assert drift_corrected_estimate(-1e-9, 1e-4, 0.0, 0.9) == 0.0

    def test_rejects_bad_retention(self):
        with pytest.raises(ValueError):
            drift_corrected_estimate(1e-9, 1e-4, 0.0, 0.0)


class TestBatchKernels:
    """Scalar-vs-batch equivalence: the scalar API is the contract, the
    batch kernels are what the streaming monitor actually runs."""

    def test_retention_batch_matches_scalar(self, budget):
        hours = np.array([[0.0, 12.0, 48.0], [6.0, 24.0, 168.0]])
        batch = budget.sensitivity_retention_batch(hours)
        for row in range(hours.shape[0]):
            for col in range(hours.shape[1]):
                assert batch[row, col] == pytest.approx(
                    budget.sensitivity_retention(float(hours[row, col])),
                    rel=1e-12)

    def test_decay_rate_consistent_with_hours_to_error(self, budget):
        assert budget.hours_to_error(0.1) == pytest.approx(
            -np.log(0.9) / budget.decay_rate_per_hour)

    def test_one_point_batch_matches_scalar(self):
        slopes = np.array([2e-4, 1e-4, 3e-4])
        references = np.array([0.5e-3, 1e-3, 0.2e-3])
        signals = np.array([1.4e-4 * 0.5e-3, 0.9e-4 * 1e-3, 2.5e-4 * 0.2e-3])
        batch, applied = one_point_recalibration_batch(
            slopes, references, signals)
        assert applied.all()
        for i in range(slopes.size):
            assert batch[i] == pytest.approx(one_point_recalibration(
                float(slopes[i]), float(references[i]), float(signals[i])),
                rel=1e-12)

    def test_one_point_batch_keeps_slope_on_dead_channel(self):
        slopes = np.array([2e-4, 1e-4])
        batch, applied = one_point_recalibration_batch(
            slopes, np.array([0.5e-3, 0.5e-3]),
            np.array([1.4e-4 * 0.5e-3, 0.0]),
            intercepts_a=np.array([0.0, 1e-6]))
        assert applied.tolist() == [True, False]
        assert batch[1] == slopes[1]

    def test_one_point_batch_validation(self):
        with pytest.raises(ValueError):
            one_point_recalibration_batch(
                np.array([-1.0]), np.array([1e-3]), np.array([1e-7]))
        with pytest.raises(ValueError):
            one_point_recalibration_batch(
                np.array([1e-4]), np.array([0.0]), np.array([1e-7]))

    def test_drift_corrected_batch_matches_scalar(self):
        signals = np.array([[1e-7, 2e-7], [3e-7, 4e-7]])
        slopes = np.array([1e-4, 2e-4])
        intercepts = np.array([0.0, 1e-9])
        retentions = np.array([[1.0, 0.9], [0.8, 0.7]])
        batch = drift_corrected_estimate_batch(
            signals, slopes, intercepts, retentions)
        for i in range(2):
            for j in range(2):
                assert batch[i, j] == pytest.approx(
                    drift_corrected_estimate(
                        float(signals[i, j]), float(slopes[i]),
                        float(intercepts[i]), float(retentions[i, j])),
                    rel=1e-12)

    def test_drift_corrected_batch_clips_negative(self):
        batch = drift_corrected_estimate_batch(
            np.array([[-1e-9]]), np.array([1e-4]), 0.0, np.array([[0.9]]))
        assert batch[0, 0] == 0.0

    def test_drift_corrected_batch_rejects_bad_retention(self):
        with pytest.raises(ValueError):
            drift_corrected_estimate_batch(
                np.array([[1e-9]]), np.array([1e-4]), 0.0,
                np.array([[1.5]]))
