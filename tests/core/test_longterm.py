"""Tests for repro.core.longterm (drift budget and recalibration)."""

import pytest

from repro.bio.matrix import BUFFER, SERUM
from repro.core.longterm import (
    DriftBudget,
    drift_corrected_estimate,
    one_point_recalibration,
)
from repro.enzymes.stability import EnzymeStability

WEEK_S = 7 * 24 * 3600.0


@pytest.fixture()
def budget():
    return DriftBudget(
        stability=EnzymeStability(half_life_s=2 * WEEK_S),
        matrix=SERUM,
    )


class TestDriftBudget:
    def test_full_sensitivity_at_zero(self, budget):
        assert budget.sensitivity_retention(0.0) == pytest.approx(1.0)

    def test_retention_decays(self, budget):
        day = budget.sensitivity_retention(24.0)
        week = budget.sensitivity_retention(7 * 24.0)
        assert 0.0 < week < day < 1.0

    def test_serum_decays_faster_than_buffer(self, budget):
        clean = DriftBudget(stability=budget.stability, matrix=BUFFER,
                            temperature_k=budget.temperature_k)
        assert clean.sensitivity_retention(48.0) \
            > budget.sensitivity_retention(48.0)

    def test_body_temperature_decays_faster_than_room(self, budget):
        cool = DriftBudget(stability=budget.stability, matrix=SERUM,
                           temperature_k=298.15)
        assert cool.sensitivity_retention(48.0) \
            > budget.sensitivity_retention(48.0)

    def test_hours_to_error_consistent(self, budget):
        deadline = budget.hours_to_error(0.1)
        assert budget.sensitivity_retention(deadline) \
            == pytest.approx(0.9, rel=1e-2)

    def test_schedule_spacing(self, budget):
        times = budget.recalibration_schedule(
            horizon_hours=7 * 24.0, max_relative_error=0.1)
        assert len(times) >= 2
        intervals = [b - a for a, b in zip(times, times[1:])]
        assert all(i == pytest.approx(intervals[0]) for i in intervals)

    def test_stable_sensor_needs_no_recalibration(self):
        budget = DriftBudget(
            stability=EnzymeStability(half_life_s=1e12),
            matrix=BUFFER)
        assert budget.recalibration_schedule(1000.0, 0.1) == []

    def test_rejects_bad_error_limit(self, budget):
        with pytest.raises(ValueError):
            budget.hours_to_error(0.0)


class TestRecalibration:
    def test_one_point_recovers_true_slope(self):
        true_slope = 1.4e-4
        signal = true_slope * 0.5e-3 + 1e-9
        corrected = one_point_recalibration(
            slope_a_per_molar=2e-4,  # stale calibration
            reference_concentration_molar=0.5e-3,
            measured_signal_a=signal,
            intercept_a=1e-9)
        assert corrected == pytest.approx(true_slope, rel=1e-9)

    def test_rejects_dead_reference_measurement(self):
        with pytest.raises(ValueError, match="non-positive"):
            one_point_recalibration(1e-4, 0.5e-3, measured_signal_a=0.0,
                                    intercept_a=1e-6)

    def test_drift_corrected_estimate_debiases(self):
        slope, retention, true_c = 1e-4, 0.8, 1e-3
        signal = slope * retention * true_c
        naive = signal / slope
        corrected = drift_corrected_estimate(signal, slope, 0.0, retention)
        assert naive < true_c
        assert corrected == pytest.approx(true_c, rel=1e-9)

    def test_correction_clips_negative(self):
        assert drift_corrected_estimate(-1e-9, 1e-4, 0.0, 0.9) == 0.0

    def test_rejects_bad_retention(self):
        with pytest.raises(ValueError):
            drift_corrected_estimate(1e-9, 1e-4, 0.0, 0.0)
