"""Snapshot wire format: suspend at k, serialize, restore, finish.

Covers the :mod:`repro.engine.core.snapshot` primitives (array / rng
codecs, envelope validation, ``.json`` / ``.npz`` files) and the
kernel-set snapshot surface end to end: a session suspended at an
arbitrary cursor, serialized through real JSON text, restored in a
fresh session, must finish bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine.core import (
    SNAPSHOT_SCHEMA_VERSION,
    assert_fields_match,
    decode_array,
    decode_rng,
    encode_array,
    encode_rng,
    kernels_for,
    load_snapshot,
    require_snapshot,
    save_snapshot,
    snapshot_envelope,
)
from repro.engine.monitor import MonitorPlan, glucose_cohort
from repro.serve import StreamSession

STREAMABLE_WORKLOADS = ("monitor", "estimation")


class TestArrayCodec:
    @pytest.mark.parametrize("array", [
        np.linspace(-1e-9, 1e9, 7),
        np.arange(12, dtype=np.int64).reshape(3, 4),
        np.array([], dtype=np.float64),
        np.array(3.141592653589793),
    ])
    def test_json_round_trip_is_exact(self, array):
        encoded = json.loads(json.dumps(encode_array(array)))
        decoded = decode_array(encoded)
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        np.testing.assert_array_equal(decoded, array)

    def test_non_array_rejected(self):
        with pytest.raises(ValueError, match="not an encoded array"):
            decode_array({"dtype": "float64"})


class TestRngCodec:
    def test_restored_generator_continues_identically(self):
        rng = np.random.default_rng(42)
        rng.standard_normal(17)  # advance to a non-trivial position
        state = json.loads(json.dumps(encode_rng(rng)))
        clone = decode_rng(state)
        np.testing.assert_array_equal(clone.standard_normal(8),
                                      rng.standard_normal(8))

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown bit generator"):
            decode_rng({"bit_generator": "Antikythera", "state": {}})


class TestEnvelope:
    def test_require_returns_cursor(self):
        snapshot = snapshot_envelope("monitor", 1, 17)
        assert snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert require_snapshot(snapshot, "monitor", 1, 36) == 17

    def test_wrong_workload_rejected(self):
        snapshot = snapshot_envelope("monitor", 1, 17)
        with pytest.raises(ValueError, match="belongs to workload"):
            require_snapshot(snapshot, "estimation", 1, 36)

    def test_wrong_snapshot_version_rejected(self):
        snapshot = snapshot_envelope("monitor", 2, 17)
        with pytest.raises(ValueError, match="snapshot_version"):
            require_snapshot(snapshot, "monitor", 1, 36)

    def test_wrong_schema_version_rejected(self):
        snapshot = dict(snapshot_envelope("monitor", 1, 17),
                        schema_version=99)
        with pytest.raises(ValueError, match="schema_version"):
            require_snapshot(snapshot, "monitor", 1, 36)

    @pytest.mark.parametrize("cursor", [-1, 37, 1.5, "3"])
    def test_out_of_range_cursor_rejected(self, cursor):
        snapshot = dict(snapshot_envelope("monitor", 1, 0),
                        cursor=cursor)
        with pytest.raises(ValueError, match="cursor"):
            require_snapshot(snapshot, "monitor", 1, 36)

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            require_snapshot({"workload": "monitor"}, "monitor", 1, 36)


@pytest.mark.parametrize("workload", STREAMABLE_WORKLOADS)
class TestSuspendResume:
    @pytest.mark.parametrize("k", [1, 8, 13, 35])
    def test_resume_matches_uninterrupted(self, workload, k, plan_for,
                                          batch_result):
        """Suspend at k (chunk edge or mid-chunk), JSON, resume."""
        plan = plan_for(workload)
        session = StreamSession(workload, plan)
        session.advance(k)
        wire = json.dumps(session.export_state())  # real serialization
        resumed = StreamSession.restore(plan, json.loads(wire))
        assert resumed.cursor == k
        resumed.advance(None)
        kernels = kernels_for(workload)
        assert_fields_match(
            workload, f"resume at k={k}",
            kernels.contract_fields(batch_result(workload)),
            kernels.contract_fields(resumed.result()))

    def test_snapshot_size_is_cursor_independent(self, workload,
                                                 plan_for):
        """Carry state (traces aside) must not grow with the stream."""
        plan = plan_for(workload)
        session = StreamSession(workload, plan)
        session.advance(4)
        early = session.export_state()
        session.advance(28)
        late = session.export_state()

        def carry_bytes(snapshot):
            slim = {key: value for key, value in snapshot.items()
                    if key not in ("trace", "traces")}
            if "monitor" in slim and isinstance(slim["monitor"], dict):
                slim["monitor"] = {
                    key: value
                    for key, value in slim["monitor"].items()
                    if key != "traces"}
            return len(json.dumps(slim))

        assert carry_bytes(late) == pytest.approx(carry_bytes(early),
                                                  rel=0.02)


@pytest.mark.parametrize("suffix", [".json", ".npz"])
@pytest.mark.parametrize("workload", STREAMABLE_WORKLOADS)
class TestSnapshotFiles:
    def test_disk_round_trip_finishes_identically(self, workload,
                                                  suffix, plan_for,
                                                  batch_result,
                                                  tmp_path):
        plan = plan_for(workload)
        session = StreamSession(workload, plan)
        session.advance(13)
        path = save_snapshot(session.export_state(),
                             tmp_path / f"snap{suffix}")
        resumed = StreamSession.restore(plan, load_snapshot(path))
        resumed.advance(None)
        kernels = kernels_for(workload)
        assert_fields_match(
            workload, f"disk {suffix}",
            kernels.contract_fields(batch_result(workload)),
            kernels.contract_fields(resumed.result()))


class TestTracelessMonitor:
    def test_traceless_snapshot_omits_traces(self):
        plan = MonitorPlan(channels=glucose_cohort(2), duration_h=6.0,
                           sample_period_s=600.0, chunk_samples=8,
                           seed=11, keep_traces=False)
        session = StreamSession("monitor", plan)
        session.advance(10)
        snapshot = session.export_state()
        assert "traces" not in snapshot
        resumed = StreamSession.restore(plan, snapshot)
        resumed.advance(None)
        batch = kernels_for("monitor")
        reference = batch.finalize(plan, _drive_batch(batch, plan))
        np.testing.assert_allclose(resumed.result().mard,
                                   reference.mard, atol=1e-12)

    def test_traceless_snapshot_cannot_fill_traced_plan(self, plan_for):
        traceless = MonitorPlan(channels=glucose_cohort(2),
                                duration_h=6.0, sample_period_s=600.0,
                                chunk_samples=8, seed=11,
                                keep_traces=False)
        session = StreamSession("monitor", traceless)
        session.advance(10)
        with pytest.raises(ValueError, match="keep_traces"):
            StreamSession.restore(plan_for("monitor"),
                                  session.export_state())


def _drive_batch(kernels, plan):
    """Run a plan through the raw kernel hooks (no registry result)."""
    compiled = kernels.compile(plan)
    state = kernels.init_state(plan)
    for segment in compiled.segments:
        kernels.begin_segment(plan, state, segment)
        start = segment.start
        while start < segment.stop:
            stop = min(start + plan.chunk_samples, segment.stop)
            kernels.run_chunk(plan, state, segment, start, stop)
            start = stop
        kernels.end_segment(plan, state, segment)
    return state
