"""Property test: suspend-resume identity at EVERY cut (satellite gate).

Hypothesis draws a suspension cursor k anywhere in the stream — chunk
edges, mid-chunk, first and last sample — plus an arbitrary schedule of
advance block sizes before and after the cut.  For every
snapshot-capable kernel set: run to k in drawn blocks, export, push the
snapshot through real JSON text, restore into a fresh session, finish
in drawn blocks — and the result must match the uninterrupted batch
run on every contract field (<= 1e-9).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.core import assert_fields_match, kernels_for, run_workload
from repro.engine.estimation import EstimationPlan
from repro.engine.monitor import MonitorPlan, glucose_cohort
from repro.serve import StreamSession

#: 2 channels x 18 samples, chunk 5 -> chunk edges at 5, 10, 15.
N_SAMPLES = 18


def _plan(workload: str):
    monitor = MonitorPlan(channels=glucose_cohort(2), duration_h=3.0,
                          sample_period_s=600.0, chunk_samples=5,
                          seed=23)
    return (monitor if workload == "monitor"
            else EstimationPlan(monitor=monitor))


_BASELINES: dict[str, dict] = {}


def _baseline(workload: str) -> dict:
    """Batch contract fields, computed once per workload."""
    if workload not in _BASELINES:
        kernels = kernels_for(workload)
        _BASELINES[workload] = kernels.contract_fields(
            run_workload(workload, _plan(workload)))
    return _BASELINES[workload]


def _advance_in_blocks(session: StreamSession, target: int,
                       blocks: list[int]) -> None:
    """Advance to exactly ``target`` using the drawn block sizes."""
    for block in blocks:
        if session.cursor >= target:
            break
        session.advance(min(block, target - session.cursor))
    if session.cursor < target:
        session.advance(target - session.cursor)


@pytest.mark.parametrize("workload", ["monitor", "estimation"])
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_any_cut_any_blocks_resumes_identically(workload, data):
    cut = data.draw(st.integers(min_value=1, max_value=N_SAMPLES - 1),
                    label="cut")
    before = data.draw(st.lists(st.integers(1, 7), max_size=6),
                       label="blocks before cut")
    after = data.draw(st.lists(st.integers(1, 7), max_size=6),
                      label="blocks after cut")

    plan = _plan(workload)
    session = StreamSession(workload, plan)
    _advance_in_blocks(session, cut, before)
    assert session.cursor == cut

    wire = json.dumps(session.export_state())
    resumed = StreamSession.restore(plan, json.loads(wire))
    assert resumed.cursor == cut
    assert resumed.remaining == N_SAMPLES - cut

    _advance_in_blocks(resumed, N_SAMPLES, after)
    assert resumed.done
    kernels = kernels_for(workload)
    assert_fields_match(workload, f"hypothesis cut={cut}",
                        _baseline(workload),
                        kernels.contract_fields(resumed.result()))


@pytest.mark.parametrize("workload", ["monitor", "estimation"])
@settings(max_examples=8, deadline=None)
@given(cut=st.integers(min_value=1, max_value=N_SAMPLES - 1))
def test_double_suspension_still_identical(workload, cut):
    """Two nested suspend/resume cycles compound without drift."""
    plan = _plan(workload)
    session = StreamSession(workload, plan)
    session.advance(cut)
    first = StreamSession.restore(
        plan, json.loads(json.dumps(session.export_state())))
    if not first.done:
        first.advance(max(1, (N_SAMPLES - cut) // 2))
    second = StreamSession.restore(
        plan, json.loads(json.dumps(first.export_state())))
    if not second.done:
        second.advance(None)
    kernels = kernels_for(workload)
    assert_fields_match(workload, f"double cut={cut}",
                        _baseline(workload),
                        kernels.contract_fields(second.result()))
