"""Online serving subsystem tests (repro.serve)."""
