"""The serving metrics surface: exposition, correlation, collectors.

Boots the real server and gates the observability contracts:
``GET /metrics?format=prometheus`` emits valid exposition format 0.0.4
(round-tripped through :func:`~repro.telemetry.parse_prometheus`),
every response carries an ``X-Trace-Id`` that also lands in the span
trace and the latency histogram's exemplar, runtime collectors report
real RSS/GC levels, and the legacy JSON ``/metrics`` payload stays
derivable from the registry.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.scenarios import Scenario
from repro.serve import ServeClient, ServerThread
from repro.telemetry import (
    InMemoryRecorder,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
    set_recorder,
)

SCENARIO = Scenario(
    workload="monitor", name="serve-metrics", seed=11,
    spec={"cohort": {"sensor": "glucose/this-work",
                     "analyte": "glucose", "n_patients": 2},
          "duration_h": 6.0, "sample_period_s": 600.0})


@pytest.fixture()
def served():
    """A private server + recorder pair, fully restored on teardown."""
    recorder = InMemoryRecorder()
    previous = set_recorder(recorder)
    registry = MetricsRegistry()
    try:
        with ServerThread(port=0, queue_size=16, workers=2,
                          registry=registry) as thread:
            yield ServeClient(thread.host, thread.port), \
                registry, recorder
    finally:
        set_recorder(previous)


def _run_one_job(client: ServeClient) -> dict:
    job = client.submit(SCENARIO.to_dict())
    client.wait_for_job(job["job_id"])
    return client.status(job["job_id"])


class TestPrometheusEndpoint:
    def test_round_trips_validator(self, served):
        client, registry, __ = served
        _run_one_job(client)
        text = client.metrics_prometheus()
        samples = parse_prometheus(text)
        names = {sample["name"] for sample in samples}
        assert "repro_serve_requests_total" in names
        assert "repro_serve_request_seconds_bucket" in names
        assert "repro_serve_jobs_total" in names
        assert "repro_process_resident_memory_bytes" in names
        # executor metrics from the job flow into the same scrape
        assert "repro_core_execute_seconds_bucket" in names

    def test_content_type_and_status(self, served):
        client, __, __ = served
        connection = http.client.HTTPConnection(
            client.host, client.port, timeout=30)
        try:
            connection.request("GET", "/metrics?format=prometheus")
            response = connection.getresponse()
            body = response.read()
        finally:
            connection.close()
        assert response.status == 200
        assert response.getheader("Content-Type") \
            == PROMETHEUS_CONTENT_TYPE
        parse_prometheus(body.decode("utf-8"))

    def test_unknown_format_is_400(self, served):
        client, __, __ = served
        connection = http.client.HTTPConnection(
            client.host, client.port, timeout=30)
        try:
            connection.request("GET", "/metrics?format=msgpack")
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert "format" in payload["error"]

    def test_runtime_collectors_report_levels(self, served):
        client, registry, __ = served
        client.metrics_prometheus()  # forces a collection pass
        rss = registry.gauge("repro_process_resident_memory_bytes")
        assert rss.value > 1e6  # a real python process is > 1 MB
        snapshot = registry.snapshot()
        gc_series = snapshot["instruments"][
            "repro_python_gc_collections"]["series"]
        assert {row["labels"]["generation"] for row in gc_series} \
            == {"0", "1", "2"}


class TestTraceCorrelation:
    def test_every_response_carries_a_trace_id(self, served):
        client, __, __ = served
        connection = http.client.HTTPConnection(
            client.host, client.port, timeout=30)
        try:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            response.read()
        finally:
            connection.close()
        trace_id = response.getheader("X-Trace-Id")
        assert trace_id and len(trace_id) == 16

    def test_exemplar_and_span_share_the_job_trace(self, served):
        client, registry, recorder = served
        _run_one_job(client)
        hist = registry.histogram("repro_serve_request_seconds",
                                  labels=["method", "endpoint"])
        exemplars = {series.exemplar["trace_id"]
                     for __, series in hist.items()
                     if series.exemplar is not None}
        assert exemplars  # at least one request recorded an exemplar
        span_traces = {span.attrs.get("trace_id")
                       for span in recorder.spans
                       if span.name == "serve.request"}
        assert exemplars <= span_traces

    def test_job_spans_carry_the_submit_trace(self, served):
        client, __, recorder = served
        _run_one_job(client)
        job_spans = [span for span in recorder.spans
                     if span.name == "serve.job"]
        assert job_spans
        assert all(span.attrs.get("trace_id") for span in job_spans)


class TestLegacyJsonMetrics:
    def test_json_payload_derived_from_registry(self, served):
        client, __, __ = served
        _run_one_job(client)
        payload = client.metrics()
        assert payload["counters"]["jobs.submitted.monitor"] == 1
        assert payload["counters"]["jobs.done.monitor"] == 1
        assert any(key.startswith("requests.GET ")
                   for key in payload["counters"])
        assert payload["queue_depth"] == 0
