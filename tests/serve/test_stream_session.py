"""StreamSession: incremental streaming is bit-identical to batch.

The serving tentpole's core gate: advancing a plan reading by reading
(any block size, including single samples and blocks that straddle
chunk boundaries) yields exactly the batch engine's result — every
contract field within its declared tolerance (<= 1e-9 for traces), for
every snapshot-capable workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.core import assert_fields_match, kernels_for
from repro.serve import StreamSession

STREAMABLE_WORKLOADS = ("monitor", "estimation")


@pytest.mark.parametrize("workload", STREAMABLE_WORKLOADS)
class TestStreamingMatchesBatch:
    @pytest.mark.parametrize("block", [1, 7, 8, 36, None])
    def test_every_block_size_reproduces_batch(self, workload, block,
                                               plan_for, batch_result):
        """Blocks of 1, a straddling prime, a chunk, and run-to-end."""
        session = StreamSession(workload, plan_for(workload))
        while not session.done:
            session.advance(block)
        kernels = kernels_for(workload)
        assert_fields_match(
            workload, f"stream block={block}",
            kernels.contract_fields(batch_result(workload)),
            kernels.contract_fields(session.result()))

    def test_updates_concatenate_to_batch_traces(self, workload,
                                                 plan_for,
                                                 batch_result):
        """The incremental blocks ARE the final traces, in order."""
        session = StreamSession(workload, plan_for(workload))
        times, fields = [], {}
        while not session.done:
            update = session.advance(5)
            times.append(update.time_h)
            for name, blockvals in update.values.items():
                fields.setdefault(name, []).append(blockvals)
        batch = batch_result(workload)
        np.testing.assert_array_equal(np.concatenate(times),
                                      batch.time_h)
        traces = {
            "true_concentration_molar": batch.true_concentration_molar,
            "estimated_concentration_molar":
                (batch.estimated_concentration_molar
                 if workload == "monitor"
                 else batch.monitor.estimated_concentration_molar),
            "measured_current_a":
                (batch.measured_current_a if workload == "monitor"
                 else batch.monitor.measured_current_a),
        }
        if workload == "estimation":
            traces["filtered_concentration_molar"] = \
                batch.filtered_concentration_molar
            traces["filtered_std_molar"] = batch.filtered_std_molar
        assert set(fields) == set(traces)
        for name, expected in traces.items():
            streamed = np.concatenate(fields[name], axis=1)
            np.testing.assert_allclose(streamed, expected, atol=1e-9,
                                       err_msg=f"{workload}: {name}")

    def test_update_shapes_and_cursor(self, workload, plan_for):
        session = StreamSession(workload, plan_for(workload))
        assert session.cursor == 0
        assert session.n_samples == 36
        assert session.n_channels == 2
        assert session.remaining == 36
        update = session.advance(10)
        assert (update.start, update.stop) == (0, 10)
        assert update.n_samples == 10
        assert update.time_h.shape == (10,)
        for block in update.values.values():
            assert block.shape == (2, 10)
        assert session.cursor == 10
        assert session.remaining == 26
        assert not session.done

    def test_final_block_is_clamped(self, workload, plan_for):
        """Asking past the end returns only what remains."""
        session = StreamSession(workload, plan_for(workload))
        session.advance(30)
        update = session.advance(1000)
        assert (update.start, update.stop) == (30, 36)
        assert session.done


@pytest.mark.parametrize("workload", STREAMABLE_WORKLOADS)
class TestSessionErrors:
    def test_advance_past_exhaustion_raises(self, workload, plan_for):
        session = StreamSession(workload, plan_for(workload))
        session.advance(None)
        with pytest.raises(ValueError, match="exhausted"):
            session.advance(1)

    def test_result_before_done_raises(self, workload, plan_for):
        session = StreamSession(workload, plan_for(workload))
        session.advance(3)
        with pytest.raises(ValueError, match="33 of 36"):
            session.result()

    def test_nonpositive_block_raises(self, workload, plan_for):
        session = StreamSession(workload, plan_for(workload))
        with pytest.raises(ValueError, match="at least one"):
            session.advance(0)

    def test_result_is_cached(self, workload, plan_for):
        session = StreamSession(workload, plan_for(workload))
        session.advance(None)
        assert session.result() is session.result()


class TestStreamingSupport:
    def test_non_streaming_workload_rejected(self, plan_for):
        """Workloads without snapshot_version refuse to stream."""
        kernels = kernels_for("calibration")
        assert kernels.snapshot_version is None
        with pytest.raises(ValueError, match="does not support"):
            StreamSession("calibration", kernels.contract_plan())

    def test_wrong_plan_type_rejected(self, plan_for):
        with pytest.raises(ValueError, match="monitor plans must be"):
            StreamSession("monitor", plan_for("estimation"))

    def test_from_scenario_builds_seeded_plan(self):
        from repro.scenarios import Scenario

        scenario = Scenario(
            workload="monitor", name="s", seed=5,
            spec={"cohort": {"sensor": "glucose/this-work",
                             "analyte": "glucose", "n_patients": 2},
                  "duration_h": 6.0, "sample_period_s": 600.0})
        session = StreamSession.from_scenario(scenario)
        assert session.workload == "monitor"
        assert session.plan.seed == 5
        assert session.n_samples == 36
