"""The async front door end to end: jobs, streams, errors, metrics.

Boots the real server (:class:`ServerThread` — the production asyncio
loop on a background thread) and drives it through the stdlib
:class:`ServeClient` over real sockets.  The central gate: the result
fetched from a job and the result assembled by pushing readings through
a stream are both byte-identical JSON to the batch runner's artifact
for the same scenario.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.scenarios import Scenario, ScenarioRun, run_scenario
from repro.scenarios.protocols import WORKLOADS, register_workload
from repro.serve import ServeClient, ServeError, ServerThread

MONITOR_SCENARIO = Scenario(
    workload="monitor", name="serve-wear", seed=11,
    spec={"cohort": {"sensor": "glucose/this-work",
                     "analyte": "glucose", "n_patients": 2},
          "duration_h": 6.0, "sample_period_s": 600.0})

ESTIMATION_SCENARIO = Scenario(
    workload="estimation", name="serve-reconstruct", seed=11,
    spec={"cohort": {"sensor": "glucose/this-work",
                     "analyte": "glucose", "n_patients": 2},
          "duration_h": 6.0, "sample_period_s": 600.0})

CALIBRATION_SCENARIO = Scenario(
    workload="calibration", name="serve-calib", seed=7,
    spec={"sensors": ["glucose/this-work"], "n_blanks": 2,
          "n_replicates": 2})


def batch_artifact(scenario: Scenario, traces: bool = True) -> dict:
    """The batch runner's artifact, pushed through a JSON round trip."""
    run = ScenarioRun(scenario=scenario, result=run_scenario(scenario))
    return json.loads(json.dumps(run.to_dict(include_traces=traces)))


def max_difference(a, b) -> float:
    """Largest absolute numeric difference between two JSON payloads.

    Streamed accumulation may differ from batch by summation-order
    ulps; the serving contract bounds the gap at 1e-9.  Non-numeric
    leaves must match exactly.
    """
    if isinstance(a, dict):
        assert set(a) == set(b), set(a) ^ set(b)
        return max((max_difference(a[k], b[k]) for k in a), default=0.0)
    if isinstance(a, list):
        assert len(a) == len(b), (len(a), len(b))
        return max((max_difference(x, y) for x, y in zip(a, b)),
                   default=0.0)
    if isinstance(a, float) or isinstance(b, float):
        return abs(a - b)
    assert a == b, (a, b)
    return 0.0


@pytest.fixture(scope="module")
def client():
    """One shared server for the whole module, port auto-picked."""
    with ServerThread(port=0, queue_size=16, workers=2) as thread:
        yield ServeClient(thread.host, thread.port)


class TestServiceEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0

    def test_workloads_carry_streaming_flags(self, client):
        rows = {row["name"]: row for row in client.workloads()}
        assert rows["monitor"]["streaming"] is True
        assert rows["estimation"]["streaming"] is True
        assert rows["calibration"]["streaming"] is False
        assert rows["therapy"]["streaming"] is False

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/centrifuge")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("POST", "/healthz", {})
        assert excinfo.value.status == 405
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/scenarios")
        assert excinfo.value.status == 405


class TestJobs:
    def test_submitted_job_reproduces_batch_artifact(self, client):
        job = client.submit(MONITOR_SCENARIO.to_dict())
        assert job["status"] == "queued"
        assert job["workload"] == "monitor"
        done = client.wait_for_job(job["job_id"])
        assert done["status"] == "done"
        remote = client.result(job["job_id"], traces=True)
        assert remote == batch_artifact(MONITOR_SCENARIO)

    def test_non_streaming_workloads_still_run_as_jobs(self, client):
        job = client.submit(CALIBRATION_SCENARIO.to_dict())
        client.wait_for_job(job["job_id"])
        remote = client.result(job["job_id"])
        assert remote == batch_artifact(CALIBRATION_SCENARIO,
                                        traces=False)

    def test_invalid_scenario_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit({"workload": "monitor"})
        assert excinfo.value.status == 400
        assert "invalid scenario" in str(excinfo.value)

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.status("job-9999")
        assert excinfo.value.status == 404

    def test_result_of_unfinished_job_is_409(self, client):
        """A queued/failed job has no result to fetch."""
        bad = Scenario(workload="monitor", name="bad", seed=1,
                       spec={"cohort": {"sensor": "glucose/this-work",
                                        "analyte": "glucose",
                                        "n_patients": 1},
                             "duration_h": -1.0})
        job = client.submit(bad.to_dict())
        with pytest.raises(ServeError) as excinfo:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                client.result(job["job_id"])
                time.sleep(0.05)
        assert excinfo.value.status == 409


class TestStreams:
    def test_stream_result_equals_job_result(self, client):
        """Pushed reading blocks assemble the batch-identical artifact."""
        stream = client.create_stream(ESTIMATION_SCENARIO.to_dict())
        assert stream["cursor"] == 0
        assert stream["n_samples"] == 36
        pushed = 0
        while True:
            update = client.push_readings(stream["stream_id"], count=7)
            pushed += update["stop"] - update["start"]
            assert update["cursor"] == pushed
            assert len(update["time_h"]) == update["stop"] - update["start"]
            assert set(update["values"]) >= {
                "filtered_concentration_molar", "filtered_std_molar"}
            if update["done"]:
                break
        assert pushed == 36
        remote = client.stream_result(stream["stream_id"], traces=True)
        assert max_difference(remote,
                              batch_artifact(ESTIMATION_SCENARIO)) \
            <= 1e-9
        client.delete_stream(stream["stream_id"])

    def test_snapshot_endpoint_returns_resume_point(self, client):
        from repro.serve import StreamSession

        stream = client.create_stream(MONITOR_SCENARIO.to_dict())
        client.push_readings(stream["stream_id"], count=13)
        snapshot = client.stream_snapshot(stream["stream_id"])
        assert snapshot["workload"] == "monitor"
        assert snapshot["cursor"] == 13
        # the fetched snapshot is a working resume point
        resumed = StreamSession.restore(
            StreamSession.from_scenario(MONITOR_SCENARIO).plan,
            snapshot)
        resumed.advance(None)
        assert resumed.result().mard.shape == (2,)
        client.delete_stream(stream["stream_id"])

    def test_result_before_exhaustion_is_409(self, client):
        stream = client.create_stream(MONITOR_SCENARIO.to_dict())
        client.push_readings(stream["stream_id"], count=1)
        with pytest.raises(ServeError) as excinfo:
            client.stream_result(stream["stream_id"])
        assert excinfo.value.status == 409
        assert "35 samples left" in str(excinfo.value)
        client.delete_stream(stream["stream_id"])

    def test_push_after_exhaustion_is_409(self, client):
        stream = client.create_stream(MONITOR_SCENARIO.to_dict())
        client.push_readings(stream["stream_id"])   # run to the end
        with pytest.raises(ServeError) as excinfo:
            client.push_readings(stream["stream_id"], count=1)
        assert excinfo.value.status == 409
        client.delete_stream(stream["stream_id"])

    def test_bad_count_is_400(self, client):
        stream = client.create_stream(MONITOR_SCENARIO.to_dict())
        for bad in (0, -3, 1.5, True, "7"):
            with pytest.raises(ServeError) as excinfo:
                client._request(
                    "POST",
                    f"/streams/{stream['stream_id']}/readings",
                    {"count": bad})
            assert excinfo.value.status == 400
        client.delete_stream(stream["stream_id"])

    def test_non_streaming_workload_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.create_stream(CALIBRATION_SCENARIO.to_dict())
        assert excinfo.value.status == 400
        assert "does not support" in str(excinfo.value)

    def test_deleted_stream_is_404(self, client):
        stream = client.create_stream(MONITOR_SCENARIO.to_dict())
        client.delete_stream(stream["stream_id"])
        with pytest.raises(ServeError) as excinfo:
            client.stream_status(stream["stream_id"])
        assert excinfo.value.status == 404


class TestMetrics:
    def test_counters_accumulate_per_endpoint_and_workload(self, client):
        client.health()
        job = client.submit(MONITOR_SCENARIO.to_dict())
        client.wait_for_job(job["job_id"])
        metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["requests.GET /healthz"] >= 1
        assert counters["requests.POST /scenarios"] >= 1
        assert counters["requests.GET /scenarios/*"] >= 1
        assert counters["jobs.submitted.monitor"] >= 1
        assert counters["jobs.done.monitor"] >= 1
        assert metrics["jobs"]["done"] >= 1

    def test_readings_counter_counts_channel_readings(self, client):
        before = client.metrics()["counters"].get("readings.pushed", 0)
        stream = client.create_stream(MONITOR_SCENARIO.to_dict())
        client.push_readings(stream["stream_id"], count=10)
        after = client.metrics()["counters"]["readings.pushed"]
        assert after - before == 10 * 2   # 10 samples x 2 channels
        client.delete_stream(stream["stream_id"])

    def test_counters_mirror_into_telemetry_recorder(self, client):
        from repro.telemetry import InMemoryRecorder, set_recorder

        recorder = InMemoryRecorder()
        previous = set_recorder(recorder)
        try:
            client.health()
            client.metrics()
        finally:
            set_recorder(previous)
        assert recorder.counters.get(
            "serve.requests.GET /healthz", 0) >= 1
        names = {record.name for record in recorder.spans}
        assert "serve.request" in names


class _SleepyResult:
    def summary(self) -> str:
        return "slept"

    def summary_row(self) -> dict:
        return {"slept": 1}

    def to_dict(self, include_traces: bool = False) -> dict:
        return {"slept": 1}


class _SleepyWorkload:
    """Blocks in run() until the test releases it (backpressure probe)."""

    name = "sleepy-serve-test"
    plan_type = dict
    release = threading.Event()

    def build_plan(self, spec, seed):
        return dict(spec)

    def run(self, plan):
        if not _SleepyWorkload.release.wait(timeout=30.0):
            raise TimeoutError("never released")
        return _SleepyResult()

    def run_scalar(self, plan):
        return self.run(plan)

    def summarize(self, result):
        return result.summary()

    def describe(self) -> str:
        return "test-only blocking workload"

    def example_spec(self) -> dict:
        return {}


class TestBackpressure:
    def test_full_queue_answers_503(self):
        """Submissions beyond queue_size bounce instead of buffering."""
        register_workload(_SleepyWorkload())
        scenario = Scenario(workload=_SleepyWorkload.name,
                            name="sleepy", seed=1, spec={}).to_dict()
        try:
            with ServerThread(port=0, queue_size=1,
                              workers=1) as thread:
                client = ServeClient(thread.host, thread.port)
                first = client.submit(scenario)
                # wait until the worker picked job 1 off the queue
                deadline = time.monotonic() + 10.0
                while (client.status(first["job_id"])["status"]
                       != "running"):
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                client.submit(scenario)   # fills the single queue slot
                with pytest.raises(ServeError) as excinfo:
                    client.submit(scenario)
                assert excinfo.value.status == 503
                assert "queue full" in str(excinfo.value)
                rejected = client.metrics()["counters"]["jobs.rejected"]
                assert rejected >= 1
                _SleepyWorkload.release.set()
                client.wait_for_job(first["job_id"])
        finally:
            _SleepyWorkload.release.set()
            WORKLOADS.pop(_SleepyWorkload.name, None)


class TestRequestLimits:
    def test_oversized_body_is_413(self):
        with ServerThread(port=0, max_body_bytes=1024) as thread:
            client = ServeClient(thread.host, thread.port)
            with pytest.raises(ServeError) as excinfo:
                client._request("POST", "/scenarios",
                                {"blob": "x" * 4096})
            assert excinfo.value.status == 413

    def test_malformed_json_is_400(self, client):
        import http.client as http_client

        connection = http_client.HTTPConnection(
            client.host, client.port, timeout=10)
        try:
            connection.request(
                "POST", "/scenarios", body=b"{not json",
                headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            assert b"invalid JSON" in response.read()
        finally:
            connection.close()
