"""Shared serving fixtures: small streamable plans + batch baselines.

Every fixture plan runs in a few milliseconds but still crosses
multiple chunk boundaries (36 samples, chunk 8), so streaming tests
exercise real mid-chunk and cross-chunk suspension points.
"""

from __future__ import annotations

import pytest

from repro.engine.core import run_workload
from repro.engine.estimation import EstimationPlan
from repro.engine.monitor import MonitorPlan, glucose_cohort

#: The workloads whose kernel sets declare a ``snapshot_version``.
STREAMABLE_WORKLOADS = ("monitor", "estimation")


def small_plan(workload: str, seed: int = 11):
    """A tiny streamable plan: 2 channels x 36 samples, chunk 8."""
    monitor = MonitorPlan(
        channels=glucose_cohort(2), duration_h=6.0,
        sample_period_s=600.0, chunk_samples=8, seed=seed)
    if workload == "monitor":
        return monitor
    if workload == "estimation":
        return EstimationPlan(monitor=monitor)
    raise ValueError(f"no small plan for workload {workload!r}")


@pytest.fixture(scope="session")
def plan_for():
    """Factory fixture: ``plan_for(workload)`` -> small plan."""
    return small_plan


@pytest.fixture(scope="session")
def batch_result():
    """Factory fixture: cached batch baseline per workload."""
    cache: dict[str, object] = {}

    def get(workload: str):
        if workload not in cache:
            cache[workload] = run_workload(workload,
                                           small_plan(workload))
        return cache[workload]

    return get
