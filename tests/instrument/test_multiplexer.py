"""Tests for repro.instrument.multiplexer."""

import numpy as np
import pytest

from repro.instrument.multiplexer import ChannelMultiplexer


@pytest.fixture()
def mux():
    return ChannelMultiplexer()


class TestSelection:
    def test_selected_channel_passes(self, mux):
        currents = {0: 1e-7, 1: 0.0, 2: 0.0}
        assert mux.observed_current(0, currents) == pytest.approx(1e-7,
                                                                  rel=1e-3)

    def test_crosstalk_leaks_neighbours(self, mux):
        currents = {0: 0.0, 1: 1e-6}
        observed = mux.observed_current(0, currents)
        assert observed == pytest.approx(1e-6 * mux.off_isolation)

    def test_crosstalk_error_small_for_balanced_channels(self, mux):
        currents = {ch: 1e-7 for ch in range(5)}
        error = mux.crosstalk_error(2, currents)
        assert error < 1e-3

    def test_crosstalk_error_infinite_for_blank_next_to_strong(self, mux):
        currents = {0: 0.0, 1: 1e-5}
        assert mux.crosstalk_error(0, currents) == float("inf")

    def test_rejects_bad_channel(self, mux):
        with pytest.raises(ValueError):
            mux.observed_current(9, {0: 1e-7})


class TestSwitchingTransient:
    def test_charge_conserved(self, mux):
        cap = 1e-6
        tau = mux.on_resistance_ohm * cap
        t = np.linspace(0.0, 30 * tau, 50_000)
        transient = mux.switching_transient(t, cap)
        charge = np.trapezoid(transient, t)
        assert charge == pytest.approx(mux.charge_injection_c, rel=1e-3)

    def test_decays_within_settling_time(self, mux):
        cap = 1e-6
        transient = mux.switching_transient(
            np.array([mux.settling_time_s]), cap)
        assert transient[0] < 1e-15

    def test_zero_resistance_no_transient(self):
        mux = ChannelMultiplexer(on_resistance_ohm=0.0)
        transient = mux.switching_transient(np.array([0.0, 1.0]), 1e-6)
        assert np.all(transient == 0.0)


class TestScanScheduling:
    def test_full_scan_duration(self, mux):
        # 5 channels x (0.5 s settle + 10 s dwell).
        assert mux.scan_duration_s(10.0) == pytest.approx(52.5)

    def test_partial_scan(self, mux):
        assert mux.scan_duration_s(10.0, channels=[0, 3]) \
            == pytest.approx(21.0)

    def test_scan_rate_inverse_of_duration(self, mux):
        assert mux.max_scan_rate_hz(10.0) \
            == pytest.approx(1.0 / mux.scan_duration_s(10.0))

    def test_rejects_bad_dwell(self, mux):
        with pytest.raises(ValueError):
            mux.scan_duration_s(0.0)
