"""Tests for repro.instrument.multiplexer."""

import numpy as np
import pytest

from repro.instrument.multiplexer import ChannelMultiplexer


@pytest.fixture()
def mux():
    return ChannelMultiplexer()


class TestSelection:
    def test_selected_channel_passes(self, mux):
        currents = {0: 1e-7, 1: 0.0, 2: 0.0}
        assert mux.observed_current(0, currents) == pytest.approx(1e-7,
                                                                  rel=1e-3)

    def test_crosstalk_leaks_neighbours(self, mux):
        currents = {0: 0.0, 1: 1e-6}
        observed = mux.observed_current(0, currents)
        assert observed == pytest.approx(1e-6 * mux.off_isolation)

    def test_crosstalk_error_small_for_balanced_channels(self, mux):
        currents = {ch: 1e-7 for ch in range(5)}
        error = mux.crosstalk_error(2, currents)
        assert error < 1e-3

    def test_crosstalk_error_infinite_for_blank_next_to_strong(self, mux):
        currents = {0: 0.0, 1: 1e-5}
        assert mux.crosstalk_error(0, currents) == float("inf")

    def test_rejects_bad_channel(self, mux):
        with pytest.raises(ValueError):
            mux.observed_current(9, {0: 1e-7})


class TestSwitchingTransient:
    def test_charge_conserved(self, mux):
        cap = 1e-6
        tau = mux.on_resistance_ohm * cap
        t = np.linspace(0.0, 30 * tau, 50_000)
        transient = mux.switching_transient(t, cap)
        charge = np.trapezoid(transient, t)
        assert charge == pytest.approx(mux.charge_injection_c, rel=1e-3)

    def test_decays_within_settling_time(self, mux):
        cap = 1e-6
        transient = mux.switching_transient(
            np.array([mux.settling_time_s]), cap)
        assert transient[0] < 1e-15

    def test_zero_resistance_no_transient(self):
        mux = ChannelMultiplexer(on_resistance_ohm=0.0)
        transient = mux.switching_transient(np.array([0.0, 1.0]), 1e-6)
        assert np.all(transient == 0.0)


class TestScanScheduling:
    def test_full_scan_duration(self, mux):
        # 5 channels x (0.5 s settle + 10 s dwell).
        assert mux.scan_duration_s(10.0) == pytest.approx(52.5)

    def test_partial_scan(self, mux):
        assert mux.scan_duration_s(10.0, channels=[0, 3]) \
            == pytest.approx(21.0)

    def test_scan_rate_inverse_of_duration(self, mux):
        assert mux.max_scan_rate_hz(10.0) \
            == pytest.approx(1.0 / mux.scan_duration_s(10.0))

    def test_rejects_bad_dwell(self, mux):
        with pytest.raises(ValueError):
            mux.scan_duration_s(0.0)


class TestValidation:
    """Constructor guard rails (previously untested)."""

    @pytest.mark.parametrize("kwargs", [
        {"n_channels": 0},
        {"on_resistance_ohm": -1.0},
        {"charge_injection_c": -1e-12},
        {"off_isolation": -0.1},
        {"off_isolation": 1.0},
        {"settling_time_s": -0.5},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChannelMultiplexer(**kwargs)

    def test_negative_channel_rejected(self, mux):
        with pytest.raises(ValueError, match="channel"):
            mux.observed_current(-1, {0: 1e-7})

    def test_transient_rejects_negative_time_and_capacitance(self, mux):
        with pytest.raises(ValueError, match=">= 0"):
            mux.switching_transient(np.array([-1.0]), 1e-6)
        with pytest.raises(ValueError, match="> 0"):
            mux.switching_transient(np.array([0.0]), 0.0)


class TestCrosstalkPaths:
    """The leakage arithmetic the inference fusion layer rests on."""

    def test_missing_channels_default_to_zero_current(self, mux):
        # A sparse dict is legal: unlisted electrodes carry nothing.
        assert mux.observed_current(0, {}) == 0.0
        assert mux.observed_current(0, {3: 1e-6}) \
            == pytest.approx(1e-6 * mux.off_isolation)

    def test_leakage_sums_over_all_neighbours(self, mux):
        currents = {0: 1e-7, 1: 2e-7, 2: 3e-7, 3: 4e-7}
        observed = mux.observed_current(0, currents)
        assert observed == pytest.approx(
            1e-7 + (2e-7 + 3e-7 + 4e-7) * mux.off_isolation)

    def test_crosstalk_error_scales_with_imbalance(self, mux):
        balanced = mux.crosstalk_error(0, {0: 1e-7, 1: 1e-7})
        lopsided = mux.crosstalk_error(0, {0: 1e-7, 1: 1e-4})
        assert lopsided > 100 * balanced

    def test_blank_with_silent_neighbours_has_zero_error(self, mux):
        assert mux.crosstalk_error(0, {0: 0.0, 1: 0.0}) == 0.0

    def test_perfect_isolation_has_zero_error(self):
        mux = ChannelMultiplexer(off_isolation=0.0)
        assert mux.crosstalk_error(0, {0: 1e-8, 1: 1e-4}) == 0.0


class TestSettlingPaths:
    """Settling-time scheduling arithmetic (previously untested)."""

    def test_scan_duration_scales_with_settling_time(self):
        fast = ChannelMultiplexer(settling_time_s=0.1)
        slow = ChannelMultiplexer(settling_time_s=2.0)
        dwell = 5.0
        assert slow.scan_duration_s(dwell) - fast.scan_duration_s(dwell) \
            == pytest.approx(5 * (2.0 - 0.1))

    def test_zero_settling_time_is_dwell_only(self):
        mux = ChannelMultiplexer(settling_time_s=0.0)
        assert mux.scan_duration_s(10.0) == pytest.approx(50.0)

    def test_revisits_pay_settling_each_time(self, mux):
        once = mux.scan_duration_s(10.0, channels=[0])
        thrice = mux.scan_duration_s(10.0, channels=[0, 0, 0])
        assert thrice == pytest.approx(3 * once)

    def test_scan_rejects_bad_channel_in_list(self, mux):
        with pytest.raises(ValueError, match="channel"):
            mux.scan_duration_s(10.0, channels=[0, 9])

    def test_transient_settled_before_samples_count(self, mux):
        """The settling wait exists so the charge-injection transient
        has died: at settling_time_s the residual is negligible against
        a nanoamp-scale signal."""
        cap = 100e-9
        residual = mux.switching_transient(
            np.array([mux.settling_time_s]), cap)[0]
        peak = mux.switching_transient(np.array([0.0]), cap)[0]
        assert peak == pytest.approx(
            mux.charge_injection_c / (mux.on_resistance_ohm * cap))
        assert residual < 1e-12 * peak
