"""Tests for repro.instrument.tia and repro.instrument.adc."""

import numpy as np
import pytest

from repro.instrument.adc import SarAdc
from repro.instrument.noise import NoiseModel
from repro.instrument.tia import TransimpedanceAmplifier


def quiet_tia(gain: float = 1e6, bandwidth: float = 100.0,
              rail: float = 2.5) -> TransimpedanceAmplifier:
    return TransimpedanceAmplifier(
        gain_v_per_a=gain, bandwidth_hz=bandwidth, rail_v=rail,
        input_noise=NoiseModel(white_density_a_rthz=0.0))


class TestTia:
    def test_dc_gain(self):
        tia = quiet_tia()
        out = tia.amplify(np.full(2000, 1e-6), 100.0, add_noise=False)
        assert out[-1] == pytest.approx(1.0, rel=1e-3)

    def test_rail_clipping(self):
        tia = quiet_tia(gain=1e6, rail=2.5)
        out = tia.amplify(np.full(2000, 10e-6), 100.0, add_noise=False)
        assert np.max(out) == pytest.approx(2.5)

    def test_full_scale_current(self):
        tia = quiet_tia(gain=1e6, rail=2.5)
        assert tia.full_scale_current_a == pytest.approx(2.5e-6)
        assert tia.saturates(3e-6)
        assert not tia.saturates(2e-6)

    def test_bandwidth_attenuates_fast_signal(self):
        tia = quiet_tia(bandwidth=1.0)
        fs = 1000.0
        t = np.arange(5000) / fs
        fast = 1e-6 * np.sin(2 * np.pi * 50.0 * t)
        out = tia.amplify(fast, fs, add_noise=False)
        # 50 Hz through a 1 Hz pole: ~50x attenuation.
        assert np.max(np.abs(out[1000:])) < 0.05 * 1e-6 * 1e6

    def test_offset_current_added(self):
        tia = TransimpedanceAmplifier(
            gain_v_per_a=1e6, bandwidth_hz=100.0, rail_v=2.5,
            input_noise=NoiseModel(0.0), offset_current_a=1e-7)
        out = tia.amplify(np.zeros(2000), 100.0, add_noise=False)
        assert out[-1] == pytest.approx(0.1, rel=1e-3)

    def test_default_noise_is_johnson_limited(self):
        tia = TransimpedanceAmplifier(gain_v_per_a=1e7)
        assert tia.noise.white_density_a_rthz == pytest.approx(
            40.6e-15, rel=5e-2)

    def test_noise_changes_output(self, rng):
        tia = TransimpedanceAmplifier(
            gain_v_per_a=1e6,
            input_noise=NoiseModel(white_density_a_rthz=1e-9))
        noisy = tia.amplify(np.zeros(1000), 100.0, rng=rng)
        assert np.std(noisy) > 0

    def test_accepts_batch_rows_matching_scalar(self):
        tia = quiet_tia()
        rows = np.vstack([np.linspace(0.0, 1e-6, 50),
                          np.linspace(1e-6, 0.0, 50)])
        batched = tia.amplify(rows, 100.0, add_noise=False)
        for row, trace in zip(batched, rows):
            np.testing.assert_allclose(
                row, tia.amplify(trace, 100.0, add_noise=False))

    def test_rejects_three_dimensional_input(self):
        with pytest.raises(ValueError):
            quiet_tia().amplify(np.zeros((2, 10, 10)), 100.0)


class TestAdc:
    def test_lsb_size(self):
        adc = SarAdc(n_bits=16, v_ref=2.5)
        assert adc.lsb_v == pytest.approx(5.0 / 65536)

    def test_quantization_roundtrip_within_half_lsb(self):
        adc = SarAdc(n_bits=12, v_ref=2.5)
        voltages = np.linspace(-2.4, 2.4, 1001)
        reconstructed = adc.convert(voltages)
        assert np.max(np.abs(reconstructed - voltages)) <= adc.lsb_v / 2 + 1e-12

    def test_clipping_at_range_edges(self):
        adc = SarAdc(n_bits=8, v_ref=1.0)
        codes = adc.quantize(np.array([-5.0, 5.0]))
        assert codes[0] == -128
        assert codes[1] == 127

    def test_quantization_noise_rms(self):
        adc = SarAdc(n_bits=12, v_ref=2.5)
        voltages = np.random.default_rng(3).uniform(-2.0, 2.0, 100_000)
        error = adc.convert(voltages) - voltages
        assert np.std(error) == pytest.approx(adc.quantization_noise_rms_v,
                                              rel=5e-2)

    def test_sample_trace_decimation(self):
        adc = SarAdc(n_bits=16, v_ref=2.5, sampling_rate_hz=10.0)
        trace = np.linspace(0.0, 1.0, 200)
        times, sampled = adc.sample_trace(trace, 100.0)
        assert sampled.size == 20
        assert times[1] - times[0] == pytest.approx(0.1)

    def test_sample_trace_rejects_non_integer_ratio(self):
        adc = SarAdc(sampling_rate_hz=10.0)
        with pytest.raises(ValueError, match="integer multiple"):
            adc.sample_trace(np.zeros(100), 25.0)

    def test_enob_bounded_by_resolution(self):
        adc = SarAdc(n_bits=12, v_ref=2.5)
        enob = adc.effective_number_of_bits(
            signal_rms_v=2.5 / np.sqrt(2), noise_rms_v=1e-9)
        assert 11.0 < enob <= 12.2

    def test_enob_degrades_with_noise(self):
        adc = SarAdc(n_bits=16, v_ref=2.5)
        clean = adc.effective_number_of_bits(1.0, 1e-9)
        noisy = adc.effective_number_of_bits(1.0, 1e-3)
        assert noisy < clean

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            SarAdc(n_bits=2)
