"""Tests for repro.instrument.noise."""

import numpy as np
import pytest

from repro.instrument.noise import (
    NoiseModel,
    flicker_corner_rms,
    shot_noise_density,
    thermal_current_noise_density,
)


class TestDensities:
    def test_thermal_10_megaohm(self):
        # sqrt(4kT/R) at 10 Mohm, 25 C: ~40.6 fA/sqrt(Hz).
        density = thermal_current_noise_density(1e7)
        assert density == pytest.approx(40.6e-15, rel=2e-2)

    def test_larger_resistor_is_quieter(self):
        assert thermal_current_noise_density(1e8) \
            < thermal_current_noise_density(1e6)

    def test_shot_noise_1na(self):
        # sqrt(2qI) at 1 nA: ~17.9 fA/sqrt(Hz).
        assert shot_noise_density(1e-9) == pytest.approx(17.9e-15, rel=2e-2)

    def test_shot_noise_zero_current(self):
        assert shot_noise_density(0.0) == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            thermal_current_noise_density(0.0)
        with pytest.raises(ValueError):
            shot_noise_density(-1e-9)


class TestFlickerRms:
    def test_white_only_band_integration(self):
        rms = flicker_corner_rms(1e-12, 0.0, 0.01, 100.01)
        assert rms == pytest.approx(1e-12 * 10.0, rel=1e-6)

    def test_flicker_adds_power(self):
        white_only = flicker_corner_rms(1e-12, 0.0, 0.01, 100.0)
        with_flicker = flicker_corner_rms(1e-12, 10.0, 0.01, 100.0)
        assert with_flicker > white_only

    def test_rejects_bad_band(self):
        with pytest.raises(ValueError):
            flicker_corner_rms(1e-12, 1.0, 1.0, 0.5)


class TestNoiseModelSampling:
    def test_white_rms_matches_theory(self, rng):
        model = NoiseModel(white_density_a_rthz=1e-12)
        fs = 100.0
        samples = model.sample(200_000, fs, rng)
        expected = 1e-12 * np.sqrt(fs / 2.0)
        assert np.std(samples) == pytest.approx(expected, rel=2e-2)

    def test_zero_density_gives_silence(self, rng):
        model = NoiseModel(white_density_a_rthz=0.0)
        samples = model.sample(1000, 100.0, rng)
        assert np.all(samples == 0.0)

    def test_flicker_raises_low_frequency_power(self, rng):
        white = NoiseModel(white_density_a_rthz=1e-12)
        pink = NoiseModel(white_density_a_rthz=1e-12, flicker_corner_hz=10.0)
        n, fs = 65536, 100.0
        white_samples = white.sample(n, fs, np.random.default_rng(1))
        pink_samples = pink.sample(n, fs, np.random.default_rng(1))
        freqs = np.fft.rfftfreq(n, 1 / fs)
        white_psd = np.abs(np.fft.rfft(white_samples)) ** 2
        pink_psd = np.abs(np.fft.rfft(pink_samples)) ** 2
        low = (freqs > 0.01) & (freqs < 0.5)
        high = freqs > 25.0
        low_ratio = pink_psd[low].mean() / white_psd[low].mean()
        high_ratio = pink_psd[high].mean() / white_psd[high].mean()
        assert low_ratio > 5.0 * high_ratio

    def test_reproducible_with_seeded_rng(self):
        model = NoiseModel(white_density_a_rthz=1e-12, flicker_corner_hz=1.0)
        a = model.sample(1000, 10.0, np.random.default_rng(7))
        b = model.sample(1000, 10.0, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_rms_helper_consistency(self):
        model = NoiseModel(white_density_a_rthz=1e-12, flicker_corner_hz=0.0)
        assert model.rms(0.0, 25.0) == pytest.approx(model.white_rms(25.0))

    def test_rejects_bad_sample_request(self):
        model = NoiseModel(white_density_a_rthz=1e-12)
        with pytest.raises(ValueError):
            model.sample(0, 10.0)
        with pytest.raises(ValueError):
            model.sample(10, 0.0)
