"""Tests for filters, potentiostat and the acquisition chain."""

import numpy as np
import pytest

from repro.electrodes.spe import screen_printed_electrode
from repro.instrument.chain import AcquisitionChain
from repro.instrument.filters import AnalogLowPass
from repro.instrument.potentiostat import Potentiostat


class TestAnalogLowPass:
    def test_passes_dc(self):
        lp = AnalogLowPass(cutoff_hz=5.0, order=2)
        out = lp.apply(np.ones(4000), 100.0)
        assert out[-1] == pytest.approx(1.0, rel=1e-3)

    def test_attenuates_above_cutoff(self):
        lp = AnalogLowPass(cutoff_hz=2.0, order=4)
        fs = 200.0
        t = np.arange(8000) / fs
        tone = np.sin(2 * np.pi * 40.0 * t)
        out = lp.apply(tone, fs)
        assert np.max(np.abs(out[2000:])) < 0.01

    def test_zero_phase_preserves_peak_position(self):
        lp = AnalogLowPass(cutoff_hz=5.0, order=2)
        fs = 100.0
        x = np.exp(-0.5 * ((np.arange(1000) - 500) / 30.0) ** 2)
        causal = lp.apply(x, fs)
        zero_phase = lp.apply_zero_phase(x, fs)
        assert abs(int(np.argmax(zero_phase)) - 500) <= 1
        assert int(np.argmax(causal)) > 500  # causal filter delays

    def test_noise_bandwidth_order1(self):
        lp = AnalogLowPass(cutoff_hz=10.0, order=1)
        assert lp.noise_bandwidth_hz() == pytest.approx(10.0 * np.pi / 2,
                                                        rel=1e-6)

    def test_noise_bandwidth_shrinks_with_order(self):
        assert AnalogLowPass(10.0, 4).noise_bandwidth_hz() \
            < AnalogLowPass(10.0, 1).noise_bandwidth_hz()

    def test_rejects_cutoff_above_nyquist(self):
        lp = AnalogLowPass(cutoff_hz=60.0)
        with pytest.raises(ValueError, match="Nyquist"):
            lp.apply(np.zeros(100), 100.0)


class TestPotentiostat:
    def test_dac_quantization(self):
        pstat = Potentiostat(dac_resolution_v=1e-3)
        wave = pstat.program_waveform(np.array([0.6504]))
        assert wave[0] == pytest.approx(0.650)

    def test_ir_drop_reduces_effective_potential(self):
        pstat = Potentiostat(ir_compensation=0.0)
        cell = screen_printed_electrode(solution_resistance_ohm=1000.0)
        effective = pstat.effective_potential(0.65, 1e-5, cell)
        assert effective == pytest.approx(0.65 - 0.01)

    def test_compensation_restores_potential(self):
        uncompensated = Potentiostat(ir_compensation=0.0)
        compensated = Potentiostat(ir_compensation=0.9)
        cell = screen_printed_electrode(solution_resistance_ohm=1000.0)
        assert compensated.effective_potential(0.65, 1e-5, cell) \
            > uncompensated.effective_potential(0.65, 1e-5, cell)

    def test_compliance_check(self):
        pstat = Potentiostat(compliance_v=5.0)
        cell = screen_printed_electrode(solution_resistance_ohm=1000.0)
        assert pstat.within_compliance(1e-6, cell)
        assert not pstat.within_compliance(10e-3, cell)

    def test_max_current(self):
        pstat = Potentiostat(compliance_v=5.0)
        cell = screen_printed_electrode(solution_resistance_ohm=1000.0)
        assert pstat.max_current_a(cell) == pytest.approx(4e-3)

    def test_rejects_full_compensation(self):
        with pytest.raises(ValueError):
            Potentiostat(ir_compensation=1.0)


class TestAcquisitionChain:
    def make_chain(self, noise: float = 0.0) -> AcquisitionChain:
        return AcquisitionChain.for_full_scale(
            full_scale_current_a=1e-6,
            adc_rate_hz=10.0,
            white_noise_a_rthz=noise if noise > 0 else 1e-18)

    def test_reconstructs_dc_current(self, rng):
        chain = self.make_chain()
        trace = np.full(400, 5e-7)
        acquired = chain.acquire(trace, 20.0, rng=rng, add_noise=False)
        assert acquired.current_a[-1] == pytest.approx(5e-7, rel=1e-2)

    def test_output_at_adc_rate(self, rng):
        chain = self.make_chain()
        acquired = chain.acquire(np.zeros(400), 20.0, rng=rng)
        assert acquired.time_s.size == 200
        assert acquired.time_s[1] - acquired.time_s[0] == pytest.approx(0.1)

    def test_noise_floor_raises_rms_error(self):
        quiet = self.make_chain().acquire(
            np.full(2000, 5e-7), 20.0, rng=np.random.default_rng(5))
        noisy = self.make_chain(noise=1e-9).acquire(
            np.full(2000, 5e-7), 20.0, rng=np.random.default_rng(5))
        assert noisy.rms_error_a > quiet.rms_error_a

    def test_input_referred_noise_positive(self):
        chain = self.make_chain(noise=1e-12)
        assert chain.input_referred_noise_rms() > 0

    def test_dynamic_range_reasonable(self):
        chain = self.make_chain(noise=1e-12)
        assert 20.0 < chain.dynamic_range_db() < 160.0

    def test_rejects_non_multiple_rate(self, rng):
        chain = self.make_chain()
        with pytest.raises(ValueError, match="integer multiple"):
            chain.acquire(np.zeros(100), 25.0, rng=rng)

    def test_for_full_scale_validates(self):
        with pytest.raises(ValueError):
            AcquisitionChain.for_full_scale(full_scale_current_a=0.0)
