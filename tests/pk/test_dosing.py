"""Tests for repro.pk.dosing (schedules and superposition)."""

import numpy as np
import pytest

from repro.pk.dosing import (
    DoseEvent,
    DoseSchedule,
    concentration_from_doses,
    steady_state_trough_per_mol,
)
from repro.pk.models import OneCompartmentPK, Route


@pytest.fixture()
def params():
    return OneCompartmentPK(clearance_l_per_h=6.0, volume_l=50.0,
                            ka_per_h=1.2, bioavailability=0.6).params()


class TestDoseEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            DoseEvent(time_h=-1.0, dose_mol=1e-4)
        with pytest.raises(ValueError):
            DoseEvent(time_h=0.0, dose_mol=-1e-4)
        with pytest.raises(ValueError):
            DoseEvent(time_h=0.0, dose_mol=1e-4, route=Route.INFUSION)
        with pytest.raises(ValueError):
            DoseEvent(time_h=0.0, dose_mol=1e-4, duration_h=1.0)


class TestDoseSchedule:
    def test_regimen_builder(self):
        schedule = DoseSchedule.regimen(2e-4, 12.0, 4)
        assert schedule.n_doses == 4
        assert schedule.horizon_h == 36.0
        assert [e.time_h for e in schedule.events] == [0.0, 12.0, 24.0, 36.0]

    def test_events_sorted(self):
        schedule = DoseSchedule(events=(
            DoseEvent(time_h=12.0, dose_mol=1e-4),
            DoseEvent(time_h=0.0, dose_mol=2e-4)))
        assert [e.time_h for e in schedule.events] == [0.0, 12.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DoseSchedule(events=())

    def test_superposition_equals_manual_sum(self, params):
        schedule = DoseSchedule.regimen(2e-4, 12.0, 3)
        t = np.linspace(0.0, 48.0, 97)
        total = schedule.concentration(params, t)
        manual = sum(
            2e-4 * params.unit_response(t[None, :] - t0, Route.ORAL)
            for t0 in (0.0, 12.0, 24.0))
        np.testing.assert_allclose(total, manual, rtol=0, atol=1e-18)

    def test_mixed_routes(self, params):
        schedule = DoseSchedule(events=(
            DoseEvent(time_h=0.0, dose_mol=1e-4, route=Route.IV_BOLUS),
            DoseEvent(time_h=6.0, dose_mol=2e-4, route=Route.ORAL)))
        c = schedule.concentration(params, np.array([0.0, 7.0]))
        assert c[0, 0] == pytest.approx(1e-4 / 50.0)
        assert c[0, 1] > 0.0


class TestConcentrationFromDoses:
    def test_per_patient_doses(self, params):
        cohort = np.concatenate([params.clearance_l_per_h] * 3)
        from repro.pk.models import PKParams
        p3 = PKParams(clearance_l_per_h=cohort,
                      volume_l=np.full(3, 50.0),
                      ka_per_h=np.full(3, 1.2),
                      bioavailability=np.full(3, 0.6))
        doses = np.array([[1e-4, 1e-4],
                          [2e-4, 2e-4],
                          [4e-4, 4e-4]])
        c = concentration_from_doses(
            np.array([6.0, 18.0]), np.array([0.0, 12.0]), doses, p3)
        assert c.shape == (3, 2)
        # Identical patients, linear model: doubling doses doubles levels.
        np.testing.assert_allclose(c[1], 2.0 * c[0], rtol=1e-12)
        np.testing.assert_allclose(c[2], 4.0 * c[0], rtol=1e-12)

    def test_shared_dose_vector_broadcasts(self, params):
        c_shared = concentration_from_doses(
            np.array([6.0]), np.array([0.0]), 1e-4, params)
        c_explicit = concentration_from_doses(
            np.array([6.0]), np.array([0.0]), np.array([[1e-4]]), params)
        np.testing.assert_array_equal(c_shared, c_explicit)

    def test_shape_mismatch_rejected(self, params):
        with pytest.raises(ValueError):
            concentration_from_doses(
                np.array([6.0]), np.array([0.0, 12.0]),
                np.array([1e-4]), params)

    def test_negative_dose_rejected(self, params):
        with pytest.raises(ValueError):
            concentration_from_doses(
                np.array([6.0]), np.array([0.0]),
                np.array([-1e-4]), params)


class TestSteadyStateTrough:
    def test_matches_long_regimen(self, params):
        per_mol = steady_state_trough_per_mol(params, 12.0)
        schedule = DoseSchedule.regimen(1e-3, 12.0, 300)
        trough = schedule.concentration(
            params, np.array([300 * 12.0]))[:, 0]
        np.testing.assert_allclose(per_mol * 1e-3, trough, rtol=1e-12)

    def test_shorter_interval_raises_trough(self, params):
        q12 = steady_state_trough_per_mol(params, 12.0)
        q8 = steady_state_trough_per_mol(params, 8.0)
        assert np.all(q8 > q12)

    def test_validation(self, params):
        with pytest.raises(ValueError):
            steady_state_trough_per_mol(params, 0.0)
        with pytest.raises(ValueError):
            steady_state_trough_per_mol(params, 12.0, n_doses=0)
