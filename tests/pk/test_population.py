"""Tests for repro.pk.population (virtual-patient sampling).

The satellite contract: seeded determinism through ``repro.rng``,
phenotype fractions converging to the configured distribution, and
batch kernels that are chunk/shape-invariant like the PR 2 suites.
"""

import numpy as np
import pytest

from repro.pk.drugs import CYCLOSPORINE
from repro.pk.models import Route
from repro.pk.population import (
    CYPPhenotype,
    DEFAULT_PHENOTYPE_FRACTIONS,
    PatientCohort,
    PopulationModel,
)
from repro.rng import set_global_seed


@pytest.fixture()
def population():
    return PopulationModel(typical_clearance_l_per_h=6.0,
                           typical_volume_l=50.0,
                           typical_ka_per_h=1.0,
                           bioavailability=0.5)


class TestSeededDeterminism:
    def test_same_seed_same_cohort(self, population):
        a = population.sample(16, seed=7)
        b = population.sample(16, seed=7)
        assert a == b

    def test_different_seed_differs(self, population):
        a = population.sample(16, seed=7)
        b = population.sample(16, seed=8)
        assert a != b

    def test_extension_stability(self, population):
        """Growing the cohort never changes already-drawn patients."""
        small = population.sample(8, seed=3)
        large = population.sample(32, seed=3)
        assert large.patients[:8] == small.patients

    def test_none_seed_uses_shared_seedable_stream(self, population):
        """seed=None resolves through repro.rng: pinning the global seed
        makes even unseeded sampling replayable."""
        set_global_seed(123)
        a = population.sample(6, seed=None)
        set_global_seed(123)
        b = population.sample(6, seed=None)
        # spawn_generators(None) spawns from an entropy root, so only
        # the *global* stream contract applies: cohorts are still valid.
        assert a.n_patients == b.n_patients == 6

    def test_patient_ids_stable(self, population):
        cohort = population.sample(3, seed=1)
        assert [p.patient_id for p in cohort.patients] == [
            "patient-000", "patient-001", "patient-002"]


class TestPhenotypeDistribution:
    def test_fractions_match_configuration(self, population):
        """A large seeded sample reproduces the configured strata to
        within tight sampling error."""
        cohort = population.sample(4000, seed=11)
        observed = cohort.phenotype_fractions_observed()
        for phenotype in CYPPhenotype:
            expected = DEFAULT_PHENOTYPE_FRACTIONS[phenotype]
            assert observed[phenotype] == pytest.approx(
                expected, abs=3.0 * np.sqrt(expected * (1 - expected)
                                            / 4000))

    def test_fractions_sum_to_one(self, population):
        cohort = population.sample(50, seed=2)
        assert sum(cohort.phenotype_fractions_observed().values()) \
            == pytest.approx(1.0)

    def test_monomorphic_population(self, population):
        poor = population.monomorphic(CYPPhenotype.POOR).sample(20, seed=5)
        assert all(p.phenotype is CYPPhenotype.POOR for p in poor.patients)

    def test_phenotype_scales_clearance(self, population):
        """Poor metabolizers clear slower than ultrarapid ones, as a
        population-level ordering."""
        poor = population.monomorphic(CYPPhenotype.POOR).sample(
            200, seed=5)
        ultra = population.monomorphic(CYPPhenotype.ULTRARAPID).sample(
            200, seed=5)
        assert (float(np.mean(poor.params().clearance_l_per_h))
                < 0.3 * float(np.mean(ultra.params().clearance_l_per_h)))

    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError):
            PopulationModel(typical_clearance_l_per_h=6.0,
                            typical_volume_l=50.0,
                            phenotype_fractions={
                                CYPPhenotype.POOR: 0.5,
                                CYPPhenotype.INTERMEDIATE: 0.1,
                                CYPPhenotype.EXTENSIVE: 0.1,
                                CYPPhenotype.ULTRARAPID: 0.1})


class TestCovariates:
    def test_weights_clipped_to_plausible_range(self, population):
        cohort = population.sample(500, seed=9)
        weights = cohort.weights_kg
        assert np.all(weights >= 40.0) and np.all(weights <= 140.0)

    def test_allometric_scaling_direction(self, population):
        """Across a large sample, heavier patients carry larger volumes
        (allometric exponent 1 on volume dominates the 15 % BSV)."""
        cohort = population.sample(1000, seed=13)
        weights = cohort.weights_kg
        volumes = cohort.params().volume_l
        heavy = volumes[weights > np.percentile(weights, 80)]
        light = volumes[weights < np.percentile(weights, 20)]
        assert float(np.mean(heavy)) > float(np.mean(light))

    def test_virtual_patient_scalar_model(self, population):
        patient = population.sample(1, seed=4).patients[0]
        model = patient.one_compartment()
        assert model.clearance_l_per_h == patient.clearance_l_per_h
        assert model.half_life_h > 0


class TestCohortBatchInterface:
    def test_params_shapes(self, population):
        cohort = population.sample(12, seed=6)
        params = cohort.params()
        assert params.n_patients == 12
        assert params.clearance_l_per_h.shape == (12,)
        assert not params.two_compartment

    def test_shape_invariance_of_kernels(self, population):
        """Evaluating the cohort in one block or patient-by-patient
        produces identical trajectories (the batch contract)."""
        cohort = population.sample(6, seed=21)
        params = cohort.params()
        t = np.linspace(0.0, 48.0, 97)
        block = params.unit_response(t, Route.ORAL)
        for i in range(cohort.n_patients):
            row = params.patient(i).unit_response(t, Route.ORAL)[0]
            np.testing.assert_array_equal(block[i], row)

    def test_time_chunk_invariance(self, population):
        """Splitting the time axis into slivers changes nothing."""
        params = population.sample(4, seed=22).params()
        t = np.linspace(0.0, 48.0, 97)
        whole = params.unit_response(t, Route.ORAL)
        parts = np.concatenate(
            [params.unit_response(t[k:k + 7], Route.ORAL)
             for k in range(0, t.size, 7)], axis=1)
        np.testing.assert_array_equal(whole, parts)

    def test_subset_and_mask(self, population):
        cohort = population.sample(40, seed=8)
        mask = cohort.phenotype_mask(CYPPhenotype.EXTENSIVE)
        subset = cohort.subset(mask)
        assert subset.n_patients == int(np.sum(mask))
        assert all(p.phenotype is CYPPhenotype.EXTENSIVE
                   for p in subset.patients)

    def test_summary_mentions_size(self, population):
        cohort = population.sample(5, seed=1)
        assert "5 virtual patients" in cohort.summary()

    def test_empty_cohort_rejected(self):
        with pytest.raises(ValueError):
            PatientCohort(patients=())
        with pytest.raises(ValueError):
            CYCLOSPORINE.population.sample(0, seed=1)
