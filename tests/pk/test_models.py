"""Tests for repro.pk.models (compartmental PK kernels)."""

import numpy as np
import pytest

from repro.pk.models import (
    OneCompartmentPK,
    PKParams,
    Route,
    TwoCompartmentPK,
    one_compartment_bolus_batch,
    one_compartment_infusion_batch,
    one_compartment_oral_batch,
    two_compartment_bolus_batch,
    two_compartment_oral_batch,
)


@pytest.fixture()
def one_cpt():
    return OneCompartmentPK(clearance_l_per_h=6.0, volume_l=50.0,
                            ka_per_h=1.2, bioavailability=0.6)


@pytest.fixture()
def two_cpt():
    return TwoCompartmentPK(clearance_l_per_h=6.0, volume_central_l=30.0,
                            intercompartmental_l_per_h=9.0,
                            volume_peripheral_l=60.0,
                            ka_per_h=1.2, bioavailability=0.6)


def _auc(c, t):
    return float(np.trapezoid(c, t))


class TestMassBalance:
    """AUC = F*D/CL is the model-free invariant every kernel must obey."""

    def test_one_compartment_bolus(self, one_cpt):
        t = np.linspace(0.0, 400.0, 200001)
        c = one_cpt.concentration(t, 1e-3, Route.IV_BOLUS)
        assert _auc(c, t) == pytest.approx(1e-3 / 6.0, rel=1e-4)

    def test_one_compartment_oral(self, one_cpt):
        t = np.linspace(0.0, 400.0, 200001)
        c = one_cpt.concentration(t, 1e-3, Route.ORAL)
        assert _auc(c, t) == pytest.approx(0.6 * 1e-3 / 6.0, rel=1e-4)

    def test_one_compartment_infusion(self, one_cpt):
        t = np.linspace(0.0, 400.0, 200001)
        c = one_cpt.concentration(t, 1e-3, Route.INFUSION, duration_h=3.0)
        assert _auc(c, t) == pytest.approx(1e-3 / 6.0, rel=1e-4)

    def test_two_compartment_bolus(self, two_cpt):
        t = np.linspace(0.0, 600.0, 300001)
        c = two_cpt.concentration(t, 1e-3, Route.IV_BOLUS)
        assert _auc(c, t) == pytest.approx(1e-3 / 6.0, rel=1e-4)

    def test_two_compartment_oral(self, two_cpt):
        t = np.linspace(0.0, 600.0, 300001)
        c = two_cpt.concentration(t, 1e-3, Route.ORAL)
        assert _auc(c, t) == pytest.approx(0.6 * 1e-3 / 6.0, rel=1e-4)

    def test_two_compartment_infusion(self, two_cpt):
        t = np.linspace(0.0, 600.0, 300001)
        c = two_cpt.concentration(t, 1e-3, Route.INFUSION, duration_h=3.0)
        assert _auc(c, t) == pytest.approx(1e-3 / 6.0, rel=1e-4)


class TestShapes:
    def test_future_doses_contribute_zero(self, one_cpt, two_cpt):
        t = np.array([-5.0, -1e-12, 0.0, 1.0])
        for model, route in ((one_cpt, Route.ORAL),
                             (one_cpt, Route.IV_BOLUS),
                             (two_cpt, Route.ORAL)):
            c = model.concentration(t, 1e-3, route)
            assert c[0] == 0.0 and c[1] == 0.0
            assert c[3] > 0.0

    def test_bolus_initial_concentration(self, one_cpt):
        assert one_cpt.concentration(0.0, 1e-3, Route.IV_BOLUS) \
            == pytest.approx(1e-3 / 50.0)

    def test_oral_starts_at_zero_and_peaks_later(self, one_cpt):
        t = np.linspace(0.0, 48.0, 4801)
        c = one_cpt.concentration(t, 1e-3, Route.ORAL)
        assert c[0] == 0.0
        peak = int(np.argmax(c))
        assert 0 < peak < c.size - 1

    def test_infusion_peaks_at_end_of_infusion(self, one_cpt):
        t = np.linspace(0.0, 24.0, 2401)
        c = one_cpt.concentration(t, 1e-3, Route.INFUSION, duration_h=2.0)
        assert t[int(np.argmax(c))] == pytest.approx(2.0)

    def test_scalar_in_scalar_out(self, one_cpt):
        assert isinstance(one_cpt.concentration(3.0, 1e-3), float)

    def test_batch_matches_scalar_rows(self):
        cl = np.array([4.0, 6.0, 9.0])
        v = np.array([40.0, 50.0, 60.0])
        t = np.linspace(0.0, 24.0, 49)
        batch = one_compartment_bolus_batch(t[None, :], cl, v)
        assert batch.shape == (3, 49)
        for i in range(3):
            row = one_compartment_bolus_batch(t, cl[i], v[i])
            np.testing.assert_allclose(batch[i], row, rtol=0, atol=0)

    def test_half_life(self, one_cpt):
        c0 = one_cpt.concentration(1.0, 1e-3, Route.IV_BOLUS)
        c1 = one_cpt.concentration(1.0 + one_cpt.half_life_h, 1e-3,
                                   Route.IV_BOLUS)
        assert c1 == pytest.approx(0.5 * c0)


class TestNumericalEdges:
    def test_flip_flop_limit_is_continuous(self):
        t = np.linspace(0.01, 24.0, 200)
        exact = one_compartment_oral_batch(t, 8.0, 10.0, 0.8, 1.0)
        near = one_compartment_oral_batch(t, 8.0, 10.0, 0.8 * (1 + 1e-7),
                                          1.0)
        assert np.max(np.abs(exact - near)) / np.max(exact) < 1e-5

    def test_two_compartment_is_biexponential(self, two_cpt):
        alpha, beta = two_cpt.hybrid_rates_per_h
        assert alpha > beta > 0
        # Terminal slope matches beta.
        t = np.array([80.0, 90.0])
        c = two_cpt.concentration(t, 1e-3, Route.IV_BOLUS)
        slope = -np.log(c[1] / c[0]) / 10.0
        assert slope == pytest.approx(beta, rel=1e-3)

    def test_two_compartment_collapses_to_one(self):
        """Vanishing peripheral exchange reproduces the 1-cpt curve."""
        t = np.linspace(0.0, 48.0, 481)
        two = two_compartment_bolus_batch(t, 6.0, 50.0, 1e-9, 1e-6)
        one = one_compartment_bolus_batch(t, 6.0, 50.0)
        np.testing.assert_allclose(two, one, rtol=1e-6)

    def test_infusion_requires_duration(self):
        with pytest.raises(ValueError):
            one_compartment_infusion_batch(np.array([1.0]), 0.0, 6.0, 50.0)


class TestPKParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            PKParams(clearance_l_per_h=np.array([-1.0]),
                     volume_l=np.array([50.0]),
                     ka_per_h=np.array([1.0]),
                     bioavailability=np.array([1.0]))
        with pytest.raises(ValueError):
            PKParams(clearance_l_per_h=np.array([1.0]),
                     volume_l=np.array([50.0]),
                     ka_per_h=np.array([1.0]),
                     bioavailability=np.array([1.5]))
        with pytest.raises(ValueError):  # Q without V2
            PKParams(clearance_l_per_h=np.array([1.0]),
                     volume_l=np.array([50.0]),
                     ka_per_h=np.array([1.0]),
                     bioavailability=np.array([1.0]),
                     intercompartmental_l_per_h=np.array([5.0]))

    def test_unit_response_dispatch(self, one_cpt, two_cpt):
        t = np.linspace(0.0, 24.0, 49)
        np.testing.assert_array_equal(
            one_cpt.params().unit_response(t, Route.IV_BOLUS)[0],
            one_compartment_bolus_batch(t, 6.0, 50.0))
        np.testing.assert_array_equal(
            two_cpt.params().unit_response(t, Route.ORAL)[0],
            two_compartment_oral_batch(t, 6.0, 30.0, 9.0, 60.0, 1.2, 0.6))

    def test_patient_slice(self, one_cpt):
        params = PKParams(
            clearance_l_per_h=np.array([4.0, 6.0]),
            volume_l=np.array([40.0, 50.0]),
            ka_per_h=np.array([1.0, 1.2]),
            bioavailability=np.array([0.5, 0.6]))
        sliced = params.patient(1)
        assert sliced.n_patients == 1
        assert float(sliced.clearance_l_per_h[0]) == 6.0
        assert not sliced.two_compartment
