"""Tests for the python -m repro.experiments CLI."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_group_run(self, capsys):
        exit_code = main(["--group", "glucose", "--blanks", "4",
                          "--replicates", "2"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 1" in output
        assert "glucose" in output
        assert "this work" in output

    def test_seed_changes_noise_not_structure(self, capsys):
        main(["--group", "glutamate", "--seed", "3", "--blanks", "4",
              "--replicates", "2"])
        first = capsys.readouterr().out
        main(["--group", "glutamate", "--seed", "4", "--blanks", "4",
              "--replicates", "2"])
        second = capsys.readouterr().out
        assert first != second             # noise differs
        assert first.count("\n") == second.count("\n")  # structure same

    def test_report_requires_full_table(self, capsys):
        with pytest.raises(SystemExit):
            main(["--report", "--group", "cyp"])

    def test_rejects_unknown_group(self):
        with pytest.raises(SystemExit):
            main(["--group", "cholesterol"])
