"""Tests for the experiment harness (tables and figure-equivalents)."""

import numpy as np
import pytest

from repro.experiments.figures import (
    calibration_curve_figure,
    chrono_staircase_figure,
    comparison_chart,
    cv_family_figure,
)
from repro.experiments.report import build_experiments_report
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.experiments.table2 import rows_to_text, run_table2
from repro.core.registry import spec_by_id


class TestTable1:
    def test_matches_paper(self):
        assert run_table1()["matches"] is True

    def test_paper_rows_complete(self):
        assert len(PAPER_TABLE1) == 7

    def test_render(self):
        text = run_table1()["text"]
        assert "GLUCOSE" in text
        assert "Cyclic voltammetry" in text


class TestTable2Glucose:
    """One group through the full pipeline (the full table runs in the
    benchmarks; one group keeps the unit suite fast)."""

    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2(groups=["glucose"], seed=7)

    def test_five_rows(self, rows):
        assert len(rows) == 5

    def test_sensitivities_reproduce(self, rows):
        for row in rows.values():
            assert row.sensitivity_ratio == pytest.approx(1.0, abs=0.15)

    def test_this_work_wins_sensitivity(self, rows):
        best = max(rows.values(), key=lambda r: r.measured_sensitivity)
        assert best.spec.is_this_work

    def test_this_work_wins_lod(self, rows):
        best = min(rows.values(), key=lambda r: r.measured_lod_um)
        assert best.spec.is_this_work

    def test_text_rendering(self, rows):
        text = rows_to_text(rows)
        assert "glucose" in text
        assert "this work" in text


class TestFigures:
    def test_staircase_monotonic(self):
        figure = chrono_staircase_figure(n_additions=5, step_duration_s=10.0)
        current = figure["acquired_current_a"]
        n_step = current.size // 5
        plateaus = [current[(k + 1) * n_step - 1] for k in range(5)]
        assert np.all(np.diff(plateaus) > 0)

    def test_cv_family_peak_grows(self):
        figure = cv_family_figure(n_levels=4)
        heights = figure["peak_heights_a"]
        assert heights[-1] > heights[0]
        assert len(figure["voltammograms"]) == 4

    def test_calibration_curve_bends_over(self):
        figure = calibration_curve_figure(spec_by_id("glucose/this-work"),
                                          n_points=8)
        signals = figure["signals_a"]
        concentrations = figure["concentrations_molar"]
        # Slope in the last segment below slope in the first segment.
        first = (signals[1] - signals[0]) / (concentrations[1]
                                             - concentrations[0])
        last = (signals[-1] - signals[-2]) / (concentrations[-1]
                                              - concentrations[-2])
        assert last < first

    def test_comparison_chart_groups(self):
        rows = run_table2(groups=["glucose"], seed=7)
        chart = comparison_chart(rows)
        assert set(chart) == {"glucose"}
        assert len(chart["glucose"]) == 5


class TestReport:
    def test_report_contains_all_sections(self):
        rows = run_table2(groups=["glucose"], seed=7)
        report = build_experiments_report(rows)
        assert "Table 1" in report
        assert "Table 2" in report
        assert "Agreement ratios" in report
