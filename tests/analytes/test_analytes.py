"""Tests for repro.analytes."""

import numpy as np
import pytest

from repro.analytes.catalog import (
    ALL_ANALYTES,
    AnalyteClass,
    CYCLOPHOSPHAMIDE,
    FTORAFUR,
    GLUCOSE,
    IFOSFAMIDE,
    analyte_by_name,
)
from repro.analytes.physiological import (
    ConcentrationTrajectory,
    covers_physiological_range,
    physiological_range,
)


class TestCatalog:
    def test_seven_platform_analytes(self):
        assert len(ALL_ANALYTES) == 7

    def test_three_drugs(self):
        drugs = [a for a in ALL_ANALYTES
                 if a.analyte_class is AnalyteClass.DRUG]
        assert {a.name for a in drugs} == {
            "cyclophosphamide", "ifosfamide", "ftorafur"}

    def test_cp_and_ifosfamide_are_isomers(self):
        assert CYCLOPHOSPHAMIDE.molecular_weight_g_mol \
            == pytest.approx(IFOSFAMIDE.molecular_weight_g_mol)

    def test_lookup(self):
        assert analyte_by_name("glucose") is GLUCOSE
        with pytest.raises(KeyError, match="available"):
            analyte_by_name("caffeine")

    def test_diffusion_coefficients_physical(self):
        for analyte in ALL_ANALYTES:
            assert 1e-10 < analyte.diffusion_m2_s < 1e-8


class TestPhysiologicalRanges:
    def test_glucose_window(self):
        window = physiological_range("glucose")
        assert window.contains(5e-3)       # normoglycemia
        assert not window.contains(50e-3)  # far beyond hyperglycemia

    def test_span(self):
        window = physiological_range("glucose")
        assert window.span_molar == pytest.approx(7e-3)

    def test_unknown_analyte(self):
        with pytest.raises(KeyError, match="available"):
            physiological_range("vibranium")


class TestCoverageClaims:
    """Section 3.2.2/3.2.3 narratives about range fit."""

    def test_goran_lactate_range_misses_physiology(self):
        # [16]: 0.014-0.325 mM "cannot fit with physiological lactate".
        assert not covers_physiological_range("lactate", 0.014e-3, 0.325e-3)

    def test_this_work_lactate_range_fits(self):
        # This work: 0-1 mM covers resting blood lactate (0.5-2 clipped
        # at 1... the cell-culture window is the stated use case).
        assert covers_physiological_range("cell-culture lactate",
                                          0.0, 1.0e-3)

    def test_this_work_glutamate_range_fits_culture(self):
        # 0-2 mM wide range "useful for ... cell culture monitoring".
        assert covers_physiological_range("glutamate", 0.0, 2.0e-3)

    def test_pan_glutamate_range_too_narrow(self):
        # [33]: 1-13 uM window misses most of the brain-tissue range.
        assert not covers_physiological_range("glutamate", 1e-6, 13e-6)

    def test_drug_windows_within_sensor_ranges(self):
        # The CYP sensors' ranges cover the therapeutic windows.
        assert covers_physiological_range("cyclophosphamide", 0.0, 70e-6)
        assert covers_physiological_range("ifosfamide", 0.0, 140e-6)
        assert covers_physiological_range("ftorafur", 0.0, 8e-6)

    def test_ftorafur_exists(self):
        assert FTORAFUR.analyte_class is AnalyteClass.DRUG

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            covers_physiological_range("glucose", 1e-3, 1e-3)


class TestConcentrationTrajectory:
    def test_constant_without_components(self):
        trajectory = ConcentrationTrajectory(baseline_molar=1e-3)
        hours = np.linspace(0.0, 48.0, 97)
        np.testing.assert_allclose(trajectory.mean_molar(hours), 1e-3)

    def test_scalar_and_array_agree(self):
        trajectory = ConcentrationTrajectory.for_analyte("glucose")
        hours = np.array([0.0, 5.5, 23.9, 100.0])
        array = trajectory.mean_molar(hours)
        for i, h in enumerate(hours):
            assert array[i] == pytest.approx(
                trajectory.mean_molar(float(h)), rel=1e-12)

    def test_circadian_period(self):
        trajectory = ConcentrationTrajectory(
            baseline_molar=1e-3, circadian_amplitude_molar=2e-4)
        assert trajectory.mean_molar(30.0) == pytest.approx(
            trajectory.mean_molar(6.0), rel=1e-12)

    def test_excursions_decay_between_events(self):
        trajectory = ConcentrationTrajectory(
            baseline_molar=1e-3,
            excursion_amplitude_molar=5e-4,
            excursion_interval_h=6.0,
            excursion_tau_h=1.0)
        just_after = trajectory.mean_molar(6.01)
        just_before = trajectory.mean_molar(5.99)
        assert just_after > just_before

    def test_floor_clamps(self):
        trajectory = ConcentrationTrajectory(
            baseline_molar=1e-4,
            circadian_amplitude_molar=5e-4,
            floor_molar=5e-5)
        hours = np.linspace(0.0, 24.0, 241)
        assert float(np.min(trajectory.mean_molar(hours))) \
            == pytest.approx(5e-5)

    def test_for_analyte_stays_clinically_plausible(self):
        for analyte in ("glucose", "lactate", "cyclophosphamide"):
            window = physiological_range(analyte)
            trajectory = ConcentrationTrajectory.for_analyte(analyte)
            hours = np.linspace(0.0, 72.0, 432)
            mean = trajectory.mean_molar(hours)
            assert float(np.min(mean)) > 0.0
            assert float(np.max(mean)) < 2.0 * window.high_molar

    def test_rejects_negative_time(self):
        trajectory = ConcentrationTrajectory(baseline_molar=1e-3)
        with pytest.raises(ValueError):
            trajectory.mean_molar(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConcentrationTrajectory(baseline_molar=0.0)
        with pytest.raises(ValueError):
            ConcentrationTrajectory(baseline_molar=1e-3,
                                    noise_sigma_molar=-1.0)
        with pytest.raises(ValueError):
            ConcentrationTrajectory(baseline_molar=1e-3,
                                    excursion_tau_h=0.0)
