"""Workload registry + the three built-in spec-to-plan adapters."""

import numpy as np
import pytest

from repro.engine import BatchPlan, EstimationPlan, MonitorPlan, TherapyPlan
from repro.scenarios import (
    ResultProtocol,
    WORKLOADS,
    Workload,
    available_workloads,
    calibration_results_from_batch,
    register_workload,
    run_scenario,
    workload_by_name,
    Scenario,
)
from repro.therapy import (
    BayesianTroughController,
    FixedRegimenController,
    ProportionalTroughController,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert available_workloads() == (
            "calibration", "estimation", "monitor", "therapy")

    def test_every_workload_satisfies_the_protocol(self):
        for name in available_workloads():
            assert isinstance(workload_by_name(name), Workload)

    def test_plan_types(self):
        assert workload_by_name("calibration").plan_type is BatchPlan
        assert workload_by_name("monitor").plan_type is MonitorPlan
        assert workload_by_name("therapy").plan_type is TherapyPlan
        assert workload_by_name("estimation").plan_type is EstimationPlan

    def test_unknown_workload_lists_registry(self):
        with pytest.raises(KeyError, match="registered"):
            workload_by_name("petri-dish")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload(workload_by_name("monitor"))

    def test_replace_registration_allowed(self):
        monitor = workload_by_name("monitor")
        assert register_workload(monitor, replace=True) is monitor
        assert WORKLOADS["monitor"] is monitor

    def test_describe_and_example_spec(self):
        for name in available_workloads():
            workload = workload_by_name(name)
            text = workload.describe()
            assert name in text
            assert "example spec" in text
            assert isinstance(workload.example_spec(), dict)

    def test_example_specs_build_valid_plans(self):
        for name in available_workloads():
            workload = workload_by_name(name)
            plan = workload.build_plan(workload.example_spec(), seed=1)
            assert isinstance(plan, workload.plan_type)


class TestCalibrationWorkload:
    WORKLOAD = workload_by_name("calibration")

    def test_build_plan_resolves_catalog_ids(self):
        plan = self.WORKLOAD.build_plan(
            {"sensors": ["glucose/this-work", "lactate/this-work"],
             "n_blanks": 2, "n_replicates": 1}, seed=7)
        assert len(plan.sensors) == 2
        assert plan.seed == 7
        # Leading blank group with its own replicate count.
        assert plan.concentrations_molar[0][0] == 0.0
        assert plan.replicates_for(0)[0] == 2

    def test_upper_molar_scalar_and_per_sensor(self):
        shared = self.WORKLOAD.build_plan(
            {"sensors": ["glucose/this-work", "lactate/this-work"],
             "upper_molar": 1e-3}, seed=0)
        per_sensor = self.WORKLOAD.build_plan(
            {"sensors": ["glucose/this-work", "lactate/this-work"],
             "upper_molar": [1e-3, 5e-4]}, seed=0)
        assert (max(shared.concentrations_molar[0])
                == max(shared.concentrations_molar[1]))
        assert (max(per_sensor.concentrations_molar[1])
                == pytest.approx(0.5 * max(per_sensor.concentrations_molar[0])))

    def test_upper_molar_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="upper_molar"):
            self.WORKLOAD.build_plan(
                {"sensors": ["glucose/this-work"],
                 "upper_molar": [1e-3, 1e-3]}, seed=0)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            self.WORKLOAD.build_plan(
                {"sensors": ["glucose/this-work"], "wat": 1}, seed=0)

    def test_unknown_sensor_id_rejected(self):
        with pytest.raises(KeyError):
            self.WORKLOAD.build_plan({"sensors": ["glucose/nope"]}, seed=0)

    def test_sensors_must_be_a_list(self):
        with pytest.raises(ValueError, match="sensors"):
            self.WORKLOAD.build_plan({"sensors": "glucose/this-work"},
                                     seed=0)

    def test_summarize_renders_table2_metrics(self):
        scenario = Scenario(
            workload="calibration", name="cal", seed=7,
            spec={"sensors": ["glucose/this-work"], "n_blanks": 3,
                  "n_replicates": 1})
        result = run_scenario(scenario)
        assert isinstance(result, ResultProtocol)
        rows = calibration_results_from_batch(result)
        assert len(rows) == 1
        assert "uA mM^-1 cm^-2" in self.WORKLOAD.summarize(result)

    def test_results_from_batch_rejects_blankless_plans(self):
        from repro.engine import run_batch

        plan = BatchPlan(
            sensors=self.WORKLOAD.build_plan(
                {"sensors": ["glucose/this-work"]}, seed=0).sensors,
            concentrations_molar=((1e-4, 2e-4, 3e-4),),
            replicates=1, seed=0, add_noise=False)
        with pytest.raises(ValueError, match="blank"):
            calibration_results_from_batch(run_batch(plan))


class TestMonitorWorkload:
    WORKLOAD = workload_by_name("monitor")

    SPEC = {
        "cohort": {"sensor": "glucose/this-work", "analyte": "glucose",
                   "n_patients": 2, "wander_sigma_a": 2e-9},
        "duration_h": 6.0,
        "sample_period_s": 600.0,
        "recalibration": {"reference_interval_h": 2.0, "tolerance": 0.1},
        "keep_traces": False,
    }

    def test_build_plan(self):
        plan = self.WORKLOAD.build_plan(self.SPEC, seed=3)
        assert plan.n_channels == 2
        assert plan.seed == 3
        assert plan.recalibration.reference_interval_h == 2.0
        assert plan.channels[0].wander_sigma_a == 2e-9
        assert not plan.keep_traces

    def test_unknown_cohort_keys_rejected(self):
        spec = dict(self.SPEC)
        spec["cohort"] = {**spec["cohort"], "bogus": 1}
        with pytest.raises(ValueError, match="unknown keys"):
            self.WORKLOAD.build_plan(spec, seed=0)

    def test_missing_duration_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            self.WORKLOAD.build_plan({"cohort": self.SPEC["cohort"]},
                                     seed=0)

    def test_unknown_analyte_rejected(self):
        spec = dict(self.SPEC)
        spec["cohort"] = {**spec["cohort"], "analyte": "unobtainium"}
        with pytest.raises(KeyError):
            self.WORKLOAD.build_plan(spec, seed=0)


class TestEstimationWorkload:
    WORKLOAD = workload_by_name("estimation")

    SPEC = {
        "cohort": {"sensor": "glucose/this-work", "analyte": "glucose",
                   "n_patients": 2, "wander_sigma_a": 2e-9},
        "duration_h": 6.0,
        "sample_period_s": 600.0,
        "smooth": False,
        "interval_level": 0.9,
    }

    def test_build_plan_wraps_a_monitor_plan(self):
        plan = self.WORKLOAD.build_plan(self.SPEC, seed=3)
        assert isinstance(plan, EstimationPlan)
        assert plan.n_channels == 2
        assert plan.seed == 3
        assert plan.smooth is False
        assert plan.interval_level == 0.9

    def test_keep_traces_forced_on(self):
        plan = self.WORKLOAD.build_plan(self.SPEC, seed=0)
        assert plan.monitor.keep_traces

    def test_explicit_keep_traces_false_rejected(self):
        with pytest.raises(ValueError, match="keep_traces"):
            self.WORKLOAD.build_plan({**self.SPEC, "keep_traces": False},
                                     seed=0)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            self.WORKLOAD.build_plan({**self.SPEC, "wat": 1}, seed=0)

    def test_run_scenario_summarizes_coverage(self):
        scenario = Scenario(workload="estimation", name="est", seed=7,
                            spec=self.SPEC)
        result = run_scenario(scenario)
        assert isinstance(result, ResultProtocol)
        assert "coverage" in self.WORKLOAD.summarize(result)


class TestTherapyWorkload:
    WORKLOAD = workload_by_name("therapy")

    def spec(self, controller):
        return {
            "drug": "cyclosporine",
            "n_patients": 2,
            "cohort_seed": 7,
            "controller": controller,
            "n_doses": 2,
            "dose_interval_h": 6.0,
            "sample_period_s": 1800.0,
            "keep_traces": False,
        }

    def test_cohort_seed_is_part_of_the_artifact(self):
        spec = self.spec({"kind": "fixed", "dose_mg": 200.0})
        a = self.WORKLOAD.build_plan(spec, seed=1)
        b = self.WORKLOAD.build_plan(spec, seed=99)
        # Different scenario seeds, same sampled population.
        assert a.cohort == b.cohort
        c = self.WORKLOAD.build_plan({**spec, "cohort_seed": 8}, seed=1)
        assert a.cohort != c.cohort

    def test_controller_kinds(self):
        fixed = self.WORKLOAD.build_plan(
            self.spec({"kind": "fixed", "dose_mg": 200.0}), seed=0)
        assert isinstance(fixed.controller, FixedRegimenController)
        proportional = self.WORKLOAD.build_plan(
            self.spec({"kind": "proportional",
                       "initial_dose_mol": 2e-4}), seed=0)
        assert isinstance(proportional.controller,
                          ProportionalTroughController)
        bayesian = self.WORKLOAD.build_plan(
            self.spec({"kind": "bayesian", "n_grid": 21}), seed=0)
        assert isinstance(bayesian.controller, BayesianTroughController)
        assert bayesian.controller.n_grid == 21

    def test_controller_defaults_come_from_the_drug_catalog(self):
        from repro.pk import CYCLOSPORINE

        plan = self.WORKLOAD.build_plan(
            self.spec({"kind": "bayesian"}), seed=0)
        controller = plan.controller
        assert (controller.target_trough_molar
                == CYCLOSPORINE.window.target_trough_molar)
        assert (controller.prior.clearance_l_per_h
                == CYCLOSPORINE.population.typical_clearance_l_per_h)
        assert plan.window == CYCLOSPORINE.window

    def test_fixed_dose_mg_converts_through_molar_mass(self):
        from repro.pk import CYCLOSPORINE

        plan = self.WORKLOAD.build_plan(
            self.spec({"kind": "fixed", "dose_mg": 200.0}), seed=0)
        assert plan.controller.dose_mol == pytest.approx(
            CYCLOSPORINE.dose_mol_from_mg(200.0))

    def test_fixed_needs_exactly_one_dose_form(self):
        for controller in ({"kind": "fixed"},
                           {"kind": "fixed", "dose_mg": 1.0,
                            "dose_mol": 1e-4}):
            with pytest.raises(ValueError, match="exactly one"):
                self.WORKLOAD.build_plan(self.spec(controller), seed=0)

    def test_fixed_rejects_a_target_instead_of_ignoring_it(self):
        """A fixed regimen cannot act on a target; accepting one would
        silently discard what the user asked for."""
        with pytest.raises(ValueError, match="unknown keys"):
            self.WORKLOAD.build_plan(
                self.spec({"kind": "fixed", "dose_mg": 200.0,
                           "target_trough_molar": 3e-6}), seed=0)

    def test_bayesian_initial_dose_mg_converts(self):
        from repro.pk import CYCLOSPORINE

        plan = self.WORKLOAD.build_plan(
            self.spec({"kind": "bayesian", "initial_dose_mg": 250.0}),
            seed=0)
        assert plan.controller.initial_dose_mol == pytest.approx(
            CYCLOSPORINE.dose_mol_from_mg(250.0))

    def test_bayesian_rejects_both_initial_dose_forms(self):
        with pytest.raises(ValueError, match="at most one"):
            self.WORKLOAD.build_plan(
                self.spec({"kind": "bayesian", "initial_dose_mg": 250.0,
                           "initial_dose_mol": 2e-4}), seed=0)

    def test_unknown_controller_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown controller kind"):
            self.WORKLOAD.build_plan(self.spec({"kind": "pid"}), seed=0)

    def test_unknown_drug_rejected(self):
        spec = self.spec({"kind": "bayesian"})
        spec["drug"] = "unobtainium"
        with pytest.raises(KeyError):
            self.WORKLOAD.build_plan(spec, seed=0)

    def test_route_string_resolves(self):
        from repro.pk.models import Route

        spec = self.spec({"kind": "fixed", "dose_mg": 200.0})
        spec["route"] = "iv_bolus"
        assert self.WORKLOAD.build_plan(spec, seed=0).route is Route.IV_BOLUS


class TestResultProtocol:
    def test_every_workload_result_implements_the_contract(self):
        scenarios = [
            Scenario(workload="calibration", name="cal", seed=1,
                     spec={"sensors": ["glucose/this-work"],
                           "n_blanks": 2, "n_replicates": 1}),
            Scenario(workload="monitor", name="mon", seed=1,
                     spec=TestMonitorWorkload.SPEC),
            Scenario(workload="therapy", name="ther", seed=1,
                     spec={"drug": "cyclosporine", "n_patients": 2,
                           "cohort_seed": 7,
                           "controller": {"kind": "fixed",
                                          "dose_mg": 200.0},
                           "n_doses": 2, "dose_interval_h": 6.0,
                           "sample_period_s": 1800.0,
                           "keep_traces": False}),
            Scenario(workload="estimation", name="est", seed=1,
                     spec=TestEstimationWorkload.SPEC),
        ]
        import json

        for scenario in scenarios:
            result = run_scenario(scenario)
            assert isinstance(result, ResultProtocol)
            assert scenario.workload in result.summary_row()["workload"]
            assert result.summary().strip()
            json.dumps(result.to_dict())  # must be JSON-serializable

    def test_batch_scalar_reference_is_bit_identical(self):
        scenario = Scenario(
            workload="calibration", name="cal", seed=5,
            spec={"sensors": ["glucose/this-work"], "n_blanks": 2,
                  "n_replicates": 2})
        batch = run_scenario(scenario)
        scalar = run_scenario(scenario, scalar=True)
        np.testing.assert_array_equal(batch.flat_values(),
                                      scalar.flat_values())
