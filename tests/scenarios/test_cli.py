"""Tests for the python -m repro scenario CLI."""

import json

import pytest

from repro.scenarios import Scenario
from repro.scenarios.cli import main


@pytest.fixture()
def scenario_file(tmp_path):
    return Scenario(
        workload="calibration", name="cli-smoke", seed=7,
        spec={"sensors": ["glucose/this-work"], "n_blanks": 3,
              "n_replicates": 1},
    ).save(tmp_path / "scenario.json")


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert repro.__version__ in output
        assert output.startswith("repro ")


class TestList:
    def test_lists_every_workload(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("calibration", "estimation", "monitor", "therapy"):
            assert name in output


class TestDescribe:
    @pytest.mark.parametrize("name", ["calibration", "estimation",
                                      "monitor", "therapy"])
    def test_describe_prints_example_spec(self, capsys, name):
        assert main(["describe", name]) == 0
        output = capsys.readouterr().out
        assert "example spec" in output
        assert "spec fields" in output

    def test_unknown_workload_fails_with_registry_listing(self, capsys):
        assert main(["describe", "petri-dish"]) == 2
        assert "registered" in capsys.readouterr().out


class TestRun:
    def test_run_prints_summary(self, capsys, scenario_file):
        assert main(["run", str(scenario_file)]) == 0
        output = capsys.readouterr().out
        assert "[calibration] cli-smoke" in output
        assert "uA mM^-1 cm^-2" in output

    def test_run_writes_replayable_artifact(self, capsys, tmp_path,
                                            scenario_file):
        out = tmp_path / "results.json"
        assert main(["run", str(scenario_file), "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert set(payload) == {"scenario", "result"}
        # The exported envelope loads straight back as a scenario.
        replay = Scenario.from_dict(payload["scenario"])
        assert replay.seed == 7
        assert payload["result"]["workload"] == "calibration"

    def test_seed_override_lands_in_the_artifact(self, capsys, tmp_path,
                                                 scenario_file):
        out = tmp_path / "results.json"
        assert main(["run", str(scenario_file), "--seed", "11",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["scenario"]["seed"] == 11

    def test_unseeded_scenario_exports_a_replayable_artifact(
            self, capsys, tmp_path):
        """An unseeded file gets a materialized seed: re-running the
        exported scenario must reproduce the exported result exactly."""
        unseeded = Scenario(
            workload="calibration", name="unseeded",
            spec={"sensors": ["glucose/this-work"], "n_blanks": 3,
                  "n_replicates": 1},
        ).save(tmp_path / "unseeded.json")
        out = tmp_path / "results.json"
        assert main(["run", str(unseeded), "--out", str(out),
                     "--traces"]) == 0
        payload = json.loads(out.read_text())
        assert isinstance(payload["scenario"]["seed"], int)
        replay_file = tmp_path / "replay.json"
        Scenario.from_dict(payload["scenario"]).save(replay_file)
        out2 = tmp_path / "replay-results.json"
        assert main(["run", str(replay_file), "--out", str(out2),
                     "--traces"]) == 0
        assert json.loads(out2.read_text()) == payload

    def test_scalar_path_matches_batch_path(self, capsys, tmp_path,
                                            scenario_file):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        main(["run", str(scenario_file), "--out", str(out_a), "--traces"])
        main(["run", str(scenario_file), "--scalar",
              "--out", str(out_b), "--traces"])
        assert json.loads(out_a.read_text()) == json.loads(out_b.read_text())

    def test_missing_scenario_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["run", str(tmp_path / "nope.json")])

    def test_no_command_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main([])


class TestModuleEntryPoint:
    def test_python_dash_m_repro_wires_to_the_cli(self):
        import repro.__main__ as entry

        assert entry.main is main
