"""Tests for the python -m repro scenario CLI."""

import json

import pytest

from repro.scenarios import Scenario
from repro.scenarios.cli import main


@pytest.fixture()
def scenario_file(tmp_path):
    return Scenario(
        workload="calibration", name="cli-smoke", seed=7,
        spec={"sensors": ["glucose/this-work"], "n_blanks": 3,
              "n_replicates": 1},
    ).save(tmp_path / "scenario.json")


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert repro.__version__ in output
        assert output.startswith("repro ")


class TestList:
    def test_lists_every_workload(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("calibration", "estimation", "monitor", "therapy"):
            assert name in output


class TestListJson:
    def test_json_rows_are_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = {row["name"]: row
                for row in json.loads(capsys.readouterr().out)}
        assert set(rows) >= {"calibration", "estimation", "monitor",
                             "therapy"}
        for row in rows.values():
            assert set(row) == {"name", "plan_type", "doc", "streaming"}
            assert row["doc"]

    def test_streaming_flag_tracks_snapshot_support(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = {row["name"]: row["streaming"]
                for row in json.loads(capsys.readouterr().out)}
        assert rows["monitor"] is True
        assert rows["estimation"] is True
        assert rows["calibration"] is False
        assert rows["therapy"] is False


class TestDescribeJson:
    def test_json_payload_carries_docs_and_example(self, capsys):
        assert main(["describe", "monitor", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "monitor"
        assert payload["streaming"] is True
        assert "spec fields" in payload["describe"]
        assert isinstance(payload["example_spec"], dict)
        # the example spec must actually be runnable
        from repro.scenarios import Scenario, run_scenario

        scenario = Scenario(workload="monitor", name="example", seed=1,
                            spec=payload["example_spec"])
        assert run_scenario(scenario).mard.shape[0] >= 1

    def test_unknown_workload_returns_json_error(self, capsys):
        assert main(["describe", "petri-dish", "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert "petri-dish" in payload["error"]


class TestDescribe:
    @pytest.mark.parametrize("name", ["calibration", "estimation",
                                      "monitor", "therapy"])
    def test_describe_prints_example_spec(self, capsys, name):
        assert main(["describe", name]) == 0
        output = capsys.readouterr().out
        assert "example spec" in output
        assert "spec fields" in output

    def test_unknown_workload_fails_with_registry_listing(self, capsys):
        assert main(["describe", "petri-dish"]) == 2
        assert "registered" in capsys.readouterr().out


class TestRun:
    def test_run_prints_summary(self, capsys, scenario_file):
        assert main(["run", str(scenario_file)]) == 0
        output = capsys.readouterr().out
        assert "[calibration] cli-smoke" in output
        assert "uA mM^-1 cm^-2" in output

    def test_run_writes_replayable_artifact(self, capsys, tmp_path,
                                            scenario_file):
        out = tmp_path / "results.json"
        assert main(["run", str(scenario_file), "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert set(payload) == {"scenario", "result"}
        # The exported envelope loads straight back as a scenario.
        replay = Scenario.from_dict(payload["scenario"])
        assert replay.seed == 7
        assert payload["result"]["workload"] == "calibration"

    def test_seed_override_lands_in_the_artifact(self, capsys, tmp_path,
                                                 scenario_file):
        out = tmp_path / "results.json"
        assert main(["run", str(scenario_file), "--seed", "11",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["scenario"]["seed"] == 11

    def test_unseeded_scenario_exports_a_replayable_artifact(
            self, capsys, tmp_path):
        """An unseeded file gets a materialized seed: re-running the
        exported scenario must reproduce the exported result exactly."""
        unseeded = Scenario(
            workload="calibration", name="unseeded",
            spec={"sensors": ["glucose/this-work"], "n_blanks": 3,
                  "n_replicates": 1},
        ).save(tmp_path / "unseeded.json")
        out = tmp_path / "results.json"
        assert main(["run", str(unseeded), "--out", str(out),
                     "--traces"]) == 0
        payload = json.loads(out.read_text())
        assert isinstance(payload["scenario"]["seed"], int)
        replay_file = tmp_path / "replay.json"
        Scenario.from_dict(payload["scenario"]).save(replay_file)
        out2 = tmp_path / "replay-results.json"
        assert main(["run", str(replay_file), "--out", str(out2),
                     "--traces"]) == 0
        assert json.loads(out2.read_text()) == payload

    def test_scalar_path_matches_batch_path(self, capsys, tmp_path,
                                            scenario_file):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        main(["run", str(scenario_file), "--out", str(out_a), "--traces"])
        main(["run", str(scenario_file), "--scalar",
              "--out", str(out_b), "--traces"])
        assert json.loads(out_a.read_text()) == json.loads(out_b.read_text())

    def test_missing_scenario_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["run", str(tmp_path / "nope.json")])

    def test_no_command_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main([])


class TestTelemetryFlags:
    def test_run_with_telemetry_prints_span_summary(self, capsys,
                                                    scenario_file):
        assert main(["run", str(scenario_file), "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "core.execute" in out

    def test_run_without_telemetry_prints_no_summary(self, capsys,
                                                     scenario_file):
        assert main(["run", str(scenario_file)]) == 0
        assert "telemetry summary" not in capsys.readouterr().out

    def test_trace_out_writes_loadable_jsonl(self, capsys, tmp_path,
                                             scenario_file):
        from repro.telemetry import read_jsonl

        trace = tmp_path / "trace.jsonl"
        assert main(["run", str(scenario_file),
                     "--trace-out", str(trace)]) == 0
        events = read_jsonl(trace)
        assert any(e["type"] == "span" and e["name"] == "core.execute"
                   for e in events)
        assert any(e["type"] == "counter" for e in events)

    def test_perfetto_out_writes_loadable_trace(self, capsys, tmp_path,
                                                scenario_file):
        trace = tmp_path / "trace.json"
        assert main(["run", str(scenario_file),
                     "--perfetto-out", str(trace)]) == 0
        loaded = json.loads(trace.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in loaded["traceEvents"])

    def test_telemetry_flags_do_not_change_results(self, capsys,
                                                   tmp_path,
                                                   scenario_file):
        plain = tmp_path / "plain.json"
        instrumented = tmp_path / "instrumented.json"
        main(["run", str(scenario_file), "--out", str(plain)])
        main(["run", str(scenario_file), "--telemetry",
              "--out", str(instrumented)])
        assert json.loads(plain.read_text()) \
            == json.loads(instrumented.read_text())


class TestLoggingFlags:
    def teardown_method(self):
        import logging

        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            root.removeHandler(handler)
        root.setLevel(logging.NOTSET)

    def test_verbose_flag_sets_info_level(self, capsys, scenario_file):
        import logging

        assert main(["-v", "run", str(scenario_file)]) == 0
        assert logging.getLogger("repro").level == logging.INFO

    def test_double_verbose_sets_debug_level(self, capsys,
                                             scenario_file):
        import logging

        assert main(["-vv", "run", str(scenario_file)]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_log_level_flag_wins_over_verbosity(self, capsys,
                                                scenario_file):
        import logging

        assert main(["--log-level", "error", "-vv",
                     "run", str(scenario_file)]) == 0
        assert logging.getLogger("repro").level == logging.ERROR

    def test_default_level_is_warning(self, capsys, scenario_file):
        import logging

        assert main(["run", str(scenario_file)]) == 0
        assert logging.getLogger("repro").level == logging.WARNING


class TestModuleEntryPoint:
    def test_python_dash_m_repro_wires_to_the_cli(self):
        import repro.__main__ as entry

        assert entry.main is main
