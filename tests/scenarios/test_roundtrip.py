"""The serialization acceptance gate: JSON round trips replay bit-identically.

For every registered workload, ``Scenario.from_dict(s.to_dict())`` (and
the full JSON text round trip) must run to the *same result arrays* as
the original scenario — same seed, same plan, same bits.  This is what
makes a saved scenario file a replayable experiment artifact rather
than a description of something similar.
"""

import pytest

from repro.scenarios import (
    Scenario,
    available_workloads,
    run_scenario,
    run_scenarios,
    spawn_scenario_seeds,
)

#: One small-but-stochastic scenario per workload.  Traces kept ON so
#: the bit-identity comparison covers every per-sample value, not just
#: aggregate metrics.
ROUND_TRIP_SPECS = {
    "calibration": {"sensors": ["glucose/this-work"],
                    "n_blanks": 2, "n_replicates": 2},
    "monitor": {
        "cohort": {"sensor": "glucose/this-work", "analyte": "glucose",
                   "n_patients": 2, "wander_sigma_a": 2e-9},
        "duration_h": 4.0,
        "sample_period_s": 600.0,
        "recalibration": {"reference_interval_h": 1.0, "tolerance": 0.05},
    },
    "therapy": {
        "drug": "cyclosporine",
        "n_patients": 2,
        "cohort_seed": 7,
        "controller": {"kind": "proportional", "initial_dose_mg": 250.0},
        "n_doses": 2,
        "dose_interval_h": 6.0,
        "sample_period_s": 1800.0,
        "recalibration": {"reference_interval_h": 6.0, "tolerance": 0.05},
    },
    "estimation": {
        "cohort": {"sensor": "glucose/this-work", "analyte": "glucose",
                   "n_patients": 2, "wander_sigma_a": 2e-9},
        "duration_h": 4.0,
        "sample_period_s": 600.0,
        "smooth": True,
        "interval_level": 0.95,
    },
}


def scenario_for(workload: str) -> Scenario:
    return Scenario(workload=workload, name=f"{workload}-roundtrip",
                    seed=2012, spec=ROUND_TRIP_SPECS[workload])


def test_every_registered_workload_is_covered():
    """A new workload must add itself to the round-trip gate."""
    assert set(ROUND_TRIP_SPECS) == set(available_workloads())


@pytest.mark.parametrize("workload", sorted(ROUND_TRIP_SPECS))
def test_dict_round_trip_runs_bit_identically(workload):
    scenario = scenario_for(workload)
    original = run_scenario(scenario)
    replayed = run_scenario(Scenario.from_dict(scenario.to_dict()))
    assert (original.to_dict(include_traces=True)
            == replayed.to_dict(include_traces=True))


@pytest.mark.parametrize("workload", sorted(ROUND_TRIP_SPECS))
def test_json_text_round_trip_runs_bit_identically(workload, tmp_path):
    scenario = scenario_for(workload)
    path = scenario.save(tmp_path / "scenario.json")
    original = run_scenario(scenario)
    replayed = run_scenario(Scenario.load(path))
    assert (original.to_dict(include_traces=True)
            == replayed.to_dict(include_traces=True))


class TestRunScenarios:
    def test_seed_spawning_is_deterministic_and_position_stable(self):
        seeds_3 = spawn_scenario_seeds(11, 3)
        seeds_5 = spawn_scenario_seeds(11, 5)
        assert seeds_3 == seeds_5[:3]           # appending never reshuffles
        assert len(set(seeds_5)) == 5           # mutually distinct
        assert spawn_scenario_seeds(11, 3) == seeds_3

    def test_explicit_seeds_kept_spawned_seeds_fill_the_gaps(self):
        scenarios = [
            scenario_for("calibration").with_seed(None),
            scenario_for("calibration"),        # explicit seed 2012
        ]
        runs = run_scenarios(scenarios, root_seed=11)
        assert runs[0].scenario.seed == spawn_scenario_seeds(11, 2)[0]
        assert runs[1].scenario.seed == 2012

    def test_materialized_runs_replay_bit_identically(self):
        runs = run_scenarios(
            [scenario_for("calibration").with_seed(None)], root_seed=11)
        replay = run_scenario(
            Scenario.from_json(runs[0].scenario.to_json()))
        assert (runs[0].result.to_dict(include_traces=True)
                == replay.to_dict(include_traces=True))

    def test_mixed_workload_fan_out(self):
        runs = run_scenarios(
            [scenario_for(w) for w in sorted(ROUND_TRIP_SPECS)],
            root_seed=0)
        assert [r.result.summary_row()["workload"] for r in runs] \
            == sorted(ROUND_TRIP_SPECS)
        for run in runs:
            assert run.summary().strip()
            assert set(run.to_dict()) == {"scenario", "result"}
