"""Scenario envelope: validation, serialization, strict deserialization."""

import numpy as np
import pytest

from repro.scenarios import SCHEMA_VERSION, Scenario


def small_scenario(**overrides):
    fields = dict(
        workload="calibration",
        name="smoke",
        seed=7,
        spec={"sensors": ["glucose/this-work"]},
        description="a test scenario",
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestConstruction:
    def test_spec_is_deep_copied(self):
        spec = {"sensors": ["glucose/this-work"], "nested": {"a": 1}}
        scenario = Scenario(workload="calibration", name="x", spec=spec)
        spec["nested"]["a"] = 2
        assert scenario.spec["nested"]["a"] == 1

    def test_rejects_non_serializable_spec(self):
        with pytest.raises(ValueError, match="JSON"):
            Scenario(workload="monitor", name="x",
                     spec={"values": np.zeros(3)})

    def test_rejects_non_mapping_spec(self):
        with pytest.raises(ValueError, match="mapping"):
            Scenario(workload="monitor", name="x", spec=[1, 2])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_non_json_floats(self, bad):
        """NaN/Infinity are not JSON: a saved artifact must stay
        parseable by any strict consumer, not just Python."""
        with pytest.raises(ValueError, match="JSON"):
            Scenario(workload="calibration", name="x",
                     spec={"upper_molar": bad})

    @pytest.mark.parametrize("bad", ["", None])
    def test_rejects_empty_workload_and_name(self, bad):
        with pytest.raises(ValueError):
            Scenario(workload=bad, name="x", spec={})
        with pytest.raises(ValueError):
            Scenario(workload="monitor", name=bad, spec={})

    @pytest.mark.parametrize("bad", [-1, 1.5, "7", True])
    def test_rejects_bad_seeds(self, bad):
        with pytest.raises(ValueError):
            small_scenario(seed=bad)

    def test_with_seed(self):
        scenario = small_scenario(seed=None)
        assert scenario.with_seed(11).seed == 11
        assert scenario.seed is None  # original untouched


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        scenario = small_scenario()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_json_round_trip_is_identity(self):
        scenario = small_scenario()
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_save_load_round_trip(self, tmp_path):
        scenario = small_scenario()
        path = scenario.save(tmp_path / "s.json")
        assert Scenario.load(path) == scenario

    def test_to_dict_carries_schema_version(self):
        assert small_scenario().to_dict()["schema_version"] == SCHEMA_VERSION

    def test_none_seed_survives(self):
        scenario = small_scenario(seed=None)
        assert Scenario.from_dict(scenario.to_dict()).seed is None


class TestStrictDeserialization:
    def test_unknown_keys_rejected(self):
        data = small_scenario().to_dict()
        data["extra"] = 1
        with pytest.raises(ValueError, match="unknown scenario keys"):
            Scenario.from_dict(data)

    @pytest.mark.parametrize("version", [None, 0, 2, "1"])
    def test_unsupported_schema_version_rejected(self, version):
        data = small_scenario().to_dict()
        data["schema_version"] = version
        with pytest.raises(ValueError, match="schema_version"):
            Scenario.from_dict(data)

    def test_missing_schema_version_rejected(self):
        data = small_scenario().to_dict()
        del data["schema_version"]
        with pytest.raises(ValueError, match="schema_version"):
            Scenario.from_dict(data)

    def test_missing_required_fields_rejected(self):
        data = small_scenario().to_dict()
        del data["spec"]
        with pytest.raises(ValueError, match="missing"):
            Scenario.from_dict(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            Scenario.from_dict([1, 2, 3])
