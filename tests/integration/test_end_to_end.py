"""Integration tests: full-pipeline reproduction of the section 3.2 claims."""

import numpy as np
import pytest

from repro.core.calibration import default_protocol_for_range, run_calibration
from repro.core.registry import build_sensor, specs_by_group
from repro.core.validation import ranking_matches, within_factor
from repro.experiments.table2 import run_table2
from repro.units import molar_from_millimolar


@pytest.fixture(scope="module")
def cyp_rows():
    return run_table2(groups=["cyp"], seed=7)


@pytest.fixture(scope="module")
def glutamate_rows():
    return run_table2(groups=["glutamate"], seed=7)


@pytest.fixture(scope="module")
def lactate_rows():
    return run_table2(groups=["lactate"], seed=7)


class TestSection321Glucose:
    """'Our biosensor shows the best performance for both sensitivity and
    limit of detection compared to similar sensors.'"""

    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2(groups=["glucose"], seed=7)

    def test_our_sensor_best_sensitivity(self, rows):
        ours = rows["glucose/this-work"]
        for sensor_id, row in rows.items():
            if sensor_id != "glucose/this-work":
                assert ours.measured_sensitivity > row.measured_sensitivity

    def test_our_sensor_best_lod(self, rows):
        ours = rows["glucose/this-work"]
        for sensor_id, row in rows.items():
            if sensor_id != "glucose/this-work":
                assert ours.measured_lod_um < row.measured_lod_um

    def test_factor_over_wang(self, rows):
        # 55.5 vs 14.2: roughly a 4x sensitivity advantage.
        ratio = (rows["glucose/this-work"].measured_sensitivity
                 / rows["glucose/wang2003"].measured_sensitivity)
        assert within_factor(ratio, 55.5 / 14.2, 1.3)


class TestSection322Lactate:
    """'Goran et al. obtained higher sensitivity than us ... However, the
    linear range is very narrow, which cannot fit physiological lactate.'"""

    def test_goran_beats_us_on_sensitivity(self, lactate_rows):
        assert lactate_rows["lactate/goran2011"].measured_sensitivity \
            > lactate_rows["lactate/this-work"].measured_sensitivity

    def test_we_beat_goran_on_range(self, lactate_rows):
        assert lactate_rows["lactate/this-work"].measured_range_mm[1] \
            > 2 * lactate_rows["lactate/goran2011"].measured_range_mm[1]

    def test_mineral_oil_paste_is_weakest(self, lactate_rows):
        paste = lactate_rows["lactate/rubianes2005"]
        others = [row for sid, row in lactate_rows.items()
                  if sid not in ("lactate/rubianes2005", "lactate/yang2008")]
        for row in others:
            assert paste.measured_sensitivity < row.measured_sensitivity

    def test_titanate_lower_than_carbon_sol_gel(self, lactate_rows):
        """Section 3.2.2: titanate gives lower performance 'suggesting that
        carbon gives better performance ... also for the material itself'."""
        assert lactate_rows["lactate/yang2008"].measured_sensitivity \
            < lactate_rows["lactate/huang2007"].measured_sensitivity


class TestSection323Glutamate:
    """'Previously described sensitivities are higher (up to three orders of
    magnitude) ... on the other hand, we exploit a wider linear range.'"""

    def test_literature_up_to_three_orders_higher(self, glutamate_rows):
        ours = glutamate_rows["glutamate/this-work"].measured_sensitivity
        best = glutamate_rows["glutamate/ammam2010"].measured_sensitivity
        assert 100.0 < best / ours < 1000.0

    def test_our_range_is_widest(self, glutamate_rows):
        ours = glutamate_rows["glutamate/this-work"].measured_range_mm[1]
        for sensor_id, row in glutamate_rows.items():
            if sensor_id != "glutamate/this-work":
                assert ours > row.measured_range_mm[1]


class TestSection324Cyp:
    """CYP drug sensors: sensitivity ordering AA > Ftorafur > IFO > CP."""

    def test_sensitivity_ranking(self, cyp_rows):
        values = {sid: row.measured_sensitivity
                  for sid, row in cyp_rows.items()}
        assert ranking_matches(values, [
            "cyp/arachidonic-acid",
            "cyp/ftorafur",
            "cyp/ifosfamide",
            "cyp/cyclophosphamide",
        ])

    def test_lods_sub_2_micromolar_range(self, cyp_rows):
        for row in cyp_rows.values():
            assert row.measured_lod_um < 8.0

    def test_sensitivities_within_factor_of_paper(self, cyp_rows):
        for row in cyp_rows.values():
            assert within_factor(row.measured_sensitivity,
                                 row.spec.paper_sensitivity, 1.3)


class TestFullPipelineDeterminism:
    def test_same_seed_same_table(self):
        a = run_table2(groups=["glucose"], seed=3)
        b = run_table2(groups=["glucose"], seed=3)
        for sensor_id in a:
            assert a[sensor_id].measured_sensitivity \
                == b[sensor_id].measured_sensitivity

    def test_every_table2_spec_calibrates(self):
        """Smoke: all 18 rows build and calibrate without error (values
        checked in the per-group tests and benches)."""
        for group in ("glucose", "lactate", "glutamate", "cyp"):
            for spec in specs_by_group(group):
                sensor = build_sensor(spec)
                protocol = default_protocol_for_range(
                    molar_from_millimolar(spec.paper_range_mm[1]),
                    n_blanks=5, n_replicates=2)
                result = run_calibration(sensor, protocol,
                                         np.random.default_rng(1))
                assert result.slope_a_per_molar > 0
