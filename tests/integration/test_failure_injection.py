"""Failure-injection tests: the pipeline under abnormal conditions.

A production-quality sensing stack must degrade loudly, not silently.
These tests push the simulator into saturation, interference, crosstalk
and drift conditions and check the system either stays correct or fails
with a diagnosis.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.bio.matrix import BUFFER, SERUM
from repro.core.calibration import (
    CalibrationError,
    default_protocol_for_range,
    run_calibration,
)
from repro.core.detection import measure_amperometric_point
from repro.core.longterm import DriftBudget, drift_corrected_estimate
from repro.enzymes.stability import EnzymeStability
from repro.instrument.chain import AcquisitionChain
from repro.instrument.multiplexer import ChannelMultiplexer


class TestTiaSaturation:
    def test_undersized_front_end_clips_calibration(self, glucose_sensor):
        """A chain sized for a tenth of the signal rails out; the
        calibration must fail its linearity/quality gates rather than
        return a plausible-looking slope."""
        tiny_chain = AcquisitionChain.for_full_scale(
            full_scale_current_a=glucose_sensor.steady_state_current(1e-3)
            / 10.0,
            adc_rate_hz=10.0,
            white_noise_a_rthz=1e-14)
        clipped = replace(glucose_sensor, chain=tiny_chain)
        protocol = default_protocol_for_range(1e-3)
        with pytest.raises(CalibrationError):
            run_calibration(clipped, protocol, np.random.default_rng(3))

    def test_saturation_flag_available_upfront(self, glucose_sensor):
        """The TIA exposes saturation before any measurement is wasted."""
        peak = glucose_sensor.steady_state_current(1.6e-3)
        assert not glucose_sensor.chain.tia.saturates(peak)


class TestInterference:
    def test_serum_biases_unprotected_reading(self, glucose_sensor):
        """At +650 mV serum interferents add anodic current; without the
        Nafion film the blank shifts visibly."""
        interference = SERUM.interference_current_a(
            glucose_sensor.area_m2, 0.65, nafion_film=False)
        biased = replace(glucose_sensor,
                         background_current_a=interference)
        clean_blank = measure_amperometric_point(glucose_sensor, 0.0,
                                                 add_noise=False)
        dirty_blank = measure_amperometric_point(biased, 0.0,
                                                 add_noise=False)
        assert dirty_blank > clean_blank + 5 * glucose_sensor.repeatability_std_a

    def test_nafion_film_suppresses_most_interference(self, glucose_sensor):
        unprotected = SERUM.interference_current_a(
            glucose_sensor.area_m2, 0.65, nafion_film=False)
        protected = SERUM.interference_current_a(
            glucose_sensor.area_m2, 0.65, nafion_film=True)
        assert protected < 0.3 * unprotected

    def test_buffer_is_interference_free(self, glucose_sensor):
        assert BUFFER.interference_current_a(
            glucose_sensor.area_m2, 0.65) == 0.0

    def test_interference_shifts_intercept_not_slope(self, glucose_sensor):
        """Constant interference moves the calibration intercept; the
        slope (and thus the sensitivity) survives."""
        interference = SERUM.interference_current_a(
            glucose_sensor.area_m2, 0.65, nafion_film=True)
        biased = replace(glucose_sensor,
                         background_current_a=interference)
        protocol = default_protocol_for_range(1e-3)
        clean = run_calibration(glucose_sensor, protocol,
                                np.random.default_rng(9))
        dirty = run_calibration(biased, protocol, np.random.default_rng(9))
        assert dirty.intercept_a > clean.intercept_a
        assert dirty.sensitivity_paper == pytest.approx(
            clean.sensitivity_paper, rel=0.02)


class TestCrosstalk:
    def test_blank_channel_next_to_saturated_neighbour(self):
        """Multiplexed blanks next to a strong channel read non-zero; the
        error metric flags it as unbounded."""
        mux = ChannelMultiplexer(off_isolation=1e-3)
        currents = {0: 0.0, 1: 2e-6}
        observed = mux.observed_current(0, currents)
        assert observed > 0
        assert mux.crosstalk_error(0, currents) == float("inf")

    def test_good_isolation_keeps_panel_accurate(self):
        mux = ChannelMultiplexer(off_isolation=1e-5)
        currents = {ch: 1e-7 * (ch + 1) for ch in range(5)}
        for channel in range(5):
            assert mux.crosstalk_error(channel, currents) < 1e-3


class TestDriftFailure:
    def test_uncorrected_drift_biases_estimate(self):
        budget = DriftBudget(
            stability=EnzymeStability(half_life_s=7 * 24 * 3600.0),
            matrix=SERUM)
        retention = budget.sensitivity_retention(72.0)
        slope, true_c = 1.4e-4, 0.5e-3
        signal = slope * retention * true_c
        naive = signal / slope
        assert naive < 0.9 * true_c  # silent under-read
        corrected = drift_corrected_estimate(signal, slope, 0.0, retention)
        assert corrected == pytest.approx(true_c, rel=1e-9)

    def test_recalibration_deadline_before_failure(self):
        budget = DriftBudget(
            stability=EnzymeStability(half_life_s=7 * 24 * 3600.0),
            matrix=SERUM)
        deadline = budget.hours_to_error(0.1)
        # At the deadline the bias is exactly at the limit, not beyond.
        assert budget.sensitivity_retention(deadline) \
            == pytest.approx(0.9, rel=1e-2)


class TestDeadSensor:
    def test_zero_coverage_sensor_rejected_loudly(self, glucose_sensor):
        dead_layer = replace(glucose_sensor.layer, coverage_mol_m2=1e-30)
        dead = replace(glucose_sensor, layer=dead_layer,
                       repeatability_std_a=1e-9)
        protocol = default_protocol_for_range(1e-3)
        failures = 0
        for seed in range(5):
            try:
                run_calibration(dead, protocol, np.random.default_rng(seed))
            except CalibrationError:
                failures += 1
        assert failures == 5
