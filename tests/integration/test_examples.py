"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; a broken example is a broken
deliverable.  Each one runs in-process with its ``main()`` entry point.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_present(self):
        names = {path.stem for path in EXAMPLE_FILES}
        assert {"quickstart", "metabolite_panel", "drug_monitoring",
                "platform_design", "classification_explorer",
                "longterm_monitoring"} <= names

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES])
    def test_example_runs(self, path, capsys):
        module = _load_module(path)
        module.main()
        output = capsys.readouterr().out
        assert len(output) > 100  # every example reports real content
