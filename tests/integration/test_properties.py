"""Cross-module property tests (hypothesis).

These tie whole sub-pipelines together: random physical parameters in,
physical invariants out.  They are the guard rails that keep the
table-reproduction machinery honest across the parameter space, not just
at the 18 published operating points.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem.diffusion import DiffusionGrid1D
from repro.chem.cottrell import cottrell_current
from repro.constants import FARADAY
from repro.enzymes.catalog import GLUCOSE_OXIDASE
from repro.enzymes.immobilization import (
    ImmobilizedLayer,
    coverage_from_sensitivity,
)
from repro.instrument.chain import AcquisitionChain
from repro.units import sensitivity_si_from_paper


class TestDiffusionProperties:
    @given(st.floats(min_value=1e-10, max_value=5e-9),
           st.floats(min_value=1e-4, max_value=5e-3))
    @settings(max_examples=10, deadline=None)
    def test_cottrell_match_over_parameter_space(self, diffusion, conc):
        """The Crank-Nicolson flux matches Cottrell for any physical
        (D, C) combination, not just the defaults."""
        grid = DiffusionGrid1D.for_transient(diffusion, 1.0, 300, conc)
        fluxes = grid.run(300)
        i_sim = FARADAY * 1e-6 * fluxes[-1]
        i_ref = cottrell_current(1.0, 1, 1e-6, conc, diffusion)
        assert i_sim == pytest.approx(i_ref, rel=2e-2)

    @given(st.floats(min_value=1e-10, max_value=5e-9))
    @settings(max_examples=10, deadline=None)
    def test_closed_box_conservation_any_diffusivity(self, diffusion):
        grid = DiffusionGrid1D(diffusion, 1e-6, 40, 1e-4, 1e-3,
                               left_bc="noflux", right_bc="noflux")
        grid._conc[:20] *= 1.7
        initial = grid.total_amount_per_area()
        for __ in range(200):
            grid.step()
        assert grid.total_amount_per_area() == pytest.approx(initial,
                                                             rel=1e-9)


class TestChainProperties:
    @given(st.floats(min_value=-0.9, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_dc_reconstruction_anywhere_in_range(self, fraction):
        """Any DC current within the chain's full scale reconstructs to
        within quantization + filter settling error."""
        chain = AcquisitionChain.for_full_scale(
            full_scale_current_a=1e-6, adc_rate_hz=10.0,
            white_noise_a_rthz=1e-18)
        current = fraction * 1e-6
        acquired = chain.acquire(np.full(600, current), 20.0,
                                 add_noise=False)
        assert acquired.current_a[-1] == pytest.approx(current, abs=2e-9)

    @given(st.integers(min_value=8, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_more_bits_never_hurt(self, n_bits):
        chain = AcquisitionChain.for_full_scale(
            full_scale_current_a=1e-6, adc_rate_hz=10.0, n_bits=n_bits,
            white_noise_a_rthz=1e-18)
        acquired = chain.acquire(np.full(600, 3.21e-7), 20.0,
                                 add_noise=False)
        error = abs(acquired.current_a[-1] - 3.21e-7)
        lsb_current = (2 * chain.adc.v_ref / 2 ** n_bits
                       / chain.tia.gain_v_per_a)
        assert error <= lsb_current


class TestLayerInversionProperties:
    @given(st.floats(min_value=0.5, max_value=500.0),
           st.floats(min_value=1e-5, max_value=5e-2),
           st.floats(min_value=0.2, max_value=1.0),
           st.floats(min_value=0.3, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_sensitivity_roundtrip_any_configuration(
            self, sensitivity_paper, km, retention, collection):
        """coverage_from_sensitivity and ImmobilizedLayer.sensitivity_si
        are exact inverses across the whole realistic parameter box."""
        target = sensitivity_si_from_paper(sensitivity_paper)
        coverage = coverage_from_sensitivity(
            GLUCOSE_OXIDASE, target, km,
            activity_retention=retention,
            collection_efficiency=collection)
        layer = ImmobilizedLayer(
            GLUCOSE_OXIDASE, coverage, activity_retention=retention,
            km_app_molar=km, collection_efficiency=collection)
        assert layer.sensitivity_si() == pytest.approx(target, rel=1e-9)

    @given(st.floats(min_value=1e-6, max_value=1e-2))
    @settings(max_examples=20, deadline=None)
    def test_current_bounded_by_vmax(self, concentration):
        layer = ImmobilizedLayer(GLUCOSE_OXIDASE, 1e-7,
                                 activity_retention=0.5,
                                 km_app_molar=9e-3,
                                 collection_efficiency=0.85)
        current = layer.steady_state_current(concentration, 1e-6)
        vmax_current = (GLUCOSE_OXIDASE.n_electrons * FARADAY * 1e-6
                        * 0.85 * layer.max_areal_rate)
        assert 0.0 <= current <= vmax_current
