"""Tests for repro.constants."""

import math

import pytest

from repro import constants


class TestConstants:
    def test_faraday_value(self):
        assert constants.FARADAY == pytest.approx(96485.332, abs=0.01)

    def test_gas_constant_value(self):
        assert constants.GAS_CONSTANT == pytest.approx(8.31446, abs=1e-4)

    def test_faraday_is_avogadro_times_charge(self):
        derived = constants.AVOGADRO * constants.ELEMENTARY_CHARGE
        assert derived == pytest.approx(constants.FARADAY, rel=1e-9)

    def test_gas_constant_is_avogadro_times_boltzmann(self):
        derived = constants.AVOGADRO * constants.BOLTZMANN
        assert derived == pytest.approx(constants.GAS_CONSTANT, rel=1e-9)

    def test_standard_temperature_is_25_celsius(self):
        assert constants.STANDARD_TEMPERATURE == pytest.approx(
            constants.ZERO_CELSIUS + 25.0)


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert constants.thermal_voltage() == pytest.approx(0.025693, rel=1e-3)

    def test_scales_linearly_with_temperature(self):
        doubled = constants.thermal_voltage(2 * constants.STANDARD_TEMPERATURE)
        assert doubled == pytest.approx(2 * constants.thermal_voltage())

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            constants.thermal_voltage(0.0)
        with pytest.raises(ValueError):
            constants.thermal_voltage(-300.0)


class TestNernstSlope:
    def test_one_electron_decade_slope(self):
        # 59 mV per decade at 25 C (slope * ln 10).
        decade = constants.nernst_slope(1) * math.log(10.0)
        assert decade == pytest.approx(0.05916, rel=1e-3)

    def test_inverse_in_electron_count(self):
        assert constants.nernst_slope(2) == pytest.approx(
            constants.nernst_slope(1) / 2.0)

    def test_rejects_zero_electrons(self):
        with pytest.raises(ValueError):
            constants.nernst_slope(0)
