"""Shared fixtures: pre-built sensors (construction is the expensive part)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import build_sensor, spec_by_id


@pytest.fixture(scope="session")
def glucose_sensor():
    """The paper's glucose sensor (amperometric readout), built once."""
    return build_sensor(spec_by_id("glucose/this-work"))


@pytest.fixture(scope="session")
def glutamate_sensor():
    """The paper's glutamate sensor (wide-range, low-sensitivity)."""
    return build_sensor(spec_by_id("glutamate/this-work"))


@pytest.fixture(scope="session")
def cp_sensor():
    """The paper's cyclophosphamide CYP sensor (voltammetric readout)."""
    return build_sensor(spec_by_id("cyp/cyclophosphamide"))


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)
