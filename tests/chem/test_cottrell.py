"""Tests for repro.chem.cottrell."""

import numpy as np
import pytest

from repro.chem.cottrell import (
    cottrell_charge,
    cottrell_current,
    diffusion_layer_thickness,
)


class TestCottrellCurrent:
    def test_inverse_sqrt_time_decay(self):
        i1 = cottrell_current(1.0, 1, 1e-6, 1e-3, 7e-10)
        i4 = cottrell_current(4.0, 1, 1e-6, 1e-3, 7e-10)
        assert i1 == pytest.approx(2.0 * i4, rel=1e-12)

    def test_linear_in_concentration(self):
        i1 = cottrell_current(1.0, 1, 1e-6, 1e-3, 7e-10)
        i2 = cottrell_current(1.0, 1, 1e-6, 2e-3, 7e-10)
        assert i2 == pytest.approx(2.0 * i1)

    def test_linear_in_area_and_electrons(self):
        base = cottrell_current(1.0, 1, 1e-6, 1e-3, 7e-10)
        assert cottrell_current(1.0, 2, 2e-6, 1e-3, 7e-10) \
            == pytest.approx(4.0 * base)

    def test_textbook_value(self):
        # n=1, A=1 cm^2, C=1 mM, D=1e-5 cm^2/s at t=1 s:
        # i = nFAC sqrt(D/pi t) = 96485*1e-4m2*1mol/m3*sqrt(1e-9/pi) ~ 172 uA.
        i = cottrell_current(1.0, 1, 1e-4, 1e-3, 1e-9)
        assert i == pytest.approx(172e-6, rel=2e-2)

    def test_array_input(self):
        times = np.array([0.5, 1.0, 2.0])
        values = cottrell_current(times, 1, 1e-6, 1e-3, 7e-10)
        assert values.shape == times.shape
        assert np.all(np.diff(values) < 0)

    def test_rejects_zero_time(self):
        with pytest.raises(ValueError, match="diverges"):
            cottrell_current(0.0, 1, 1e-6, 1e-3, 7e-10)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            cottrell_current(1.0, 1, 0.0, 1e-3, 7e-10)
        with pytest.raises(ValueError):
            cottrell_current(1.0, 1, 1e-6, -1e-3, 7e-10)
        with pytest.raises(ValueError):
            cottrell_current(1.0, 1, 1e-6, 1e-3, 0.0)


class TestCottrellCharge:
    def test_charge_is_current_integral(self):
        # Q(t) = integral of i: check numerically.
        times = np.linspace(1e-4, 2.0, 20000)
        currents = cottrell_current(times, 1, 1e-6, 1e-3, 7e-10)
        numeric = np.trapezoid(currents, times)
        analytic = (cottrell_charge(2.0, 1, 1e-6, 1e-3, 7e-10)
                    - cottrell_charge(1e-4, 1, 1e-6, 1e-3, 7e-10))
        assert numeric == pytest.approx(analytic, rel=1e-3)

    def test_charge_zero_at_zero_time(self):
        assert cottrell_charge(0.0, 1, 1e-6, 1e-3, 7e-10) == 0.0

    def test_sqrt_time_growth(self):
        q1 = cottrell_charge(1.0, 1, 1e-6, 1e-3, 7e-10)
        q4 = cottrell_charge(4.0, 1, 1e-6, 1e-3, 7e-10)
        assert q4 == pytest.approx(2.0 * q1)


class TestDiffusionLayer:
    def test_sqrt_growth(self):
        d1 = diffusion_layer_thickness(1.0, 7e-10)
        d4 = diffusion_layer_thickness(4.0, 7e-10)
        assert d4 == pytest.approx(2.0 * d1)

    def test_typical_scale(self):
        # ~47 um after one second for D = 7e-10 m^2/s.
        assert diffusion_layer_thickness(1.0, 7e-10) \
            == pytest.approx(46.9e-6, rel=1e-2)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            diffusion_layer_thickness(-1.0, 7e-10)
