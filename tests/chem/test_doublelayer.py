"""Tests for repro.chem.doublelayer."""

import numpy as np
import pytest

from repro.chem.doublelayer import DoubleLayer


@pytest.fixture()
def layer():
    return DoubleLayer(capacitance_per_area=0.2, series_resistance=100.0)


class TestValidation:
    def test_rejects_non_positive_capacitance(self):
        with pytest.raises(ValueError):
            DoubleLayer(capacitance_per_area=0.0)

    def test_rejects_negative_resistance(self):
        with pytest.raises(ValueError):
            DoubleLayer(capacitance_per_area=0.2, series_resistance=-1.0)


class TestStatics(object):
    def test_capacitance_scales_with_area(self, layer):
        assert layer.capacitance(2e-6) == pytest.approx(2 * layer.capacitance(1e-6))

    def test_time_constant(self, layer):
        # 0.2 F/m^2 * 1 mm^2 = 0.2 uF; tau = 100 * 0.2e-6 = 20 us.
        assert layer.time_constant(1e-6) == pytest.approx(2e-5)

    def test_sweep_current(self, layer):
        # i = C v: 0.2 uF * 0.1 V/s = 20 nA.
        assert layer.sweep_current(0.1, 1e-6) == pytest.approx(2e-8)

    def test_ir_drop(self, layer):
        assert layer.ir_drop(1e-6) == pytest.approx(1e-4)

    def test_charge_for_step(self, layer):
        assert layer.charge_for_step(0.65, 1e-6) == pytest.approx(0.65 * 0.2e-6)


class TestStepTransient:
    def test_initial_current_is_step_over_resistance(self, layer):
        transient = layer.step_transient(np.array([0.0]), 0.65, 1e-6)
        assert transient[0] == pytest.approx(0.65 / 100.0)

    def test_decays_with_time_constant(self, layer):
        tau = layer.time_constant(1e-6)
        transient = layer.step_transient(np.array([0.0, tau]), 1.0, 1e-6)
        assert transient[1] / transient[0] == pytest.approx(np.exp(-1.0))

    def test_total_charge_matches(self, layer):
        tau = layer.time_constant(1e-6)
        times = np.linspace(0.0, 20 * tau, 20000)
        transient = layer.step_transient(times, 0.65, 1e-6)
        charge = np.trapezoid(transient, times)
        assert charge == pytest.approx(layer.charge_for_step(0.65, 1e-6),
                                       rel=1e-3)

    def test_zero_resistance_gives_no_transient(self):
        ideal = DoubleLayer(capacitance_per_area=0.2, series_resistance=0.0)
        transient = ideal.step_transient(np.array([0.0, 1.0]), 1.0, 1e-6)
        assert np.all(transient == 0.0)

    def test_rejects_negative_times(self, layer):
        with pytest.raises(ValueError):
            layer.step_transient(np.array([-1.0]), 1.0, 1e-6)


class TestSweepTransient:
    def test_plateau_is_sweep_current(self, layer):
        tau = layer.time_constant(1e-6)
        times = np.array([50 * tau])
        transient = layer.sweep_transient(times, 0.1, 1e-6)
        assert transient[0] == pytest.approx(layer.sweep_current(0.1, 1e-6),
                                             rel=1e-6)

    def test_starts_at_zero(self, layer):
        transient = layer.sweep_transient(np.array([0.0]), 0.1, 1e-6)
        assert transient[0] == pytest.approx(0.0)


class TestSettling:
    def test_settling_time_formula(self, layer):
        tau = layer.time_constant(1e-6)
        assert layer.settling_time(1e-6, 1e-3) == pytest.approx(
            tau * np.log(1e3))

    def test_rejects_bad_tolerance(self, layer):
        with pytest.raises(ValueError):
            layer.settling_time(1e-6, 0.0)
