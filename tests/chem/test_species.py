"""Tests for repro.chem.species."""

import pytest

from repro.chem.species import (
    CYP_HEME,
    FERRICYANIDE,
    HYDROGEN_PEROXIDE,
    OXYGEN,
    RedoxCouple,
)


class TestRedoxCoupleValidation:
    def test_valid_couple_constructs(self):
        couple = RedoxCouple("x", 1, 0.0, 1e-9, 1e-9, 1e-5)
        assert couple.alpha == 0.5

    def test_rejects_zero_electrons(self):
        with pytest.raises(ValueError, match="n_electrons"):
            RedoxCouple("x", 0, 0.0, 1e-9, 1e-9, 1e-5)

    def test_rejects_non_positive_diffusion(self):
        with pytest.raises(ValueError, match="diffusion"):
            RedoxCouple("x", 1, 0.0, 0.0, 1e-9, 1e-5)

    def test_rejects_non_positive_k0(self):
        with pytest.raises(ValueError, match="k0"):
            RedoxCouple("x", 1, 0.0, 1e-9, 1e-9, 0.0)

    def test_rejects_alpha_out_of_range(self):
        with pytest.raises(ValueError, match="alpha"):
            RedoxCouple("x", 1, 0.0, 1e-9, 1e-9, 1e-5, alpha=1.0)


class TestRateEnhancement:
    def test_enhancement_multiplies_k0(self):
        enhanced = FERRICYANIDE.with_rate_enhancement(8.0)
        assert enhanced.k0 == pytest.approx(8.0 * FERRICYANIDE.k0)

    def test_enhancement_preserves_other_fields(self):
        enhanced = FERRICYANIDE.with_rate_enhancement(2.0)
        assert enhanced.formal_potential == FERRICYANIDE.formal_potential
        assert enhanced.n_electrons == FERRICYANIDE.n_electrons

    def test_original_unchanged(self):
        k0 = FERRICYANIDE.k0
        FERRICYANIDE.with_rate_enhancement(100.0)
        assert FERRICYANIDE.k0 == k0

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            FERRICYANIDE.with_rate_enhancement(0.0)


class TestBuiltinCouples:
    def test_h2o2_is_two_electron(self):
        # H2O2 -> O2 + 2H+ + 2e-: the oxidase sensor signal.
        assert HYDROGEN_PEROXIDE.n_electrons == 2

    def test_cyp_heme_is_one_electron_negative_potential(self):
        assert CYP_HEME.n_electrons == 1
        assert CYP_HEME.formal_potential < 0

    def test_ferricyanide_is_fast(self):
        # The validation couple must be near-reversible at CV scan rates.
        assert FERRICYANIDE.k0 >= 1e-5

    def test_mean_diffusion_between_individual_values(self):
        mean = FERRICYANIDE.mean_diffusion
        low = min(FERRICYANIDE.diffusion_ox, FERRICYANIDE.diffusion_red)
        high = max(FERRICYANIDE.diffusion_ox, FERRICYANIDE.diffusion_red)
        assert low <= mean <= high

    def test_oxygen_reducible(self):
        assert OXYGEN.formal_potential < HYDROGEN_PEROXIDE.formal_potential
