"""Tests for repro.chem.nernst."""

import pytest
from hypothesis import given, strategies as st

from repro.chem.nernst import (
    equilibrium_surface_fractions,
    nernst_potential,
    surface_concentration_ratio,
)

potentials = st.floats(min_value=-0.5, max_value=0.5,
                       allow_nan=False, allow_infinity=False)


class TestNernstPotential:
    def test_equal_concentrations_give_formal_potential(self):
        assert nernst_potential(0.225, 1, 1e-3, 1e-3) == pytest.approx(0.225)

    def test_ten_to_one_ratio_gives_59mv(self):
        shift = nernst_potential(0.0, 1, 1e-2, 1e-3)
        assert shift == pytest.approx(0.05916, rel=1e-3)

    def test_two_electron_halves_shift(self):
        one = nernst_potential(0.0, 1, 1e-2, 1e-3)
        two = nernst_potential(0.0, 2, 1e-2, 1e-3)
        assert two == pytest.approx(one / 2.0)

    def test_rejects_non_positive_concentrations(self):
        with pytest.raises(ValueError):
            nernst_potential(0.0, 1, 0.0, 1e-3)


class TestSurfaceRatio:
    @given(potentials)
    def test_roundtrip_with_nernst_potential(self, potential):
        ratio = surface_concentration_ratio(potential, 0.1, 1)
        recovered = nernst_potential(0.1, 1, ratio, 1.0)
        assert recovered == pytest.approx(potential, abs=1e-9)

    def test_ratio_unity_at_formal_potential(self):
        assert surface_concentration_ratio(0.2, 0.2, 1) == pytest.approx(1.0)

    @given(potentials, potentials)
    def test_monotonic_in_potential(self, p1, p2):
        r1 = surface_concentration_ratio(p1, 0.0, 1)
        r2 = surface_concentration_ratio(p2, 0.0, 1)
        if p1 < p2:
            assert r1 <= r2

    def test_extreme_potentials_do_not_overflow(self):
        assert surface_concentration_ratio(50.0, 0.0, 1) > 0
        assert surface_concentration_ratio(-50.0, 0.0, 1) > 0


class TestEquilibriumFractions:
    def test_fractions_sum_to_one(self):
        f_ox, f_red = equilibrium_surface_fractions(0.05, 0.0, 1)
        assert f_ox + f_red == pytest.approx(1.0)

    def test_half_and_half_at_formal_potential(self):
        f_ox, f_red = equilibrium_surface_fractions(-0.35, -0.35, 1)
        assert f_ox == pytest.approx(0.5)
        assert f_red == pytest.approx(0.5)

    def test_oxidized_dominates_at_positive_overpotential(self):
        f_ox, __ = equilibrium_surface_fractions(0.3, 0.0, 1)
        assert f_ox > 0.99

    def test_reduced_dominates_at_negative_overpotential(self):
        __, f_red = equilibrium_surface_fractions(-0.3, 0.0, 1)
        assert f_red > 0.99
