"""Tests for repro.chem.impedance (section 2.3 impedimetric class)."""

import numpy as np
import pytest

from repro.chem.butler_volmer import exchange_current_density
from repro.chem.impedance import (
    RandlesCircuit,
    binding_capacitance_shift,
    binding_rct_shift,
    charge_transfer_resistance,
)


@pytest.fixture()
def circuit():
    return RandlesCircuit(
        solution_resistance_ohm=100.0,
        charge_transfer_resistance_ohm=10_000.0,
        double_layer_capacitance_f=1e-6,
    )


class TestSpectrum:
    def test_high_frequency_limit_is_rs(self, circuit):
        z = circuit.impedance(1e7)
        assert z.real == pytest.approx(100.0, rel=1e-2)
        assert abs(z.imag) < 50.0

    def test_low_frequency_limit_is_rs_plus_rct(self, circuit):
        z = circuit.impedance(1e-4)
        assert z.real == pytest.approx(10_100.0, rel=1e-3)

    def test_nyquist_semicircle_apex(self, circuit):
        f_apex = circuit.characteristic_frequency_hz()
        z = circuit.impedance(f_apex)
        # At the apex, -Im(Z) = Rct/2 and Re(Z) = Rs + Rct/2.
        assert -z.imag == pytest.approx(5000.0, rel=1e-2)
        assert z.real == pytest.approx(100.0 + 5000.0, rel=1e-2)

    def test_spectrum_shapes(self, circuit):
        freqs, z = circuit.spectrum(0.1, 1e5, 40)
        assert freqs.shape == z.shape == (40,)
        assert np.all(-z.imag >= -1e-9)  # capacitive quadrant

    def test_warburg_tail_at_low_frequency(self):
        with_warburg = RandlesCircuit(100.0, 10_000.0, 1e-6,
                                      warburg_sigma_ohm_rts=500.0)
        without = RandlesCircuit(100.0, 10_000.0, 1e-6)
        z_w = with_warburg.impedance(0.01)
        z_0 = without.impedance(0.01)
        assert z_w.real > z_0.real
        assert -z_w.imag > -z_0.imag

    def test_rejects_non_positive_frequency(self, circuit):
        with pytest.raises(ValueError):
            circuit.impedance(0.0)


class TestKineticsLink:
    def test_rct_from_exchange_current(self):
        # RT/(nF i0): 1 uA exchange current -> ~25.7 kohm.
        assert charge_transfer_resistance(1e-6) \
            == pytest.approx(25_693.0, rel=1e-2)

    def test_cnt_enhancement_shrinks_semicircle(self):
        """The EIS signature of CNT modification: higher k0 -> larger i0
        -> smaller Rct (paper section 2.4 electron-transfer claim)."""
        area, conc_si = 1e-6, 1.0  # 1 mM in mol/m^3
        bare_i0 = exchange_current_density(5e-6, 1, conc_si, conc_si) * area
        cnt_i0 = exchange_current_density(4e-5, 1, conc_si, conc_si) * area
        assert charge_transfer_resistance(cnt_i0) \
            < charge_transfer_resistance(bare_i0) / 5.0


class TestBindingResponses:
    def test_faradic_sensor_rct_grows_with_binding(self, circuit):
        bound = binding_rct_shift(circuit, surface_occupancy=0.5)
        assert bound.charge_transfer_resistance_ohm \
            > circuit.charge_transfer_resistance_ohm

    def test_faradic_response_monotonic(self, circuit):
        values = [binding_rct_shift(circuit, t).charge_transfer_resistance_ohm
                  for t in (0.0, 0.25, 0.5, 0.75)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_zero_occupancy_identity(self, circuit):
        same = binding_rct_shift(circuit, 0.0)
        assert same.charge_transfer_resistance_ohm \
            == circuit.charge_transfer_resistance_ohm

    def test_capacitive_sensor_capacitance_drops(self, circuit):
        bound = binding_capacitance_shift(circuit, 0.5,
                                          layer_capacitance_f=2e-7)
        assert bound.double_layer_capacitance_f \
            < circuit.double_layer_capacitance_f

    def test_capacitive_full_coverage_series_limit(self, circuit):
        layer_c = 2e-7
        bound = binding_capacitance_shift(circuit, 1.0, layer_c)
        base = circuit.double_layer_capacitance_f
        expected = base * layer_c / (base + layer_c)
        assert bound.double_layer_capacitance_f == pytest.approx(expected)

    def test_rejects_bad_occupancy(self, circuit):
        with pytest.raises(ValueError):
            binding_rct_shift(circuit, 1.5)
