"""Tests for repro.chem.butler_volmer."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.chem.butler_volmer import (
    butler_volmer_current_density,
    exchange_current_density,
    overpotential_for_current_density,
    rate_constants,
    tafel_slope,
)
from repro.constants import FARADAY, thermal_voltage

etas = st.floats(min_value=-0.4, max_value=0.4,
                 allow_nan=False, allow_infinity=False)


class TestRateConstants:
    def test_equal_at_formal_potential(self):
        kf, kb = rate_constants(0.2, 0.2, 1e-5, 0.5, 1)
        assert kf == pytest.approx(kb)
        assert kf == pytest.approx(1e-5)

    def test_reduction_favored_below_formal_potential(self):
        kf, kb = rate_constants(-0.1, 0.0, 1e-5, 0.5, 1)
        assert kf > kb

    def test_oxidation_favored_above_formal_potential(self):
        kf, kb = rate_constants(0.1, 0.0, 1e-5, 0.5, 1)
        assert kb > kf

    def test_product_is_potential_independent_for_symmetric_alpha(self):
        # kf * kb = k0^2 for alpha = 0.5 at any potential.
        kf1, kb1 = rate_constants(0.05, 0.0, 1e-5, 0.5, 1)
        kf2, kb2 = rate_constants(-0.17, 0.0, 1e-5, 0.5, 1)
        assert kf1 * kb1 == pytest.approx(kf2 * kb2, rel=1e-9)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            rate_constants(0.0, 0.0, 1e-5, 1.5, 1)


class TestButlerVolmer:
    def test_zero_current_at_equilibrium(self):
        assert butler_volmer_current_density(0.0, 1.0) == pytest.approx(0.0)

    def test_positive_overpotential_gives_anodic_current(self):
        assert butler_volmer_current_density(0.1, 1.0) > 0

    def test_negative_overpotential_gives_cathodic_current(self):
        assert butler_volmer_current_density(-0.1, 1.0) < 0

    def test_antisymmetric_for_symmetric_alpha(self):
        forward = butler_volmer_current_density(0.08, 1.0, alpha=0.5)
        backward = butler_volmer_current_density(-0.08, 1.0, alpha=0.5)
        assert forward == pytest.approx(-backward, rel=1e-9)

    def test_linear_regime_small_overpotential(self):
        # j ~ j0 * eta / (RT/nF) for |eta| << RT/F.
        eta = 1e-4
        j = butler_volmer_current_density(eta, 1.0)
        expected = eta / thermal_voltage()
        assert j == pytest.approx(expected, rel=1e-2)

    @given(etas)
    def test_monotonic_in_overpotential(self, eta):
        j1 = butler_volmer_current_density(eta, 1.0)
        j2 = butler_volmer_current_density(eta + 0.01, 1.0)
        assert j2 > j1


class TestExchangeCurrent:
    def test_symmetric_concentrations(self):
        j0 = exchange_current_density(1e-5, 1, 1.0, 1.0)
        assert j0 == pytest.approx(FARADAY * 1e-5)

    def test_scales_with_k0(self):
        base = exchange_current_density(1e-5, 1, 1.0, 1.0)
        assert exchange_current_density(2e-5, 1, 1.0, 1.0) \
            == pytest.approx(2 * base)

    def test_rejects_negative_concentration(self):
        with pytest.raises(ValueError):
            exchange_current_density(1e-5, 1, -1.0, 1.0)


class TestTafelAndInversion:
    def test_tafel_slope_118mv_per_decade(self):
        assert tafel_slope(0.5, 1) == pytest.approx(0.118, rel=2e-2)

    def test_tafel_slope_decreases_with_n(self):
        assert tafel_slope(0.5, 2) == pytest.approx(tafel_slope(0.5, 1) / 2)

    @given(st.floats(min_value=-100.0, max_value=100.0).filter(
        lambda x: abs(x) > 1e-3))
    def test_inversion_roundtrip(self, target):
        eta = overpotential_for_current_density(target, 1.0)
        j = butler_volmer_current_density(eta, 1.0)
        assert j == pytest.approx(target, rel=1e-6)

    def test_inversion_rejects_zero_exchange_density(self):
        with pytest.raises(ValueError):
            overpotential_for_current_density(1.0, 0.0)

    def test_tafel_region_matches_slope(self):
        # At high overpotential, a decade of current costs one Tafel slope.
        eta1 = overpotential_for_current_density(1e3, 1e-2)
        eta2 = overpotential_for_current_density(1e4, 1e-2)
        assert eta2 - eta1 == pytest.approx(
            tafel_slope(0.5, 1), rel=5e-2)

    def test_log_symmetry(self):
        eta = overpotential_for_current_density(-50.0, 1.0)
        assert eta == pytest.approx(
            -overpotential_for_current_density(50.0, 1.0), rel=1e-9)

    def test_exp_identity(self):
        # Explicit form check at one point.
        eta, j0 = 0.12, 3.0
        f = 1.0 / thermal_voltage()
        expected = j0 * (math.exp(0.5 * f * eta) - math.exp(-0.5 * f * eta))
        assert butler_volmer_current_density(eta, j0) \
            == pytest.approx(expected, rel=1e-12)
