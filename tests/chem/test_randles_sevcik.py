"""Tests for repro.chem.randles_sevcik."""

import pytest
from hypothesis import given, strategies as st

from repro.chem.randles_sevcik import (
    peak_current_irreversible,
    peak_current_reversible,
    peak_separation_reversible,
    scan_rate_for_peak_current,
)

rates = st.floats(min_value=1e-3, max_value=10.0,
                  allow_nan=False, allow_infinity=False)


class TestReversiblePeak:
    def test_textbook_coefficient(self):
        # ip = 2.69e5 n^3/2 A D^1/2 C v^1/2 (A in cm^2, C mol/cm^3, D cm^2/s)
        area_cm2, d_cm2_s, conc_mol_cm3, rate = 0.07, 6.7e-6, 1e-6, 0.1
        classic = 2.69e5 * area_cm2 * (d_cm2_s ** 0.5) * conc_mol_cm3 * rate ** 0.5
        ours = peak_current_reversible(1, area_cm2 * 1e-4, d_cm2_s * 1e-4,
                                       1e-3, rate)
        assert ours == pytest.approx(classic, rel=5e-3)

    @given(rates)
    def test_sqrt_scan_rate_scaling(self, rate):
        i1 = peak_current_reversible(1, 1e-5, 7e-10, 1e-3, rate)
        i2 = peak_current_reversible(1, 1e-5, 7e-10, 1e-3, 4.0 * rate)
        assert i2 == pytest.approx(2.0 * i1, rel=1e-9)

    def test_linear_in_concentration(self):
        i1 = peak_current_reversible(1, 1e-5, 7e-10, 1e-3, 0.1)
        i2 = peak_current_reversible(1, 1e-5, 7e-10, 3e-3, 0.1)
        assert i2 == pytest.approx(3.0 * i1)

    def test_n_three_halves_scaling(self):
        i1 = peak_current_reversible(1, 1e-5, 7e-10, 1e-3, 0.1)
        i2 = peak_current_reversible(2, 1e-5, 7e-10, 1e-3, 0.1)
        assert i2 == pytest.approx(i1 * 2 ** 1.5, rel=1e-9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            peak_current_reversible(1, 0.0, 7e-10, 1e-3, 0.1)
        with pytest.raises(ValueError):
            peak_current_reversible(1, 1e-5, 7e-10, 1e-3, 0.0)


class TestIrreversiblePeak:
    def test_lower_than_reversible(self):
        reversible = peak_current_reversible(1, 1e-5, 7e-10, 1e-3, 0.1)
        irreversible = peak_current_irreversible(1, 0.5, 1e-5, 7e-10, 1e-3, 0.1)
        assert irreversible < reversible

    def test_alpha_scaling(self):
        low = peak_current_irreversible(1, 0.25, 1e-5, 7e-10, 1e-3, 0.1)
        high = peak_current_irreversible(1, 0.5, 1e-5, 7e-10, 1e-3, 0.1)
        assert high == pytest.approx(low * 2 ** 0.5, rel=1e-9)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            peak_current_irreversible(1, 0.0, 1e-5, 7e-10, 1e-3, 0.1)


class TestPeakSeparation:
    def test_57mv_for_one_electron(self):
        assert peak_separation_reversible(1) == pytest.approx(0.057, abs=1e-3)

    def test_halves_for_two_electrons(self):
        assert peak_separation_reversible(2) \
            == pytest.approx(peak_separation_reversible(1) / 2)


class TestScanRateInversion:
    @given(st.floats(min_value=1e-9, max_value=1e-5))
    def test_roundtrip(self, target_peak):
        rate = scan_rate_for_peak_current(target_peak, 1, 1e-5, 7e-10, 1e-3)
        recovered = peak_current_reversible(1, 1e-5, 7e-10, 1e-3, rate)
        assert recovered == pytest.approx(target_peak, rel=1e-9)

    def test_rejects_non_positive_target(self):
        with pytest.raises(ValueError):
            scan_rate_for_peak_current(0.0, 1, 1e-5, 7e-10, 1e-3)
