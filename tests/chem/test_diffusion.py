"""Tests for repro.chem.diffusion: Cottrell and conservation validation."""

import numpy as np
import pytest

from repro.chem.cottrell import cottrell_current
from repro.chem.diffusion import DiffusionGrid1D, ElectrodeDiffusionSystem
from repro.chem.species import FERRICYANIDE, RedoxCouple
from repro.constants import FARADAY


class TestGridConstruction:
    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError, match="nodes"):
            DiffusionGrid1D(7e-10, 1e-6, 5, 1e-3, 1e-3)

    def test_rejects_unknown_boundary(self):
        with pytest.raises(ValueError, match="left_bc"):
            DiffusionGrid1D(7e-10, 1e-6, 50, 1e-3, 1e-3, left_bc="magic")

    def test_for_transient_sizes_box(self):
        grid = DiffusionGrid1D.for_transient(7e-10, 1.0, 100, 1e-3)
        box = grid.dx * (grid.n_nodes - 1)
        layer = np.sqrt(7e-10 * 1.0)
        assert box >= 5.9 * layer

    def test_initial_profile_is_bulk(self):
        grid = DiffusionGrid1D(7e-10, 1e-6, 50, 1e-3, 2e-3, left_bc="noflux")
        assert np.allclose(grid.profile_molar, 2e-3)


class TestCottrellValidation:
    def test_flux_matches_cottrell(self):
        grid = DiffusionGrid1D.for_transient(7e-10, 1.0, 500, 1e-3)
        fluxes = grid.run(500)
        i_sim = FARADAY * 1e-6 * fluxes[-1]  # n=1, A=1 mm^2
        i_analytic = cottrell_current(1.0, 1, 1e-6, 1e-3, 7e-10)
        assert i_sim == pytest.approx(i_analytic, rel=5e-3)

    def test_flux_decays_as_inverse_sqrt_time(self):
        grid = DiffusionGrid1D.for_transient(7e-10, 4.0, 2000, 1e-3)
        fluxes = grid.run(2000)
        # Compare t=1 s (index 499) with t=4 s (index 1999).
        assert fluxes[499] == pytest.approx(2.0 * fluxes[1999], rel=2e-2)

    def test_surface_concentration_pinned(self):
        grid = DiffusionGrid1D.for_transient(7e-10, 0.5, 100, 1e-3,
                                             left_value_molar=0.0)
        grid.run(100)
        assert grid.profile_molar[0] == pytest.approx(0.0, abs=1e-12)

    def test_bulk_concentration_untouched(self):
        grid = DiffusionGrid1D.for_transient(7e-10, 0.5, 100, 1e-3)
        grid.run(100)
        assert grid.profile_molar[-1] == pytest.approx(1e-3, rel=1e-6)


class TestConservation:
    def test_closed_box_conserves_mass(self):
        grid = DiffusionGrid1D(7e-10, 2e-6, 60, 1e-3, 1e-3,
                               left_bc="noflux", right_bc="noflux")
        # Perturb the initial profile, then diffuse.
        grid._conc[:30] *= 2.0
        initial = grid.total_amount_per_area()
        for __ in range(500):
            grid.step()
        assert grid.total_amount_per_area() == pytest.approx(initial, rel=1e-9)

    def test_closed_box_relaxes_to_uniform(self):
        grid = DiffusionGrid1D(7e-10, 1e-6, 40, 5e-4, 1e-3,
                               left_bc="noflux", right_bc="noflux")
        grid._conc[:10] *= 3.0
        for __ in range(20000):
            grid.step()
        profile = grid.profile_molar
        assert np.ptp(profile) / np.mean(profile) < 1e-3


class TestElectrodeDiffusionSystem:
    def test_rejects_bad_stability_factor(self):
        with pytest.raises(ValueError, match="stability"):
            ElectrodeDiffusionSystem(FERRICYANIDE, 1e-6, 1e-3, 0.0,
                                     1.0, 100, stability_factor=0.6)

    def test_zero_current_at_rest_potential(self):
        system = ElectrodeDiffusionSystem(FERRICYANIDE, 1e-6, 1e-3, 1e-3,
                                          1.0, 200)
        # At E0 with equal concentrations, no net current flows.
        currents = system.run(np.full(200, FERRICYANIDE.formal_potential))
        assert np.max(np.abs(currents)) < 1e-12

    def test_reduction_gives_negative_current(self):
        system = ElectrodeDiffusionSystem(FERRICYANIDE, 1e-6, 1e-3, 0.0,
                                          1.0, 200)
        potential = FERRICYANIDE.formal_potential - 0.3
        currents = system.run(np.full(200, potential))
        assert currents[-1] < 0

    def test_oxidation_gives_positive_current(self):
        system = ElectrodeDiffusionSystem(FERRICYANIDE, 1e-6, 0.0, 1e-3,
                                          1.0, 200)
        potential = FERRICYANIDE.formal_potential + 0.3
        currents = system.run(np.full(200, potential))
        assert currents[-1] > 0

    def test_sum_conserved_with_equal_diffusion(self):
        couple = RedoxCouple("sym", 1, 0.0, 7e-10, 7e-10, 1e-4)
        system = ElectrodeDiffusionSystem(couple, 1e-6, 1e-3, 1e-3, 0.5, 300)
        initial = system.total_amount_per_area()
        system.run(np.linspace(0.3, -0.3, 300))
        # O->R conversion conserves O+R; bulk Dirichlet adds nothing net
        # because the far boundary stays at bulk for both species.
        assert system.total_amount_per_area() == pytest.approx(initial, rel=1e-6)

    def test_step_depletion_approaches_cottrell(self):
        system = ElectrodeDiffusionSystem(FERRICYANIDE, 1e-6, 1e-3, 0.0,
                                          1.0, 1000)
        potential = FERRICYANIDE.formal_potential - 0.4  # mass-transfer limit
        currents = system.run(np.full(1000, potential))
        i_analytic = cottrell_current(1.0, 1, 1e-6, 1e-3,
                                      FERRICYANIDE.diffusion_ox)
        assert abs(currents[-1]) == pytest.approx(i_analytic, rel=5e-2)

    def test_surface_concentrations_stay_non_negative(self):
        system = ElectrodeDiffusionSystem(FERRICYANIDE, 1e-6, 1e-3, 0.0,
                                          1.0, 500)
        system.run(np.linspace(0.5, -0.5, 500))
        assert np.all(system.profile_ox_molar >= 0)
        assert np.all(system.profile_red_molar >= 0)
