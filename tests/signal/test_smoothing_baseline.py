"""Tests for repro.signal.smoothing and repro.signal.baseline."""

import numpy as np
import pytest

from repro.signal.baseline import (
    baseline_from_flanks,
    fit_polynomial_baseline,
    subtract_baseline,
)
from repro.signal.smoothing import (
    exponential_smoothing,
    moving_average,
    savitzky_golay,
)


class TestMovingAverage:
    def test_preserves_constant(self):
        x = np.full(50, 3.0)
        assert np.allclose(moving_average(x, 7), 3.0)

    def test_preserves_length(self):
        assert moving_average(np.arange(20.0), 5).size == 20

    def test_reduces_noise(self, rng):
        noisy = rng.normal(0.0, 1.0, 5000)
        smoothed = moving_average(noisy, 21)
        assert np.std(smoothed) < 0.4 * np.std(noisy)

    def test_window_one_is_identity(self):
        x = np.arange(10.0)
        assert np.array_equal(moving_average(x, 1), x)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average(np.arange(10.0), 0)


class TestExponentialSmoothing:
    def test_alpha_one_is_identity(self):
        x = np.arange(10.0)
        assert np.allclose(exponential_smoothing(x, 1.0), x)

    def test_tracks_step_asymptotically(self):
        x = np.concatenate([np.zeros(10), np.ones(500)])
        y = exponential_smoothing(x, 0.1)
        assert y[-1] == pytest.approx(1.0, rel=1e-2)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            exponential_smoothing(np.arange(10.0), 0.0)


class TestSavitzkyGolay:
    def test_preserves_parabola_exactly(self):
        x = np.linspace(-1, 1, 101)
        parabola = 3 * x ** 2 + 2 * x + 1
        assert np.allclose(savitzky_golay(parabola, 11, 2), parabola,
                           atol=1e-10)

    def test_peak_height_preserved_better_than_moving_average(self, rng):
        x = np.arange(200.0)
        peak = np.exp(-0.5 * ((x - 100) / 5.0) ** 2)
        sg = savitzky_golay(peak, 11, 2)
        ma = moving_average(peak, 11)
        assert abs(sg.max() - 1.0) < abs(ma.max() - 1.0)

    def test_even_window_rounded_up(self):
        x = np.arange(50.0)
        assert savitzky_golay(x, 10, 2).size == 50

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            savitzky_golay(np.arange(50.0), 2)


class TestBaseline:
    def test_recovers_linear_baseline(self):
        x = np.linspace(0.0, 1.0, 200)
        y = 2.0 * x + 0.5
        mask = np.ones_like(x, dtype=bool)
        baseline = fit_polynomial_baseline(x, y, mask, degree=1)
        assert np.allclose(baseline, y, atol=1e-12)

    def test_flank_fit_ignores_peak(self):
        x = np.linspace(-1.0, 1.0, 400)
        peak = np.exp(-0.5 * (x / 0.1) ** 2)
        y = 0.3 * x + peak
        baseline = baseline_from_flanks(x, y, peak_window=(-0.4, 0.4))
        corrected = subtract_baseline(y, baseline)
        # The peak survives baseline subtraction almost exactly.
        assert corrected.max() == pytest.approx(1.0, rel=2e-2)
        # Flank regions are flattened to ~zero.
        flanks = (x < -0.6) | (x > 0.6)
        assert np.max(np.abs(corrected[flanks])) < 0.02

    def test_constant_offset_removed(self):
        x = np.linspace(0.0, 1.0, 100)
        y = np.full_like(x, 7.0)
        baseline = baseline_from_flanks(x, y, peak_window=(0.4, 0.6))
        assert np.allclose(subtract_baseline(y, baseline), 0.0, atol=1e-12)

    def test_rejects_peak_window_covering_everything(self):
        x = np.linspace(0.0, 1.0, 100)
        with pytest.raises(ValueError, match="whole trace"):
            baseline_from_flanks(x, x, peak_window=(-1.0, 2.0))

    def test_rejects_insufficient_baseline_samples(self):
        x = np.linspace(0.0, 1.0, 10)
        mask = np.zeros_like(x, dtype=bool)
        mask[0] = True
        with pytest.raises(ValueError, match="baseline samples"):
            fit_polynomial_baseline(x, x, mask, degree=1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            subtract_baseline(np.zeros(10), np.zeros(11))
