"""Tests for peaks, steady-state extraction and drift correction."""

import numpy as np
import pytest

from repro.signal.drift import correct_linear_drift, estimate_drift_rate
from repro.signal.peaks import find_peak_index, measure_peak
from repro.signal.steady_state import extract_steady_state, rise_time


class TestPeakMeasurement:
    def make_cathodic_trace(self, height: float = 1e-6):
        potential = np.linspace(0.1, -0.8, 500)
        bell = np.exp(-0.5 * ((potential + 0.35) / 0.05) ** 2)
        current = -height * bell + 2e-7 * potential + 1e-7
        return potential, current

    def test_measures_height_above_baseline(self):
        potential, current = self.make_cathodic_trace(1e-6)
        peak = measure_peak(potential, current, (-0.5, -0.2), polarity=-1)
        assert peak.height == pytest.approx(1e-6, rel=5e-2)

    def test_height_linear_in_amplitude(self):
        p1, c1 = self.make_cathodic_trace(1e-6)
        p2, c2 = self.make_cathodic_trace(2e-6)
        h1 = measure_peak(p1, c1, (-0.5, -0.2), polarity=-1).height
        h2 = measure_peak(p2, c2, (-0.5, -0.2), polarity=-1).height
        assert h2 == pytest.approx(2 * h1, rel=2e-2)

    def test_position_at_bell_centre(self):
        potential, current = self.make_cathodic_trace()
        peak = measure_peak(potential, current, (-0.5, -0.2), polarity=-1)
        assert peak.position == pytest.approx(-0.35, abs=0.02)

    def test_anodic_polarity(self):
        potential = np.linspace(-0.8, 0.1, 500)
        current = 1e-6 * np.exp(-0.5 * ((potential + 0.35) / 0.05) ** 2)
        peak = measure_peak(potential, current, (-0.5, -0.2), polarity=1)
        assert peak.polarity == 1
        assert peak.height == pytest.approx(1e-6, rel=5e-2)

    def test_robust_to_noise(self, rng):
        potential, current = self.make_cathodic_trace(1e-6)
        noisy = current + rng.normal(0.0, 2e-8, current.size)
        peak = measure_peak(potential, noisy, (-0.5, -0.2), polarity=-1)
        assert peak.height == pytest.approx(1e-6, rel=0.15)

    def test_find_peak_index_polarities(self):
        y = np.array([0.0, 3.0, -5.0, 1.0])
        assert find_peak_index(y, 1) == 1
        assert find_peak_index(y, -1) == 2

    def test_rejects_empty_window(self):
        potential, current = self.make_cathodic_trace()
        with pytest.raises(ValueError, match="peak window"):
            measure_peak(potential, current, (5.0, 6.0))


class TestSteadyState:
    def test_extracts_plateau(self):
        t = np.linspace(0.0, 20.0, 400)
        current = 1e-6 * (1 - np.exp(-t / 1.0))
        result = extract_steady_state(t, current)
        assert result.value == pytest.approx(1e-6, rel=1e-3)
        assert result.settled

    def test_flags_unsettled_record(self):
        t = np.linspace(0.0, 5.0, 100)
        current = 1e-6 * t  # pure ramp never settles
        result = extract_steady_state(t, current)
        assert not result.settled

    def test_std_reflects_noise(self, rng):
        t = np.linspace(0.0, 20.0, 2000)
        current = np.full_like(t, 1e-6) + rng.normal(0, 1e-9, t.size)
        result = extract_steady_state(t, current)
        assert result.std == pytest.approx(1e-9, rel=0.2)

    def test_rise_time_of_first_order_step(self):
        t = np.linspace(0.0, 20.0, 4000)
        tau = 1.0
        current = 1e-6 * (1 - np.exp(-t / tau))
        # 10-90 rise time of a one-pole response: tau ln 9 ~ 2.197 tau.
        assert rise_time(t, current) == pytest.approx(2.197 * tau, rel=2e-2)

    def test_rise_time_rejects_flat_trace(self):
        t = np.linspace(0.0, 10.0, 100)
        with pytest.raises(ValueError, match="no step"):
            rise_time(t, np.ones_like(t))


class TestDrift:
    def test_estimates_slope(self):
        t = np.linspace(0.0, 100.0, 200)
        y = 5e-9 * t + 1e-6
        assert estimate_drift_rate(t, y) == pytest.approx(5e-9, rel=1e-9)

    def test_correction_flattens_trace(self):
        t = np.linspace(0.0, 100.0, 200)
        y = 5e-9 * t + 1e-6
        corrected = correct_linear_drift(t, y, 5e-9)
        assert np.ptp(corrected) < 1e-15

    def test_anchor_preserves_chosen_time(self):
        t = np.linspace(0.0, 10.0, 100)
        y = 2.0 * t
        anchor = float(t[50])
        corrected = correct_linear_drift(t, y, 2.0, anchor_time_s=anchor)
        assert corrected[50] == pytest.approx(y[50], abs=1e-9)

    def test_rejects_zero_span(self):
        with pytest.raises(ValueError):
            estimate_drift_rate(np.zeros(5), np.arange(5.0))
