"""Tests for the batch drift kernels in repro.signal.drift."""

import numpy as np
import pytest

import repro.rng
from repro.signal.drift import (
    correct_linear_drift,
    correct_linear_drift_batch,
    estimate_drift_rate,
    estimate_drift_rate_batch,
    ou_process_batch,
)
from repro.rng import spawn_generators


@pytest.fixture()
def traces():
    time_s = np.linspace(0.0, 100.0, 51)
    rates = np.array([0.5, -0.2, 0.0])
    offsets = np.array([1.0, 2.0, -3.0])
    y = offsets[:, None] + rates[:, None] * time_s[None, :]
    return time_s, y, rates


class TestEstimateBatch:
    def test_matches_scalar_per_channel(self, traces):
        time_s, y, __ = traces
        batch = estimate_drift_rate_batch(time_s, y)
        scalar = np.array([estimate_drift_rate(time_s, row) for row in y])
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)

    def test_recovers_known_rates(self, traces):
        time_s, y, rates = traces
        np.testing.assert_allclose(
            estimate_drift_rate_batch(time_s, y), rates, atol=1e-12)

    def test_shape_validation(self, traces):
        time_s, y, __ = traces
        with pytest.raises(ValueError):
            estimate_drift_rate_batch(time_s, y[:, :-1])
        with pytest.raises(ValueError):
            estimate_drift_rate_batch(time_s[:1], y[:, :1])
        with pytest.raises(ValueError):
            estimate_drift_rate_batch(np.zeros(51), y)


class TestCorrectBatch:
    def test_roundtrip_flattens(self, traces):
        time_s, y, rates = traces
        corrected = correct_linear_drift_batch(time_s, y, rates)
        residual_rates = estimate_drift_rate_batch(time_s, corrected)
        np.testing.assert_allclose(residual_rates, 0.0, atol=1e-12)

    def test_matches_scalar_per_channel(self, traces):
        time_s, y, rates = traces
        batch = correct_linear_drift_batch(time_s, y, rates)
        for i, row in enumerate(y):
            np.testing.assert_array_equal(
                batch[i], correct_linear_drift(time_s, row, rates[i]))

    def test_anchor_preserved(self, traces):
        time_s, y, rates = traces
        corrected = correct_linear_drift_batch(time_s, y, rates)
        np.testing.assert_allclose(corrected[:, 0], y[:, 0])

    def test_rate_count_validation(self, traces):
        time_s, y, __ = traces
        with pytest.raises(ValueError):
            correct_linear_drift_batch(time_s, y, np.zeros(2))


class TestOuProcess:
    def test_chunk_invariance(self):
        """The monitor's streaming contract: chunk boundaries with
        carried state reproduce one long call exactly."""
        whole, __ = ou_process_batch(
            100, 1.0, 30.0, 2.0, np.zeros(4),
            rngs=spawn_generators(5, 4))
        rngs = spawn_generators(5, 4)
        state = np.zeros(4)
        pieces = []
        for chunk in (7, 13, 41, 39):
            values, state = ou_process_batch(
                chunk, 1.0, 30.0, 2.0, state, rngs=rngs)
            pieces.append(values)
        np.testing.assert_array_equal(np.hstack(pieces), whole)

    def test_stationary_statistics(self):
        values, __ = ou_process_batch(
            20000, 1.0, 5.0, 3.0, np.zeros(8),
            rngs=spawn_generators(1, 8))
        tail = values[:, 100:]
        assert float(np.mean(tail)) == pytest.approx(0.0, abs=0.3)
        assert float(np.std(tail)) == pytest.approx(3.0, rel=0.1)

    def test_zero_sigma_is_deterministic_decay(self):
        values, state = ou_process_batch(
            10, 1.0, 2.0, 0.0, np.array([8.0]),
            rngs=spawn_generators(0, 1))
        expected = 8.0 * np.exp(-np.arange(1, 11) / 2.0)
        np.testing.assert_allclose(values[0], expected, rtol=1e-12)
        assert state[0] == values[0, -1]

    def test_seedable_via_global_seed(self):
        """rng=None draws from the shared stream: reproducible under
        set_global_seed (the PR's seedability guarantee)."""
        repro.rng.set_global_seed(77)
        a, __ = ou_process_batch(50, 1.0, 10.0, 1.0, np.zeros(2))
        repro.rng.set_global_seed(77)
        b, __ = ou_process_batch(50, 1.0, 10.0, 1.0, np.zeros(2))
        repro.rng.set_global_seed(None)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            ou_process_batch(0, 1.0, 1.0, 1.0, np.zeros(1))
        with pytest.raises(ValueError):
            ou_process_batch(5, -1.0, 1.0, 1.0, np.zeros(1))
        with pytest.raises(ValueError):
            ou_process_batch(5, 1.0, 0.0, 1.0, np.zeros(1))
        with pytest.raises(ValueError):
            ou_process_batch(5, 1.0, 1.0, -1.0, np.zeros(1))
        with pytest.raises(ValueError):
            ou_process_batch(5, 1.0, 1.0, 1.0, np.zeros(2),
                             rngs=spawn_generators(0, 3))
