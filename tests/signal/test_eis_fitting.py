"""Tests for repro.signal.eis_fitting."""

import numpy as np
import pytest

from repro.chem.impedance import RandlesCircuit
from repro.signal.eis_fitting import (
    fit_randles,
    measure_rct_from_spectrum,
)

TRUE = RandlesCircuit(
    solution_resistance_ohm=120.0,
    charge_transfer_resistance_ohm=8_000.0,
    double_layer_capacitance_f=2e-6,
)


class TestCleanFit:
    @pytest.fixture(scope="class")
    def fit(self):
        freqs, z = TRUE.spectrum(0.1, 1e5, 50)
        return fit_randles(freqs, z)

    def test_converges(self, fit):
        assert fit.converged

    def test_recovers_rs(self, fit):
        assert fit.circuit.solution_resistance_ohm \
            == pytest.approx(120.0, rel=1e-3)

    def test_recovers_rct(self, fit):
        assert fit.circuit.charge_transfer_resistance_ohm \
            == pytest.approx(8_000.0, rel=1e-3)

    def test_recovers_cdl(self, fit):
        assert fit.circuit.double_layer_capacitance_f \
            == pytest.approx(2e-6, rel=1e-3)

    def test_residual_negligible(self, fit):
        assert fit.relative_residual < 1e-6


class TestNoisyFit:
    def test_robust_to_measurement_noise(self, rng):
        freqs, z = TRUE.spectrum(0.1, 1e5, 60)
        noisy = z * (1.0 + rng.normal(0.0, 0.01, z.size)
                     + 1j * rng.normal(0.0, 0.01, z.size))
        fit = fit_randles(freqs, noisy)
        assert fit.circuit.charge_transfer_resistance_ohm \
            == pytest.approx(8_000.0, rel=0.05)

    def test_initial_guess_accepted(self):
        freqs, z = TRUE.spectrum(0.1, 1e5, 50)
        fit = fit_randles(freqs, z, initial=TRUE)
        assert fit.circuit.charge_transfer_resistance_ohm \
            == pytest.approx(8_000.0, rel=1e-6)

    def test_convenience_rct(self):
        freqs, z = TRUE.spectrum(0.1, 1e5, 50)
        assert measure_rct_from_spectrum(freqs, z) \
            == pytest.approx(8_000.0, rel=1e-3)


class TestImmunosensorPipeline:
    def test_binding_detected_through_fit(self):
        """End-to-end EIS sensing: binding shifts Rct; the fit sees it."""
        from repro.transducers.immunosensor import FaradicImmunosensor

        sensor = FaradicImmunosensor(baseline=TRUE, kd_molar=1e-9)
        freqs0, z0 = sensor.spectrum_at(0.0)
        freqs1, z1 = sensor.spectrum_at(1e-9)  # Kd-level antigen
        rct0 = measure_rct_from_spectrum(freqs0, z0)
        rct1 = measure_rct_from_spectrum(freqs1, z1)
        expected = sensor.circuit_at(1e-9).charge_transfer_resistance_ohm
        assert rct1 > rct0
        assert rct1 == pytest.approx(expected, rel=1e-3)


class TestValidation:
    def test_rejects_short_spectrum(self):
        with pytest.raises(ValueError, match="6 spectral"):
            fit_randles(np.array([1.0, 2.0]), np.array([1 + 1j, 2 + 2j]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            fit_randles(np.arange(1.0, 10.0), np.ones(5, dtype=complex))

    def test_rejects_non_positive_frequency(self):
        freqs = np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        with pytest.raises(ValueError):
            fit_randles(freqs, np.ones(6, dtype=complex))
