"""Property tests for the transduction-class models (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chem.impedance import RandlesCircuit
from repro.transducers.immunosensor import FaradicImmunosensor
from repro.transducers.qcm import QuartzCrystalMicrobalance
from repro.transducers.spr import SprSensor

kds = st.floats(min_value=1e-12, max_value=1e-6,
                allow_nan=False, allow_infinity=False)
concs = st.floats(min_value=0.0, max_value=1e-5,
                  allow_nan=False, allow_infinity=False)


class TestSprProperties:
    @given(kds, concs, concs)
    @settings(max_examples=40, deadline=None)
    def test_monotone_for_any_affinity(self, kd, c1, c2):
        sensor = SprSensor(kd_molar=kd)
        low, high = sorted((c1, c2))
        assert sensor.angle_shift_millideg(low) \
            <= sensor.angle_shift_millideg(high) + 1e-12

    @given(kds)
    @settings(max_examples=40, deadline=None)
    def test_lod_at_three_sigma_for_any_affinity(self, kd):
        sensor = SprSensor(kd_molar=kd)
        lod = sensor.limit_of_detection_molar()
        shift = sensor.angle_shift_millideg(lod)
        assert shift == pytest.approx(3 * sensor.noise_millideg, rel=1e-6)

    @given(kds, concs)
    @settings(max_examples=40, deadline=None)
    def test_signal_bounded_by_full_scale(self, kd, conc):
        sensor = SprSensor(kd_molar=kd)
        full = (sensor.angle_sensitivity_deg_per_riu
                * sensor.max_index_shift * 1e3)
        assert 0.0 <= sensor.angle_shift_millideg(conc) <= full


class TestQcmProperties:
    @given(kds, concs)
    @settings(max_examples=40, deadline=None)
    def test_shift_always_negative_or_zero(self, kd, conc):
        qcm = QuartzCrystalMicrobalance(kd_molar=kd)
        assert qcm.frequency_shift_hz(conc) <= 0.0

    @given(kds, concs)
    @settings(max_examples=40, deadline=None)
    def test_mass_bounded_by_monolayer(self, kd, conc):
        qcm = QuartzCrystalMicrobalance(kd_molar=kd)
        monolayer = qcm.receptor_density_m2 * qcm.target_mass_kg
        assert 0.0 <= qcm.bound_mass_kg_m2(conc) <= monolayer


class TestImmunosensorProperties:
    @given(kds, concs, concs)
    @settings(max_examples=40, deadline=None)
    def test_rct_monotone_for_any_affinity(self, kd, c1, c2):
        sensor = FaradicImmunosensor(
            baseline=RandlesCircuit(100.0, 5_000.0, 1e-6), kd_molar=kd)
        low, high = sorted((c1, c2))
        assert sensor.rct_shift_ohm(low) <= sensor.rct_shift_ohm(high) + 1e-9

    @given(kds)
    @settings(max_examples=40, deadline=None)
    def test_lod_consistency(self, kd):
        sensor = FaradicImmunosensor(
            baseline=RandlesCircuit(100.0, 5_000.0, 1e-6), kd_molar=kd)
        lod = sensor.limit_of_detection_molar()
        assert sensor.rct_shift_ohm(lod) == pytest.approx(
            3 * sensor.rct_noise_ohm, rel=1e-6)
