"""Tests for repro.transducers (the section 2.3 taxonomy models)."""

import math

import numpy as np
import pytest

from repro.chem.impedance import RandlesCircuit
from repro.transducers.immunosensor import FaradicImmunosensor
from repro.transducers.potentiometric import IonSelectiveElectrode
from repro.transducers.qcm import QuartzCrystalMicrobalance, sauerbrey_shift_hz
from repro.transducers.spr import SprSensor


class TestSpr:
    def test_angle_shift_monotone(self):
        sensor = SprSensor()
        low = sensor.angle_shift_millideg(1e-10)
        high = sensor.angle_shift_millideg(1e-8)
        assert 0 < low < high

    def test_saturates_at_full_scale(self):
        sensor = SprSensor()
        full = (sensor.angle_sensitivity_deg_per_riu
                * sensor.max_index_shift * 1e3)
        assert sensor.angle_shift_millideg(1e-3) == pytest.approx(full,
                                                                  rel=1e-3)

    def test_half_signal_at_kd(self):
        sensor = SprSensor(kd_molar=2e-9)
        full = (sensor.angle_sensitivity_deg_per_riu
                * sensor.max_index_shift * 1e3)
        assert sensor.angle_shift_millideg(2e-9) == pytest.approx(full / 2)

    def test_lod_sub_kd(self):
        sensor = SprSensor()
        lod = sensor.limit_of_detection_molar()
        assert 0 < lod < sensor.kd_molar

    def test_lod_gives_three_sigma_signal(self):
        sensor = SprSensor()
        shift = sensor.angle_shift_millideg(sensor.limit_of_detection_molar())
        assert shift == pytest.approx(3 * sensor.noise_millideg, rel=1e-6)

    def test_noise_reproducible(self):
        sensor = SprSensor()
        a = sensor.angle_shift_millideg(1e-9, np.random.default_rng(3))
        b = sensor.angle_shift_millideg(1e-9, np.random.default_rng(3))
        assert a == b


class TestQcm:
    def test_sauerbrey_negative_for_added_mass(self):
        assert sauerbrey_shift_hz(10e6, 1e-6) < 0

    def test_sauerbrey_textbook_value(self):
        # 5 MHz crystal, 1 ug/cm^2 -> ~ -56.6 Hz (C_f ~ 56.6 Hz cm^2/ug).
        shift = sauerbrey_shift_hz(5e6, 1e-9 * 1e4)  # 1 ug/cm^2 in kg/m^2
        assert shift == pytest.approx(-56.6, rel=0.05)

    def test_shift_quadratic_in_fundamental(self):
        assert sauerbrey_shift_hz(10e6, 1e-6) \
            == pytest.approx(4 * sauerbrey_shift_hz(5e6, 1e-6), rel=1e-9)

    def test_bound_mass_saturates(self):
        qcm = QuartzCrystalMicrobalance()
        assert qcm.bound_mass_kg_m2(1e-3) == pytest.approx(
            qcm.receptor_density_m2 * qcm.target_mass_kg, rel=1e-3)

    def test_frequency_shift_grows_with_concentration(self):
        qcm = QuartzCrystalMicrobalance()
        assert abs(qcm.frequency_shift_hz(1e-8)) \
            > abs(qcm.frequency_shift_hz(1e-10))

    def test_lod_finite_and_sub_kd(self):
        qcm = QuartzCrystalMicrobalance()
        lod = qcm.limit_of_detection_molar()
        assert 0 < lod < qcm.kd_molar

    def test_deaf_crystal_has_no_lod(self):
        qcm = QuartzCrystalMicrobalance(receptor_density_m2=1e10,
                                        noise_hz=100.0)
        assert qcm.limit_of_detection_molar() == float("inf")


class TestIonSelectiveElectrode:
    def test_nernstian_slope_59mv(self):
        ise = IonSelectiveElectrode(ion_charge=1)
        assert ise.slope_v_per_decade() == pytest.approx(0.05916, rel=1e-3)

    def test_divalent_ion_half_slope(self):
        ise = IonSelectiveElectrode(ion_charge=2)
        assert ise.slope_v_per_decade() == pytest.approx(0.02958, rel=1e-3)

    def test_decade_step_in_potential(self):
        ise = IonSelectiveElectrode(ion_charge=1,
                                    detection_floor_molar=1e-9)
        step = ise.potential_v(1e-3) - ise.potential_v(1e-4)
        assert step == pytest.approx(ise.slope_v_per_decade(), rel=1e-2)

    def test_anion_slope_inverted(self):
        ise = IonSelectiveElectrode(ion_charge=-1,
                                    detection_floor_molar=1e-9)
        assert ise.potential_v(1e-3) < ise.potential_v(1e-4)

    def test_interference_adds_apparent_activity(self):
        ise = IonSelectiveElectrode(
            ion_charge=1,
            selectivity={"K+": 0.01},
            interferent_charges={"K+": 1},
        )
        error = ise.interference_error_molar(1e-4, {"K+": 1e-2})
        assert error == pytest.approx(1e-4, rel=1e-6)  # 0.01 * 1e-2

    def test_unlisted_interferent_ignored(self):
        ise = IonSelectiveElectrode(ion_charge=1)
        assert ise.interference_error_molar(1e-4, {"Na+": 1.0}) == 0.0

    def test_floor_flattens_response(self):
        ise = IonSelectiveElectrode(ion_charge=1,
                                    detection_floor_molar=1e-6)
        step = ise.potential_v(1e-8) - ise.potential_v(1e-9)
        assert abs(step) < 0.001  # flat below the floor

    def test_missing_charge_number_rejected(self):
        with pytest.raises(ValueError, match="charge"):
            IonSelectiveElectrode(ion_charge=1, selectivity={"K+": 0.1})


class TestFaradicImmunosensor:
    @pytest.fixture()
    def sensor(self):
        return FaradicImmunosensor(
            baseline=RandlesCircuit(100.0, 5_000.0, 1e-6),
            kd_molar=1e-9,
            rct_noise_ohm=25.0,
        )

    def test_rct_shift_monotone(self, sensor):
        shifts = [sensor.rct_shift_ohm(c) for c in (0.0, 1e-10, 1e-9, 1e-8)]
        assert all(a < b for a, b in zip(shifts, shifts[1:]))

    def test_zero_antigen_zero_shift(self, sensor):
        assert sensor.rct_shift_ohm(0.0) == 0.0

    def test_half_occupancy_at_kd(self, sensor):
        assert sensor.occupancy(1e-9) == pytest.approx(0.5)

    def test_lod_produces_three_sigma_shift(self, sensor):
        lod = sensor.limit_of_detection_molar()
        assert sensor.rct_shift_ohm(lod) == pytest.approx(
            3 * sensor.rct_noise_ohm, rel=1e-6)

    def test_spectrum_semicircle_grows(self, sensor):
        __, z_blank = sensor.spectrum_at(0.0)
        __, z_bound = sensor.spectrum_at(1e-8)
        assert (-z_bound.imag).max() > (-z_blank.imag).max()

    def test_blocking_never_complete(self, sensor):
        circuit = sensor.circuit_at(1e-3)  # saturating antigen
        assert math.isfinite(circuit.charge_transfer_resistance_ohm)
