"""Tests for repro.bio (matrices and interferents)."""

import numpy as np
import pytest

from repro.bio.interference import (
    ASCORBATE,
    PARACETAMOL,
    URATE,
    total_interference_current,
)
from repro.bio.matrix import BUFFER, CELL_CULTURE_MEDIUM, SERUM

AREA = 2.5e-7  # microchip electrode
WORKING_POTENTIAL = 0.65


class TestInterferents:
    def test_no_current_below_onset(self):
        assert ASCORBATE.current_a(AREA, 0.1) == 0.0

    def test_current_above_onset(self):
        assert ASCORBATE.current_a(AREA, WORKING_POTENTIAL) > 0

    def test_nafion_blocks_anionic_interferents(self):
        """Ascorbate/urate rejection is a designed-in benefit of the
        paper's Nafion films."""
        bare = ASCORBATE.current_a(AREA, WORKING_POTENTIAL)
        filmed = ASCORBATE.current_a(AREA, WORKING_POTENTIAL,
                                     nafion_film=True)
        assert filmed < 0.2 * bare

    def test_nafion_barely_helps_neutral_paracetamol(self):
        bare = PARACETAMOL.current_a(AREA, WORKING_POTENTIAL)
        filmed = PARACETAMOL.current_a(AREA, WORKING_POTENTIAL,
                                       nafion_film=True)
        assert filmed > 0.5 * bare

    def test_current_linear_in_concentration(self):
        i1 = URATE.current_a(AREA, WORKING_POTENTIAL,
                             concentration_molar=1e-4)
        i2 = URATE.current_a(AREA, WORKING_POTENTIAL,
                             concentration_molar=2e-4)
        assert i2 == pytest.approx(2 * i1)

    def test_total_sums_components(self):
        interferents = [ASCORBATE, URATE, PARACETAMOL]
        total = total_interference_current(interferents, AREA,
                                           WORKING_POTENTIAL)
        parts = sum(i.current_a(AREA, WORKING_POTENTIAL)
                    for i in interferents)
        assert total == pytest.approx(parts)

    def test_rejects_bad_area(self):
        with pytest.raises(ValueError):
            ASCORBATE.current_a(0.0, WORKING_POTENTIAL)


class TestMatrices:
    def test_buffer_is_clean(self):
        assert BUFFER.interference_current_a(AREA, WORKING_POTENTIAL) == 0.0
        assert BUFFER.fouling_rate_per_hour == 0.0

    def test_serum_is_dirty(self):
        assert SERUM.interference_current_a(AREA, WORKING_POTENTIAL) > 0
        assert SERUM.fouling_rate_per_hour > 0

    def test_serum_interference_reduced_by_nafion(self):
        bare = SERUM.interference_current_a(AREA, WORKING_POTENTIAL)
        filmed = SERUM.interference_current_a(AREA, WORKING_POTENTIAL,
                                              nafion_film=True)
        assert filmed < bare

    def test_fouling_decays_sensitivity(self):
        assert SERUM.sensitivity_retention(0.0) == pytest.approx(1.0)
        day = SERUM.sensitivity_retention(24.0)
        assert 0.0 < day < 1.0

    def test_culture_medium_gentler_than_serum(self):
        assert CELL_CULTURE_MEDIUM.fouling_rate_per_hour \
            < SERUM.fouling_rate_per_hour

    def test_baseline_drift_accumulates(self):
        assert SERUM.baseline_drift_a(AREA, 10.0) \
            == pytest.approx(10 * SERUM.baseline_drift_a(AREA, 1.0))

    def test_serum_oxygen_below_air_saturation(self):
        assert SERUM.oxygen_molar < BUFFER.oxygen_molar

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            SERUM.sensitivity_retention(-1.0)


class TestMatrixBatchKernels:
    def test_retention_batch_matches_scalar(self):
        hours = np.array([[0.0, 12.0, 48.0], [6.0, 24.0, 168.0]])
        batch = SERUM.sensitivity_retention_batch(hours)
        for row in range(hours.shape[0]):
            for col in range(hours.shape[1]):
                assert batch[row, col] == pytest.approx(
                    SERUM.sensitivity_retention(float(hours[row, col])),
                    rel=1e-12)

    def test_baseline_drift_batch_matches_scalar(self):
        hours = np.array([[0.0, 24.0], [12.0, 168.0]])
        area = 1e-6
        batch = SERUM.baseline_drift_batch_a(area, hours)
        for row in range(hours.shape[0]):
            for col in range(hours.shape[1]):
                assert batch[row, col] == pytest.approx(
                    SERUM.baseline_drift_a(area, float(hours[row, col])),
                    rel=1e-12)

    def test_batch_kernels_validate(self):
        with pytest.raises(ValueError):
            SERUM.sensitivity_retention_batch(np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            SERUM.baseline_drift_batch_a(0.0, np.array([1.0]))
        with pytest.raises(ValueError):
            SERUM.baseline_drift_batch_a(1e-6, np.array([-1.0]))
