"""Test package (unique module names; see tests/__init__.py)."""
