"""Tests for repro.enzymes.immobilization."""

import pytest
from hypothesis import given, strategies as st

from repro.enzymes.catalog import GLUCOSE_OXIDASE
from repro.enzymes.immobilization import (
    ImmobilizedLayer,
    coverage_from_sensitivity,
)
from repro.units import sensitivity_si_from_paper


@pytest.fixture()
def layer():
    return ImmobilizedLayer(
        enzyme=GLUCOSE_OXIDASE,
        coverage_mol_m2=1e-7,
        activity_retention=0.5,
        km_app_molar=9e-3,
        collection_efficiency=0.85,
    )


class TestValidation:
    def test_rejects_zero_coverage(self):
        with pytest.raises(ValueError):
            ImmobilizedLayer(GLUCOSE_OXIDASE, 0.0)

    def test_rejects_bad_retention(self):
        with pytest.raises(ValueError):
            ImmobilizedLayer(GLUCOSE_OXIDASE, 1e-7, activity_retention=1.5)

    def test_rejects_bad_collection(self):
        with pytest.raises(ValueError):
            ImmobilizedLayer(GLUCOSE_OXIDASE, 1e-7, collection_efficiency=0.0)


class TestKinetics:
    def test_effective_kcat_scaled_by_retention(self, layer):
        assert layer.effective_kcat == pytest.approx(
            GLUCOSE_OXIDASE.kcat_per_s * 0.5)

    def test_apparent_km_override(self, layer):
        assert layer.apparent_km == pytest.approx(9e-3)

    def test_apparent_km_falls_back_to_free(self):
        plain = ImmobilizedLayer(GLUCOSE_OXIDASE, 1e-7)
        assert plain.apparent_km == GLUCOSE_OXIDASE.km_molar

    def test_max_areal_rate(self, layer):
        assert layer.max_areal_rate == pytest.approx(1e-7 * 350.0)

    def test_areal_rate_half_at_km(self, layer):
        assert layer.areal_rate(9e-3) == pytest.approx(
            layer.max_areal_rate / 2.0)


class TestCurrent:
    def test_current_linear_at_low_concentration(self, layer):
        i1 = layer.steady_state_current(1e-5, 1e-6)
        i2 = layer.steady_state_current(2e-5, 1e-6)
        assert i2 == pytest.approx(2 * i1, rel=2e-3)

    def test_current_scales_with_area(self, layer):
        assert layer.steady_state_current(1e-3, 2e-6) == pytest.approx(
            2 * layer.steady_state_current(1e-3, 1e-6))

    def test_sensitivity_consistent_with_current(self, layer):
        conc = 1e-6  # deep linear regime
        slope = layer.steady_state_current(conc, 1e-6) / conc
        assert slope == pytest.approx(layer.sensitivity_si() * 1e-6, rel=1e-3)


class TestInversion:
    def test_paper_glucose_coverage_is_pmol_scale(self):
        # Paper glucose sensor: 55.5 uA/mM/cm^2 should invert to a
        # physically plausible enzyme loading (pmol/cm^2 scale).
        coverage = coverage_from_sensitivity(
            GLUCOSE_OXIDASE,
            sensitivity_si_from_paper(55.5),
            km_app_molar=9e-3,
            activity_retention=0.5,
            collection_efficiency=0.85,
        )
        coverage_pmol_cm2 = coverage * 1e12 / 1e4
        assert 0.1 < coverage_pmol_cm2 < 1000.0

    @given(st.floats(min_value=0.1, max_value=1000.0),
           st.floats(min_value=1e-5, max_value=0.1))
    def test_inversion_roundtrip(self, sensitivity_paper, km):
        target = sensitivity_si_from_paper(sensitivity_paper)
        coverage = coverage_from_sensitivity(
            GLUCOSE_OXIDASE, target, km,
            activity_retention=0.5, collection_efficiency=0.85)
        layer = ImmobilizedLayer(
            GLUCOSE_OXIDASE, coverage, activity_retention=0.5,
            km_app_molar=km, collection_efficiency=0.85)
        assert layer.sensitivity_si() == pytest.approx(target, rel=1e-9)

    def test_rejects_non_positive_sensitivity(self):
        with pytest.raises(ValueError):
            coverage_from_sensitivity(GLUCOSE_OXIDASE, 0.0, 1e-3)


class TestResponseTime:
    def test_thin_film_subsecond(self, layer):
        assert layer.response_time_s(5e-6) < 1.0

    def test_quadratic_in_thickness(self, layer):
        assert layer.response_time_s(2e-6) == pytest.approx(
            4 * layer.response_time_s(1e-6))
