"""Tests for repro.enzymes.kinetics."""

import numpy as np
import pytest

from repro.enzymes.catalog import GLUCOSE_OXIDASE, LACTATE_OXIDASE
from repro.enzymes.kinetics import BatchReactor, ping_pong_rate
from repro.enzymes.michaelis_menten import michaelis_menten_rate


class TestPingPong:
    def test_reduces_to_mm_at_oxygen_excess(self):
        mm = michaelis_menten_rate(1e-3, 700.0 * 1e-9, 33e-3)
        pp = ping_pong_rate(1e-3, 1e6, 700.0, 1e-9, 33e-3, 0.2e-3)
        assert pp == pytest.approx(mm, rel=1e-3)

    def test_zero_without_substrate(self):
        assert ping_pong_rate(0.0, 0.25e-3, 700.0, 1e-9, 33e-3, 0.2e-3) == 0.0

    def test_zero_without_oxygen(self):
        assert ping_pong_rate(1e-3, 0.0, 700.0, 1e-9, 33e-3, 0.2e-3) == 0.0

    def test_oxygen_limitation_slows_rate(self):
        rich = ping_pong_rate(1e-3, 0.25e-3, 700.0, 1e-9, 33e-3, 0.2e-3)
        poor = ping_pong_rate(1e-3, 0.02e-3, 700.0, 1e-9, 33e-3, 0.2e-3)
        assert poor < rich

    def test_rejects_bad_km(self):
        with pytest.raises(ValueError):
            ping_pong_rate(1e-3, 1e-3, 700.0, 1e-9, 0.0, 0.2e-3)


class TestBatchReactor:
    def test_substrate_decays_monotonically(self):
        reactor = BatchReactor(enzyme=GLUCOSE_OXIDASE, enzyme_molar=1e-8)
        __, conc = reactor.simulate(5e-3, 600.0)
        assert np.all(np.diff(conc) <= 1e-12)

    def test_no_enzyme_means_no_consumption(self):
        reactor = BatchReactor(enzyme=GLUCOSE_OXIDASE, enzyme_molar=0.0)
        __, conc = reactor.simulate(1e-3, 100.0)
        assert conc[-1] == pytest.approx(1e-3, rel=1e-9)

    def test_production_only_grows_linearly(self):
        reactor = BatchReactor(enzyme=GLUCOSE_OXIDASE, enzyme_molar=0.0,
                               production_molar_per_s=1e-7)
        times, conc = reactor.simulate(0.0, 100.0)
        assert conc[-1] == pytest.approx(1e-7 * times[-1], rel=1e-6)

    def test_concentration_never_negative(self):
        reactor = BatchReactor(enzyme=LACTATE_OXIDASE, enzyme_molar=1e-6)
        __, conc = reactor.simulate(1e-4, 3600.0)
        assert np.all(conc >= 0.0)

    def test_steady_state_balances_production(self):
        reactor = BatchReactor(enzyme=LACTATE_OXIDASE, enzyme_molar=1e-8,
                               production_molar_per_s=3e-7)
        steady = reactor.steady_state_molar()
        # At the steady state, consumption equals production.
        vmax = LACTATE_OXIDASE.kcat_per_s * 1e-8
        consumption = vmax * steady / (LACTATE_OXIDASE.km_molar + steady)
        assert consumption == pytest.approx(3e-7, rel=1e-9)

    def test_simulation_approaches_steady_state(self):
        reactor = BatchReactor(enzyme=LACTATE_OXIDASE, enzyme_molar=1e-8,
                               production_molar_per_s=3e-7)
        steady = reactor.steady_state_molar()
        __, conc = reactor.simulate(steady * 0.1, 36000.0, n_points=500)
        assert conc[-1] == pytest.approx(steady, rel=5e-2)

    def test_overdriven_reactor_reports_infinite_steady_state(self):
        vmax = LACTATE_OXIDASE.kcat_per_s * 1e-9
        reactor = BatchReactor(enzyme=LACTATE_OXIDASE, enzyme_molar=1e-9,
                               production_molar_per_s=2 * vmax)
        assert reactor.steady_state_molar() == float("inf")

    def test_zero_production_steady_state_is_zero(self):
        reactor = BatchReactor(enzyme=LACTATE_OXIDASE, enzyme_molar=1e-9)
        assert reactor.steady_state_molar() == 0.0

    def test_rejects_negative_initial(self):
        reactor = BatchReactor(enzyme=GLUCOSE_OXIDASE, enzyme_molar=1e-9)
        with pytest.raises(ValueError):
            reactor.simulate(-1e-3, 100.0)
