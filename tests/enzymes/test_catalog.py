"""Tests for repro.enzymes.catalog."""

import pytest

from repro.enzymes.catalog import (
    ALL_ENZYMES,
    CYP1A2,
    CYP2B6,
    CYP3A4,
    CYP_CUSTOM_FATTY_ACID,
    EnzymeFamily,
    GLUCOSE_OXIDASE,
    GLUTAMATE_OXIDASE,
    LACTATE_OXIDASE,
    enzyme_by_name,
)


class TestCatalogStructure:
    def test_seven_enzymes_as_in_table1(self):
        assert len(ALL_ENZYMES) == 7

    def test_three_oxidases(self):
        oxidases = [e for e in ALL_ENZYMES
                    if e.family is EnzymeFamily.OXIDASE]
        assert len(oxidases) == 3

    def test_four_cyps(self):
        cyps = [e for e in ALL_ENZYMES
                if e.family is EnzymeFamily.CYTOCHROME_P450]
        assert len(cyps) == 4

    def test_unique_abbreviations(self):
        abbreviations = [e.abbreviation for e in ALL_ENZYMES]
        assert len(set(abbreviations)) == len(abbreviations)


class TestTable1Pairing:
    """Target-probe pairing from Table 1 of the paper."""

    @pytest.mark.parametrize("enzyme, substrate", [
        (GLUCOSE_OXIDASE, "glucose"),
        (LACTATE_OXIDASE, "lactate"),
        (GLUTAMATE_OXIDASE, "glutamate"),
        (CYP_CUSTOM_FATTY_ACID, "arachidonic acid"),
        (CYP1A2, "ftorafur"),
        (CYP2B6, "cyclophosphamide"),
        (CYP3A4, "ifosfamide"),
    ])
    def test_substrate_assignment(self, enzyme, substrate):
        assert enzyme.substrate == substrate

    def test_oxidases_signal_through_h2o2(self):
        for enzyme in (GLUCOSE_OXIDASE, LACTATE_OXIDASE, GLUTAMATE_OXIDASE):
            assert enzyme.detected_species == "hydrogen_peroxide"
            assert enzyme.n_electrons == 2

    def test_cyps_signal_through_heme(self):
        for enzyme in (CYP1A2, CYP2B6, CYP3A4, CYP_CUSTOM_FATTY_ACID):
            assert enzyme.detected_species == "cyp_heme"
            assert enzyme.n_electrons == 1


class TestKinetics:
    def test_god_is_fast(self):
        assert GLUCOSE_OXIDASE.kcat_per_s > 100.0

    def test_cyps_are_slow(self):
        for cyp in (CYP1A2, CYP2B6, CYP3A4):
            assert cyp.kcat_per_s < 50.0

    def test_specificity_constant(self):
        expected = GLUCOSE_OXIDASE.kcat_per_s / GLUCOSE_OXIDASE.km_molar
        assert GLUCOSE_OXIDASE.specificity_constant == pytest.approx(expected)


class TestLookup:
    def test_by_full_name(self):
        assert enzyme_by_name("glucose oxidase") is GLUCOSE_OXIDASE

    def test_by_abbreviation(self):
        assert enzyme_by_name("GOD") is GLUCOSE_OXIDASE
        assert enzyme_by_name("GlOD") is GLUTAMATE_OXIDASE

    def test_unknown_raises_with_options(self):
        with pytest.raises(KeyError, match="available"):
            enzyme_by_name("unobtainase")
