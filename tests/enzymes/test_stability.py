"""Tests for repro.enzymes.stability."""

import math

import numpy as np
import pytest

from repro.constants import STANDARD_TEMPERATURE
from repro.enzymes.stability import EnzymeStability

WEEK_S = 7 * 24 * 3600.0


@pytest.fixture()
def stability():
    return EnzymeStability(half_life_s=WEEK_S)


class TestDecay:
    def test_half_activity_at_half_life(self, stability):
        assert stability.remaining_activity(WEEK_S) == pytest.approx(0.5)

    def test_full_activity_at_zero(self, stability):
        assert stability.remaining_activity(0.0) == pytest.approx(1.0)

    def test_exponential_composition(self, stability):
        one = stability.remaining_activity(WEEK_S)
        two = stability.remaining_activity(2 * WEEK_S)
        assert two == pytest.approx(one ** 2)

    def test_array_input(self, stability):
        values = stability.remaining_activity(np.array([0.0, WEEK_S]))
        assert values.shape == (2,)

    def test_rejects_negative_time(self, stability):
        with pytest.raises(ValueError):
            stability.remaining_activity(-1.0)


class TestArrhenius:
    def test_reference_temperature_matches_base_rate(self, stability):
        assert stability.rate_at(STANDARD_TEMPERATURE) \
            == pytest.approx(stability.decay_rate_per_s)

    def test_higher_temperature_decays_faster(self, stability):
        assert stability.rate_at(310.0) > stability.decay_rate_per_s

    def test_lower_temperature_decays_slower(self, stability):
        assert stability.rate_at(277.0) < stability.decay_rate_per_s

    def test_body_temperature_activity_loss(self, stability):
        # At 37 C the sensor loses activity measurably faster than at 25 C.
        at_25 = stability.remaining_activity(WEEK_S)
        at_37 = stability.remaining_activity(WEEK_S, temperature_k=310.15)
        assert at_37 < at_25


class TestLifetime:
    def test_lifetime_to_half_is_half_life(self, stability):
        assert stability.lifetime_to_fraction(0.5) \
            == pytest.approx(WEEK_S, rel=1e-9)

    def test_calibration_window(self, stability):
        # Time to 90 % activity: ln(1/0.9)/ln(2) of the half-life.
        expected = WEEK_S * math.log(1 / 0.9) / math.log(2.0)
        assert stability.lifetime_to_fraction(0.9) \
            == pytest.approx(expected, rel=1e-9)

    def test_rejects_bad_fraction(self, stability):
        with pytest.raises(ValueError):
            stability.lifetime_to_fraction(1.0)


class TestValidation:
    def test_rejects_non_positive_half_life(self):
        with pytest.raises(ValueError):
            EnzymeStability(half_life_s=0.0)

    def test_rejects_negative_activation_energy(self):
        with pytest.raises(ValueError):
            EnzymeStability(half_life_s=1.0, activation_energy_j_mol=-1.0)


class TestBatchKernels:
    def test_rates_at_matches_scalar(self, stability):
        temps = np.array([277.0, 298.15, 310.15, 330.0])
        batch = stability.rates_at(temps)
        scalar = np.array([stability.rate_at(t) for t in temps])
        np.testing.assert_allclose(batch, scalar, rtol=1e-12)

    def test_rates_at_rejects_non_positive(self, stability):
        with pytest.raises(ValueError):
            stability.rates_at(np.array([300.0, 0.0]))

    def test_remaining_activity_batch_matches_scalar(self, stability):
        times = np.array([[0.0, WEEK_S, 2 * WEEK_S],
                          [WEEK_S / 2, WEEK_S, 3 * WEEK_S]])
        temps = np.array([298.15, 310.15])
        batch = stability.remaining_activity_batch(times, temps)
        for i, temp in enumerate(temps):
            for j, t in enumerate(times[i]):
                assert batch[i, j] == pytest.approx(
                    stability.remaining_activity(float(t),
                                                 temperature_k=float(temp)),
                    rel=1e-12)

    def test_remaining_activity_batch_default_temperature(self, stability):
        times = np.array([[0.0, WEEK_S]])
        batch = stability.remaining_activity_batch(times)
        np.testing.assert_allclose(batch, [[1.0, 0.5]], rtol=1e-12)

    def test_remaining_activity_batch_rejects_negative_time(self, stability):
        with pytest.raises(ValueError):
            stability.remaining_activity_batch(np.array([[-1.0]]))
