"""Tests for repro.enzymes.michaelis_menten, including property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.enzymes.michaelis_menten import (
    apparent_km_mass_transport,
    fractional_deviation_from_linearity,
    hill_rate,
    km_for_linear_range,
    linear_range_upper,
    linear_slope,
    michaelis_menten_rate,
)

kms = st.floats(min_value=1e-7, max_value=1.0,
                allow_nan=False, allow_infinity=False)
concs = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)
tols = st.floats(min_value=0.01, max_value=0.5,
                 allow_nan=False, allow_infinity=False)


class TestRate:
    def test_half_vmax_at_km(self):
        assert michaelis_menten_rate(1e-3, 10.0, 1e-3) == pytest.approx(5.0)

    def test_zero_at_zero_concentration(self):
        assert michaelis_menten_rate(0.0, 10.0, 1e-3) == 0.0

    def test_saturates_at_vmax(self):
        assert michaelis_menten_rate(1.0, 10.0, 1e-3) \
            == pytest.approx(10.0, rel=1e-2)

    @given(kms, concs, concs)
    def test_monotonic_in_concentration(self, km, c1, c2):
        v1 = michaelis_menten_rate(min(c1, c2), 1.0, km)
        v2 = michaelis_menten_rate(max(c1, c2), 1.0, km)
        assert v2 >= v1

    @given(kms, concs)
    def test_rate_below_linear_extrapolation(self, km, conc):
        rate = michaelis_menten_rate(conc, 1.0, km)
        assert rate <= linear_slope(1.0, km) * conc + 1e-15

    def test_vectorized(self):
        rates = michaelis_menten_rate(np.array([0.0, 1e-3, 1.0]), 10.0, 1e-3)
        assert rates.shape == (3,)

    def test_rejects_negative_concentration(self):
        with pytest.raises(ValueError):
            michaelis_menten_rate(-1e-3, 10.0, 1e-3)


class TestLinearRange:
    def test_deviation_half_at_km(self):
        assert fractional_deviation_from_linearity(1e-3, 1e-3) \
            == pytest.approx(0.5)

    @given(kms, tols)
    def test_upper_limit_has_exactly_tolerance_deviation(self, km, tol):
        upper = linear_range_upper(km, tol)
        assert fractional_deviation_from_linearity(upper, km) \
            == pytest.approx(tol, rel=1e-9)

    @given(kms, tols)
    def test_km_inversion_roundtrip(self, km, tol):
        upper = linear_range_upper(km, tol)
        assert km_for_linear_range(upper, tol) == pytest.approx(km, rel=1e-9)

    def test_ten_percent_rule(self):
        # 10 % criterion: linear range ends at Km/9.
        assert linear_range_upper(9.0e-3, 0.1) == pytest.approx(1.0e-3)

    def test_registry_inversion_example(self):
        # Paper glucose range 0-1 mM -> Km_app = 9 mM at 10 % tolerance.
        assert km_for_linear_range(1e-3, 0.1) == pytest.approx(9e-3)


class TestMassTransport:
    def test_no_limitation_leaves_km(self):
        assert apparent_km_mass_transport(1e-3, 0.0, 1e-5) \
            == pytest.approx(1e-3)

    def test_limitation_widens_km(self):
        widened = apparent_km_mass_transport(1e-3, 1e-6, 1e-5)
        assert widened > 1e-3

    def test_slower_transport_widens_more(self):
        slow = apparent_km_mass_transport(1e-3, 1e-6, 1e-6)
        fast = apparent_km_mass_transport(1e-3, 1e-6, 1e-4)
        assert slow > fast


class TestHill:
    def test_reduces_to_mm_at_h1(self):
        conc = 3e-4
        assert hill_rate(conc, 10.0, 1e-3, 1.0) \
            == pytest.approx(michaelis_menten_rate(conc, 10.0, 1e-3))

    def test_half_saturation_at_k(self):
        assert hill_rate(1e-3, 10.0, 1e-3, 2.7) == pytest.approx(5.0)

    def test_steeper_with_higher_h(self):
        low_c = 1e-4
        assert hill_rate(low_c, 1.0, 1e-3, 2.0) \
            < hill_rate(low_c, 1.0, 1e-3, 1.0)

    def test_rejects_bad_h(self):
        with pytest.raises(ValueError):
            hill_rate(1e-3, 1.0, 1e-3, 0.0)
