"""Tests for repro.enzymes.oxygen (the implantable oxygen deficit)."""

import pytest

from repro.enzymes.catalog import GLUCOSE_OXIDASE, LACTATE_OXIDASE
from repro.enzymes.oxygen import (
    AIR_SATURATED_O2_MOLAR,
    TISSUE_O2_MOLAR,
    OxygenDependence,
)


@pytest.fixture()
def god_model():
    return OxygenDependence(enzyme=GLUCOSE_OXIDASE)


class TestSensitivityRetention:
    def test_saturated_oxygen_full_signal(self, god_model):
        assert god_model.midrange_retention(10e-3) \
            == pytest.approx(1.0, rel=2e-2)

    def test_air_saturation_already_costs_signal(self, god_model):
        # Km_O2 ~ air saturation: even a beaker measurement loses some.
        retention = god_model.midrange_retention(AIR_SATURATED_O2_MOLAR)
        assert 0.4 < retention < 0.85

    def test_tissue_oxygen_severely_limits(self, god_model):
        retention = god_model.midrange_retention(TISSUE_O2_MOLAR)
        assert retention < 0.2

    def test_zero_oxygen_kills_response(self, god_model):
        assert god_model.midrange_retention(0.0) == 0.0

    def test_initial_slope_barely_affected(self, god_model):
        # The ping-pong subtlety: substrate << Km hides the O2 term, so
        # the *sensitivity* survives even at tissue oxygen.
        assert god_model.rate_factor(
            GLUCOSE_OXIDASE.km_molar * 1e-3, TISSUE_O2_MOLAR) > 0.95

    def test_monotone_in_oxygen(self, god_model):
        levels = [0.01e-3, 0.05e-3, 0.25e-3, 1e-3]
        retentions = [god_model.midrange_retention(o) for o in levels]
        assert all(a < b for a, b in zip(retentions, retentions[1:]))

    def test_permeable_membrane_helps(self):
        naked = OxygenDependence(GLUCOSE_OXIDASE, oxygen_permeability=1.0)
        engineered = OxygenDependence(GLUCOSE_OXIDASE,
                                      oxygen_permeability=3.0)
        assert engineered.midrange_retention(TISSUE_O2_MOLAR) \
            > naked.midrange_retention(TISSUE_O2_MOLAR)


class TestLinearRange:
    def test_low_oxygen_shrinks_range(self, god_model):
        rich = god_model.apparent_linear_upper(AIR_SATURATED_O2_MOLAR)
        poor = god_model.apparent_linear_upper(TISSUE_O2_MOLAR)
        assert poor < rich

    def test_anoxia_gives_zero_range(self, god_model):
        assert god_model.apparent_linear_upper(0.0) == 0.0

    def test_rejects_bad_tolerance(self, god_model):
        with pytest.raises(ValueError):
            god_model.apparent_linear_upper(1e-3, tolerance=0.0)


class TestDeficitRatio:
    def test_blood_glucose_is_oxygen_deficient(self, god_model):
        # 5 mM glucose vs 0.02 mM tissue O2: deficit ~250.
        ratio = god_model.oxygen_deficit_ratio(5e-3, TISSUE_O2_MOLAR)
        assert ratio > 100.0

    def test_cell_culture_lactate_is_safe(self):
        model = OxygenDependence(LACTATE_OXIDASE)
        # 0.5 mM lactate vs air-saturated medium: deficit ~2.
        ratio = model.oxygen_deficit_ratio(0.5e-3, AIR_SATURATED_O2_MOLAR)
        assert ratio < 5.0

    def test_anoxia_infinite_deficit(self, god_model):
        assert god_model.oxygen_deficit_ratio(1e-3, 0.0) == float("inf")


class TestRateFactor:
    def test_bounded_unit_interval(self, god_model):
        factor = god_model.rate_factor(1e-3, 0.1e-3)
        assert 0.0 < factor <= 1.0

    def test_zero_substrate_neutral(self, god_model):
        assert god_model.rate_factor(0.0, 1e-9) == 1.0
