"""Tests for repro.enzymes.inhibition."""

import pytest
from hypothesis import given, strategies as st

from repro.enzymes.inhibition import (
    InhibitionType,
    Inhibitor,
    apparent_parameters,
    degree_of_inhibition,
)

inhibitor_concs = st.floats(min_value=0.0, max_value=1e-3,
                            allow_nan=False, allow_infinity=False)


def make_inhibitor(mode: InhibitionType, ki: float = 50e-6) -> Inhibitor:
    return Inhibitor(name="co-drug", ki_molar=ki, mode=mode)


class TestApparentParameters:
    def test_competitive_raises_km_only(self):
        inhibitor = make_inhibitor(InhibitionType.COMPETITIVE)
        vmax, km = apparent_parameters(10.0, 1e-3, inhibitor, 50e-6)
        assert vmax == pytest.approx(10.0)
        assert km == pytest.approx(2e-3)

    def test_noncompetitive_lowers_vmax_only(self):
        inhibitor = make_inhibitor(InhibitionType.NONCOMPETITIVE)
        vmax, km = apparent_parameters(10.0, 1e-3, inhibitor, 50e-6)
        assert vmax == pytest.approx(5.0)
        assert km == pytest.approx(1e-3)

    def test_uncompetitive_lowers_both(self):
        inhibitor = make_inhibitor(InhibitionType.UNCOMPETITIVE)
        vmax, km = apparent_parameters(10.0, 1e-3, inhibitor, 50e-6)
        assert vmax == pytest.approx(5.0)
        assert km == pytest.approx(0.5e-3)

    def test_zero_inhibitor_changes_nothing(self):
        for mode in InhibitionType:
            inhibitor = make_inhibitor(mode)
            vmax, km = apparent_parameters(10.0, 1e-3, inhibitor, 0.0)
            assert vmax == pytest.approx(10.0)
            assert km == pytest.approx(1e-3)

    @given(inhibitor_concs,
           st.sampled_from(list(InhibitionType)))
    def test_sensitivity_never_increases(self, conc, mode):
        """The low-concentration slope Vmax/Km never improves under
        inhibition — the property securing multi-drug calibration safety."""
        inhibitor = make_inhibitor(mode)
        vmax, km = apparent_parameters(10.0, 1e-3, inhibitor, conc)
        free_slope = 10.0 / 1e-3
        assert vmax / km <= free_slope * (1.0 + 1e-9)


class TestDegreeOfInhibition:
    def test_zero_at_zero_substrate(self):
        inhibitor = make_inhibitor(InhibitionType.COMPETITIVE)
        assert degree_of_inhibition(10.0, 1e-3, 0.0, inhibitor, 1e-4) == 0.0

    def test_bounded_in_unit_interval(self):
        for mode in InhibitionType:
            inhibitor = make_inhibitor(mode)
            degree = degree_of_inhibition(10.0, 1e-3, 5e-4, inhibitor, 1e-4)
            assert 0.0 <= degree <= 1.0

    def test_competitive_relieved_by_substrate(self):
        # Competitive inhibition washes out at saturating substrate.
        inhibitor = make_inhibitor(InhibitionType.COMPETITIVE)
        low = degree_of_inhibition(10.0, 1e-3, 1e-5, inhibitor, 1e-4)
        high = degree_of_inhibition(10.0, 1e-3, 1e-1, inhibitor, 1e-4)
        assert high < low

    def test_noncompetitive_not_relieved_by_substrate(self):
        inhibitor = make_inhibitor(InhibitionType.NONCOMPETITIVE)
        low = degree_of_inhibition(10.0, 1e-3, 1e-5, inhibitor, 1e-4)
        high = degree_of_inhibition(10.0, 1e-3, 1e-1, inhibitor, 1e-4)
        assert high == pytest.approx(low, rel=1e-6)

    def test_more_inhibitor_more_inhibition(self):
        inhibitor = make_inhibitor(InhibitionType.NONCOMPETITIVE)
        little = degree_of_inhibition(10.0, 1e-3, 1e-4, inhibitor, 1e-5)
        lots = degree_of_inhibition(10.0, 1e-3, 1e-4, inhibitor, 1e-3)
        assert lots > little


class TestValidation:
    def test_rejects_non_positive_ki(self):
        with pytest.raises(ValueError):
            Inhibitor(name="bad", ki_molar=0.0,
                      mode=InhibitionType.COMPETITIVE)

    def test_rejects_negative_inhibitor_concentration(self):
        inhibitor = make_inhibitor(InhibitionType.COMPETITIVE)
        with pytest.raises(ValueError):
            inhibitor.saturation_factor(-1e-6)
