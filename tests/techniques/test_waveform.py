"""Tests for repro.techniques.waveform and base structures."""

import numpy as np
import pytest

from repro.techniques.base import Measurement, Waveform
from repro.techniques.waveform import (
    constant_potential,
    cyclic_wave,
    linear_sweep_wave,
    staircase_wave,
)


class TestConstantPotential:
    def test_holds_level(self):
        wave = constant_potential(0.65, 10.0, 20.0)
        assert np.all(wave.potential_v == 0.65)

    def test_sample_count(self):
        wave = constant_potential(0.65, 10.0, 20.0)
        assert wave.n_samples == 200

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            constant_potential(0.65, 0.0, 20.0)


class TestLinearSweep:
    def test_endpoints(self):
        wave = linear_sweep_wave(0.0, 0.5, 0.1, 100.0)
        assert wave.potential_v[0] == pytest.approx(0.0)
        assert wave.potential_v[-1] == pytest.approx(0.5)

    def test_duration_from_scan_rate(self):
        wave = linear_sweep_wave(0.0, 0.5, 0.1, 100.0)
        assert wave.duration_s == pytest.approx(5.0, rel=1e-2)

    def test_scan_rate_recovered(self):
        wave = linear_sweep_wave(0.0, 0.5, 0.1, 100.0)
        assert np.median(wave.scan_rate_v_s()) == pytest.approx(0.1, rel=2e-2)

    def test_downward_sweep(self):
        wave = linear_sweep_wave(0.1, -0.8, 0.1, 100.0)
        assert np.all(np.diff(wave.potential_v) < 0)

    def test_rejects_degenerate_window(self):
        with pytest.raises(ValueError):
            linear_sweep_wave(0.1, 0.1, 0.1, 100.0)


class TestCyclicWave:
    def test_returns_to_start(self):
        wave = cyclic_wave(0.1, -0.8, 0.1, 100.0)
        assert wave.potential_v[0] == pytest.approx(0.1)
        # Last sample is one step before closing the triangle.
        assert wave.potential_v[-1] == pytest.approx(0.1, abs=0.02)

    def test_reaches_vertex(self):
        wave = cyclic_wave(0.1, -0.8, 0.1, 100.0)
        assert wave.potential_v.min() == pytest.approx(-0.8, abs=0.01)

    def test_multiple_cycles_tile(self):
        one = cyclic_wave(0.1, -0.8, 0.1, 100.0, n_cycles=1)
        three = cyclic_wave(0.1, -0.8, 0.1, 100.0, n_cycles=3)
        assert three.n_samples == 3 * one.n_samples

    def test_triangular_symmetry(self):
        wave = cyclic_wave(0.0, -1.0, 0.1, 100.0)
        n = wave.n_samples
        forward = wave.potential_v[: n // 2]
        assert np.all(np.diff(forward) <= 0)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            cyclic_wave(0.1, -0.8, 0.1, 100.0, n_cycles=0)


class TestStaircase:
    def test_level_sequence(self):
        wave = staircase_wave([0.1, 0.2, 0.3], 1.0, 10.0)
        assert wave.potential_v[0] == pytest.approx(0.1)
        assert wave.potential_v[-1] == pytest.approx(0.3)
        assert wave.n_samples == 30

    def test_rejects_empty_levels(self):
        with pytest.raises(ValueError):
            staircase_wave([], 1.0, 10.0)


class TestDataStructures:
    def test_waveform_validates_shapes(self):
        with pytest.raises(ValueError):
            Waveform(np.arange(5.0), np.arange(4.0), 10.0)

    def test_waveform_needs_two_samples(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0]), np.array([0.0]), 10.0)

    def test_measurement_validates_shapes(self):
        with pytest.raises(ValueError):
            Measurement(np.arange(5.0), np.arange(5.0), np.arange(4.0),
                        "x", 10.0)
