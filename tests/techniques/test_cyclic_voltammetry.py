"""Tests for repro.techniques.cyclic_voltammetry.

Includes the key solver validation: the simulated reversible peak current
must match the Randles-Sevcik law.
"""

import numpy as np
import pytest

from repro.chem.doublelayer import DoubleLayer
from repro.chem.randles_sevcik import (
    peak_current_reversible,
    peak_separation_reversible,
)
from repro.chem.species import CYP_HEME, FERRICYANIDE
from repro.enzymes.catalog import CYP2B6
from repro.enzymes.immobilization import ImmobilizedLayer
from repro.techniques.cyclic_voltammetry import CyclicVoltammetry

AREA = 7e-6  # 7 mm^2 glassy-carbon disk


@pytest.fixture(scope="module")
def ferri_cv():
    """One reversible ferricyanide voltammogram, reused across tests."""
    cv = CyclicVoltammetry(e_start_v=0.6, e_vertex_v=-0.2,
                           scan_rate_v_s=0.05, sampling_rate_hz=400.0)
    record = cv.simulate_solution_couple(
        FERRICYANIDE.with_rate_enhancement(50.0),  # fast kinetics
        bulk_ox_molar=1e-3, bulk_red_molar=0.0, area_m2=AREA)
    return record


class TestSolutionCouple(object):
    def test_cathodic_peak_matches_randles_sevcik(self, ferri_cv):
        n = ferri_cv.time_s.size
        forward = ferri_cv.current_a[: n // 2]
        simulated_peak = abs(forward.min())
        analytic = peak_current_reversible(
            1, AREA, FERRICYANIDE.diffusion_ox, 1e-3, 0.05)
        assert simulated_peak == pytest.approx(analytic, rel=0.05)

    def test_reverse_anodic_peak_present(self, ferri_cv):
        n = ferri_cv.time_s.size
        backward = ferri_cv.current_a[n // 2:]
        assert backward.max() > 0

    def test_peak_separation_near_57mv(self, ferri_cv):
        n = ferri_cv.time_s.size
        fwd_idx = int(np.argmin(ferri_cv.current_a[: n // 2]))
        bwd_idx = n // 2 + int(np.argmax(ferri_cv.current_a[n // 2:]))
        separation = abs(ferri_cv.potential_v[bwd_idx]
                         - ferri_cv.potential_v[fwd_idx])
        assert separation == pytest.approx(
            peak_separation_reversible(1), abs=0.02)

    def test_peak_scales_with_sqrt_scan_rate(self):
        def peak_at(rate: float) -> float:
            cv = CyclicVoltammetry(0.6, -0.2, rate, sampling_rate_hz=400.0)
            record = cv.simulate_solution_couple(
                FERRICYANIDE.with_rate_enhancement(50.0), 1e-3, 0.0, AREA)
            half = record.current_a[: record.time_s.size // 2]
            return abs(half.min())

        ratio = peak_at(0.2) / peak_at(0.05)
        assert ratio == pytest.approx(2.0, rel=0.08)

    def test_capacitive_background_adds_envelope(self):
        cv = CyclicVoltammetry(0.6, -0.2, 0.05, sampling_rate_hz=400.0)
        layer = DoubleLayer(capacitance_per_area=2.0, series_resistance=50.0)
        with_dl = cv.simulate_solution_couple(
            FERRICYANIDE, 0.0, 0.0, AREA, double_layer=layer)
        # With no redox species, current is purely capacitive: opposite
        # signs on the two sweep directions.
        n = with_dl.time_s.size
        assert with_dl.current_a[n // 4] < 0  # cathodic-going sweep
        assert with_dl.current_a[3 * n // 4] > 0


class TestSurfaceCouple:
    def test_peak_at_formal_potential(self):
        cv = CyclicVoltammetry(0.1, -0.8, 0.1, sampling_rate_hz=200.0)
        record = cv.simulate_surface_couple(CYP_HEME, 1e-7, AREA)
        n = record.time_s.size
        idx = int(np.argmin(record.current_a[: n // 2]))
        assert record.potential_v[idx] == pytest.approx(
            CYP_HEME.formal_potential, abs=0.02)

    def test_peak_height_theory(self):
        # Surface wave peak: n^2 F^2 v A Gamma / (4 R T).
        from repro.constants import FARADAY, GAS_CONSTANT, STANDARD_TEMPERATURE
        coverage, rate = 1e-7, 0.1
        cv = CyclicVoltammetry(0.1, -0.8, rate, sampling_rate_hz=400.0)
        record = cv.simulate_surface_couple(CYP_HEME, coverage, AREA)
        n = record.time_s.size
        simulated = abs(record.current_a[: n // 2].min())
        analytic = (FARADAY ** 2 * rate * AREA * coverage
                    / (4 * GAS_CONSTANT * STANDARD_TEMPERATURE))
        assert simulated == pytest.approx(analytic, rel=2e-2)

    def test_height_linear_in_coverage(self):
        cv = CyclicVoltammetry(0.1, -0.8, 0.1, sampling_rate_hz=200.0)
        r1 = cv.simulate_surface_couple(CYP_HEME, 1e-7, AREA)
        r2 = cv.simulate_surface_couple(CYP_HEME, 2e-7, AREA)
        assert abs(r2.current_a.min()) == pytest.approx(
            2 * abs(r1.current_a.min()), rel=1e-6)

    def test_symmetric_anodic_return_wave(self):
        cv = CyclicVoltammetry(0.1, -0.8, 0.1, sampling_rate_hz=200.0)
        record = cv.simulate_surface_couple(CYP_HEME, 1e-7, AREA)
        assert abs(record.current_a.max()) == pytest.approx(
            abs(record.current_a.min()), rel=5e-2)


class TestCatalyticCyp:
    def make_layer(self) -> ImmobilizedLayer:
        return ImmobilizedLayer(
            enzyme=CYP2B6, coverage_mol_m2=1e-7, activity_retention=0.5,
            km_app_molar=630e-6, collection_efficiency=0.9)

    def test_catalytic_current_grows_with_drug(self):
        cv = CyclicVoltammetry(0.1, -0.8, 0.1, sampling_rate_hz=200.0)
        layer = self.make_layer()
        blank = cv.simulate_catalytic_cyp(layer, CYP_HEME, 0.0, AREA)
        dosed = cv.simulate_catalytic_cyp(layer, CYP_HEME, 50e-6, AREA)
        assert dosed.current_a.min() < blank.current_a.min()

    def test_michaelis_menten_saturation(self):
        cv = CyclicVoltammetry(0.1, -0.8, 0.1, sampling_rate_hz=200.0)
        layer = self.make_layer()
        plateau_low = cv.simulate_catalytic_cyp(
            layer, CYP_HEME, 50e-6, AREA).metadata["catalytic_plateau_a"]
        plateau_high = cv.simulate_catalytic_cyp(
            layer, CYP_HEME, 50e-3, AREA).metadata["catalytic_plateau_a"]
        # 100x the Km barely doubles what 50 uM produces at Km/12 scale.
        assert plateau_high < 20 * plateau_low

    def test_interference_bell_adds_current(self):
        cv = CyclicVoltammetry(0.1, -0.8, 0.1, sampling_rate_hz=200.0)
        layer = self.make_layer()
        clean = cv.simulate_catalytic_cyp(layer, CYP_HEME, 0.0, AREA)
        perturbed = cv.simulate_catalytic_cyp(
            layer, CYP_HEME, 0.0, AREA, interference_bell_a=-1e-7)
        assert perturbed.current_a.min() < clean.current_a.min()

    def test_rejects_negative_substrate(self):
        cv = CyclicVoltammetry(0.1, -0.8, 0.1)
        with pytest.raises(ValueError):
            cv.simulate_catalytic_cyp(self.make_layer(), CYP_HEME, -1e-6, AREA)

    def test_rejects_bad_peak_weight(self):
        cv = CyclicVoltammetry(0.1, -0.8, 0.1)
        with pytest.raises(ValueError, match="peak weight"):
            cv.simulate_catalytic_cyp(self.make_layer(), CYP_HEME, 1e-6,
                                      AREA, peak_weight=1.5)
