"""Tests for linear-sweep and differential-pulse voltammetry."""

import numpy as np
import pytest

from repro.chem.species import CYP_HEME, FERRICYANIDE
from repro.techniques.differential_pulse import (
    DifferentialPulseVoltammetry,
    dpv_solution_peak_current,
)
from repro.techniques.linear_sweep import LinearSweepVoltammetry

AREA = 7e-6


class TestLinearSweep:
    def test_cathodic_sweep_shows_reduction_peak(self):
        lsv = LinearSweepVoltammetry(0.6, -0.2, 0.05, sampling_rate_hz=400.0)
        record = lsv.simulate_solution_couple(
            FERRICYANIDE.with_rate_enhancement(50.0), 1e-3, 0.0, AREA)
        assert record.current_a.min() < 0
        idx = int(np.argmin(record.current_a))
        # Reversible cathodic peak sits ~28 mV negative of E0.
        assert record.potential_v[idx] == pytest.approx(
            FERRICYANIDE.formal_potential - 0.028, abs=0.02)

    def test_matches_cv_forward_branch(self):
        from repro.techniques.cyclic_voltammetry import CyclicVoltammetry

        couple = FERRICYANIDE.with_rate_enhancement(50.0)
        lsv = LinearSweepVoltammetry(0.6, -0.2, 0.05, sampling_rate_hz=400.0)
        cv = CyclicVoltammetry(0.6, -0.2, 0.05, sampling_rate_hz=400.0)
        lsv_record = lsv.simulate_solution_couple(couple, 1e-3, 0.0, AREA)
        cv_record = cv.simulate_solution_couple(couple, 1e-3, 0.0, AREA)
        lsv_peak = abs(lsv_record.current_a.min())
        cv_forward = cv_record.current_a[: cv_record.time_s.size // 2]
        assert lsv_peak == pytest.approx(abs(cv_forward.min()), rel=2e-2)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            LinearSweepVoltammetry(0.1, 0.1, 0.05)


class TestDpvAnalytic:
    def test_peak_linear_in_concentration(self):
        p1 = dpv_solution_peak_current(FERRICYANIDE, 1e-4, AREA, 0.05, 0.05)
        p2 = dpv_solution_peak_current(FERRICYANIDE, 2e-4, AREA, 0.05, 0.05)
        assert p2 == pytest.approx(2 * p1, rel=1e-9)

    def test_larger_pulse_larger_peak(self):
        small = dpv_solution_peak_current(FERRICYANIDE, 1e-4, AREA, 0.01, 0.05)
        large = dpv_solution_peak_current(FERRICYANIDE, 1e-4, AREA, 0.1, 0.05)
        assert large > small

    def test_zero_concentration_zero_peak(self):
        assert dpv_solution_peak_current(FERRICYANIDE, 0.0, AREA, 0.05, 0.05) \
            == 0.0

    def test_rejects_bad_pulse(self):
        with pytest.raises(ValueError):
            dpv_solution_peak_current(FERRICYANIDE, 1e-4, AREA, 0.0, 0.05)


class TestDpvScan:
    def test_surface_scan_peaks_near_formal_potential(self):
        dpv = DifferentialPulseVoltammetry(0.1, -0.8)
        record = dpv.simulate_surface_couple(CYP_HEME, 1e-7, AREA)
        idx = int(np.argmin(record.current_a))
        assert record.potential_v[idx] == pytest.approx(
            CYP_HEME.formal_potential, abs=0.05)

    def test_surface_peak_linear_in_coverage(self):
        dpv = DifferentialPulseVoltammetry(0.1, -0.8)
        r1 = dpv.simulate_surface_couple(CYP_HEME, 1e-7, AREA)
        r2 = dpv.simulate_surface_couple(CYP_HEME, 3e-7, AREA)
        assert abs(r2.current_a).max() == pytest.approx(
            3 * abs(r1.current_a).max(), rel=1e-9)

    def test_solution_scan_bell_shape(self):
        dpv = DifferentialPulseVoltammetry(0.6, -0.2)
        record = dpv.simulate_solution_couple(FERRICYANIDE, 1e-4, AREA)
        peak = abs(record.current_a).max()
        expected = dpv_solution_peak_current(
            FERRICYANIDE, 1e-4, AREA,
            dpv.pulse_amplitude_v, dpv.pulse_width_s)
        assert peak == pytest.approx(expected, rel=1e-6)
        # Edges are near zero.
        assert abs(record.current_a[0]) < 0.05 * peak

    def test_potential_axis_covers_window(self):
        dpv = DifferentialPulseVoltammetry(0.1, -0.8, step_v=0.01)
        axis = dpv.potential_axis()
        assert axis[0] == pytest.approx(0.1)
        assert axis[-1] == pytest.approx(-0.8)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            DifferentialPulseVoltammetry(0.1, -0.8, step_v=0.0)
