"""Tests for repro.techniques.chronoamperometry."""

import numpy as np
import pytest

from repro.chem.doublelayer import DoubleLayer
from repro.techniques.chronoamperometry import Chronoamperometry


def linear_response(concentration_molar: float) -> float:
    """Simple linear steady-state model: 1 uA per mM."""
    return 1e-6 * concentration_molar / 1e-3


@pytest.fixture()
def ca():
    return Chronoamperometry(potential_v=0.65, sampling_rate_hz=20.0)


class TestSingleStep:
    def test_plateau_reaches_steady_state(self, ca):
        record = ca.simulate_step(linear_response, 1e-3, 20.0, 1.0)
        assert record.current_a[-1] == pytest.approx(1e-6, rel=1e-3)

    def test_first_order_relaxation(self, ca):
        tau = 2.0
        record = ca.simulate_step(linear_response, 1e-3, 20.0, tau)
        idx_tau = int(tau * ca.sampling_rate_hz)
        expected = 1e-6 * (1 - np.exp(-record.time_s[idx_tau] / tau))
        assert record.current_a[idx_tau] == pytest.approx(expected, rel=1e-6)

    def test_starts_from_initial_current(self, ca):
        record = ca.simulate_step(linear_response, 1e-3, 20.0, 1.0,
                                  initial_current_a=5e-7)
        assert record.current_a[0] == pytest.approx(5e-7, rel=1e-3)

    def test_paper_potential_default(self, ca):
        record = ca.simulate_step(linear_response, 1e-3, 5.0, 1.0)
        assert np.all(record.potential_v == 0.65)

    def test_double_layer_spike_at_start(self, ca):
        layer = DoubleLayer(capacitance_per_area=0.5, series_resistance=5000.0)
        with_spike = ca.simulate_step(linear_response, 1e-3, 20.0, 1.0,
                                      double_layer=layer, area_m2=1e-5)
        without = ca.simulate_step(linear_response, 1e-3, 20.0, 1.0)
        assert with_spike.current_a[0] > without.current_a[0]

    def test_requires_double_layer_and_area_together(self, ca):
        layer = DoubleLayer(capacitance_per_area=0.5)
        with pytest.raises(ValueError, match="together"):
            ca.simulate_step(linear_response, 1e-3, 20.0, 1.0,
                             double_layer=layer)

    def test_background_offset(self):
        ca = Chronoamperometry(background_current_a=2e-8)
        record = ca.simulate_step(linear_response, 0.0, 20.0, 1.0)
        assert record.current_a[-1] == pytest.approx(2e-8, rel=1e-2)


class TestAdditions:
    def test_staircase_monotonic_levels(self, ca):
        concentrations = [0.2e-3, 0.4e-3, 0.6e-3, 0.8e-3]
        record = ca.simulate_additions(linear_response, concentrations,
                                       20.0, 1.0)
        n_step = int(20.0 * ca.sampling_rate_hz)
        plateaus = [record.current_a[(k + 1) * n_step - 1]
                    for k in range(len(concentrations))]
        assert np.all(np.diff(plateaus) > 0)

    def test_plateaus_match_response(self, ca):
        concentrations = [0.5e-3, 1.0e-3]
        record = ca.simulate_additions(linear_response, concentrations,
                                       30.0, 1.0)
        assert record.current_a[-1] == pytest.approx(
            linear_response(1.0e-3), rel=1e-3)

    def test_total_duration(self, ca):
        record = ca.simulate_additions(linear_response, [1e-3] * 3, 10.0, 1.0)
        assert record.time_s[-1] == pytest.approx(30.0, rel=1e-2)

    def test_metadata_carries_schedule(self, ca):
        record = ca.simulate_additions(linear_response, [1e-3], 10.0, 1.0)
        assert record.metadata["concentrations_molar"] == [1e-3]

    def test_rejects_empty_schedule(self, ca):
        with pytest.raises(ValueError):
            ca.simulate_additions(linear_response, [], 10.0, 1.0)

    def test_continuity_between_steps(self, ca):
        record = ca.simulate_additions(linear_response, [0.5e-3, 1.0e-3],
                                       20.0, 1.0)
        n_step = int(20.0 * ca.sampling_rate_hz)
        # Current just after the second addition starts near the previous
        # plateau, not at zero.
        boundary_jump = abs(record.current_a[n_step]
                            - record.current_a[n_step - 1])
        assert boundary_jump < 0.2 * record.current_a[n_step - 1]
