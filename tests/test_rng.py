"""Tests for repro.rng: the shared seedable generator and cell spawning."""

import numpy as np
import pytest

from repro import rng as repro_rng
from repro.core.detection import measure_amperometric_point


@pytest.fixture(autouse=True)
def _reset_shared_rng():
    """Keep the process-wide generator from leaking seeded state into
    other tests (rng=None paths elsewhere must stay entropy-driven)."""
    yield
    repro_rng._shared_rng = None


class TestGlobalSeed:
    def test_set_global_seed_makes_default_reproducible(self,
                                                        glucose_sensor):
        repro_rng.set_global_seed(7)
        a = measure_amperometric_point(glucose_sensor, 5e-4)
        repro_rng.set_global_seed(7)
        b = measure_amperometric_point(glucose_sensor, 5e-4)
        assert a == b

    def test_explicit_generator_wins(self):
        explicit = np.random.default_rng(1)
        assert repro_rng.get_rng(explicit) is explicit

    def test_get_rng_returns_shared_instance(self):
        shared = repro_rng.set_global_seed(3)
        assert repro_rng.get_rng() is shared
        assert repro_rng.get_rng() is shared


class TestSpawnGenerators:
    def test_deterministic_children(self):
        a = [g.normal() for g in repro_rng.spawn_generators(42, 5)]
        b = [g.normal() for g in repro_rng.spawn_generators(42, 5)]
        assert a == b

    def test_children_are_independent(self):
        draws = [g.normal() for g in repro_rng.spawn_generators(42, 50)]
        assert len(set(draws)) == 50

    def test_accepts_seed_sequence(self):
        root = np.random.SeedSequence(9)
        a = [g.normal() for g in repro_rng.spawn_generators(root, 3)]
        b = [g.normal() for g in repro_rng.spawn_generators(
            np.random.SeedSequence(9), 3)]
        assert a == b

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            repro_rng.spawn_generators(1, -1)

    def test_zero_count(self):
        assert repro_rng.spawn_generators(1, 0) == []


class TestGeneratorFromSeed:
    def test_explicit_seed_is_fresh_and_reproducible(self):
        a = repro_rng.generator_from_seed(5).normal()
        b = repro_rng.generator_from_seed(5).normal()
        assert a == b

    def test_none_resolves_to_shared_stream(self):
        repro_rng.set_global_seed(123)
        a = repro_rng.generator_from_seed(None).normal()
        repro_rng.set_global_seed(123)
        b = repro_rng.generator_from_seed(None).normal()
        repro_rng.set_global_seed(None)
        assert a == b

    def test_seed_none_figures_replay_under_global_seed(self):
        """The fixed seedability gap: experiment entry points called with
        seed=None must replay under set_global_seed."""
        from repro.experiments.figures import calibration_curve_figure
        from repro.core.registry import spec_by_id

        spec = spec_by_id("glucose/this-work")
        repro_rng.set_global_seed(7)
        a = calibration_curve_figure(spec, seed=None)
        repro_rng.set_global_seed(7)
        b = calibration_curve_figure(spec, seed=None)
        repro_rng.set_global_seed(None)
        np.testing.assert_array_equal(a["signals_a"], b["signals_a"])
