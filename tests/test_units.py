"""Tests for repro.units, including round-trip property tests."""

import pytest
from hypothesis import given, strategies as st

from repro import units

finite_positive = st.floats(min_value=1e-12, max_value=1e12,
                            allow_nan=False, allow_infinity=False)


class TestConcentration:
    def test_millimolar_to_molar(self):
        assert units.molar_from_millimolar(1.0) == pytest.approx(1e-3)

    def test_micromolar_to_molar(self):
        assert units.molar_from_micromolar(2.0) == pytest.approx(2e-6)

    def test_micromolar_from_millimolar(self):
        assert units.micromolar_from_millimolar(0.325) == pytest.approx(325.0)

    @given(finite_positive)
    def test_molar_millimolar_roundtrip(self, value):
        roundtrip = units.millimolar_from_molar(
            units.molar_from_millimolar(value))
        assert roundtrip == pytest.approx(value, rel=1e-12)

    @given(finite_positive)
    def test_molar_micromolar_roundtrip(self, value):
        roundtrip = units.micromolar_from_molar(
            units.molar_from_micromolar(value))
        assert roundtrip == pytest.approx(value, rel=1e-12)

    @given(finite_positive)
    def test_cubic_metre_roundtrip(self, value):
        roundtrip = units.molar_from_mol_per_cubic_metre(
            units.mol_per_cubic_metre_from_molar(value))
        assert roundtrip == pytest.approx(value, rel=1e-12)


class TestCurrent:
    def test_microampere(self):
        assert units.ampere_from_microampere(1.0) == pytest.approx(1e-6)
        assert units.microampere_from_ampere(1e-6) == pytest.approx(1.0)

    def test_nanoampere(self):
        assert units.nanoampere_from_ampere(
            units.ampere_from_nanoampere(3.3)) == pytest.approx(3.3)

    def test_picoampere(self):
        assert units.picoampere_from_ampere(1e-12) == pytest.approx(1.0)


class TestArea:
    def test_paper_spe_area(self):
        # The paper's SPE working electrode: 13 mm^2 = 0.13 cm^2.
        assert units.square_centimetre_from_square_millimetre(13.0) \
            == pytest.approx(0.13)

    def test_microchip_area(self):
        # 0.25 mm^2 in m^2.
        assert units.square_metre_from_square_millimetre(0.25) \
            == pytest.approx(2.5e-7)

    @given(finite_positive)
    def test_m2_cm2_roundtrip(self, value):
        roundtrip = units.square_centimetre_from_square_metre(
            units.square_metre_from_square_centimetre(value))
        assert roundtrip == pytest.approx(value, rel=1e-12)


class TestSensitivity:
    def test_paper_unit_to_si(self):
        # 1 uA mM^-1 cm^-2 = 10 A M^-1 m^-2.
        assert units.sensitivity_si_from_paper(1.0) == pytest.approx(10.0)

    @given(finite_positive)
    def test_sensitivity_roundtrip(self, value):
        roundtrip = units.sensitivity_paper_from_si(
            units.sensitivity_si_from_paper(value))
        assert roundtrip == pytest.approx(value, rel=1e-12)

    def test_slope_for_paper_glucose_sensor(self):
        # 55.5 uA/mM/cm^2 on 0.25 mm^2: 55.5e-6/1e-3/1e-4 * 2.5e-7 A/M.
        slope = units.slope_ampere_per_molar(55.5, 2.5e-7)
        assert slope == pytest.approx(1.3875e-4, rel=1e-6)

    @given(finite_positive, st.floats(min_value=1e-9, max_value=1.0))
    def test_slope_sensitivity_roundtrip(self, sensitivity, area):
        slope = units.slope_ampere_per_molar(sensitivity, area)
        recovered = units.sensitivity_paper_from_slope(slope, area)
        assert recovered == pytest.approx(sensitivity, rel=1e-9)

    def test_slope_rejects_bad_area(self):
        with pytest.raises(ValueError):
            units.slope_ampere_per_molar(1.0, 0.0)
        with pytest.raises(ValueError):
            units.sensitivity_paper_from_slope(1.0, -1.0)


class TestPotentialAndTime:
    def test_working_potential(self):
        # The paper's +650 mV working potential.
        assert units.volt_from_millivolt(650.0) == pytest.approx(0.65)

    def test_millivolt_roundtrip(self):
        assert units.millivolt_from_volt(
            units.volt_from_millivolt(123.4)) == pytest.approx(123.4)

    def test_length_conversions(self):
        # MWCNT: 10 nm diameter, 1-2 um length.
        assert units.metre_from_nanometre(10.0) == pytest.approx(1e-8)
        assert units.metre_from_micrometre(1.5) == pytest.approx(1.5e-6)
        assert units.nanometre_from_metre(1e-8) == pytest.approx(10.0)
        assert units.micrometre_from_metre(1.5e-6) == pytest.approx(1.5)

    def test_time_frequency(self):
        assert units.second_from_millisecond(250.0) == pytest.approx(0.25)
        assert units.hertz_from_kilohertz(2.0) == pytest.approx(2000.0)
