"""Tests as a real package.

Per-directory ``__init__.py`` files give every test module a unique,
package-qualified name (``tests.scenarios.test_cli`` vs
``tests.experiments.test_cli``), so pytest's rootdir-based module
naming never collides on basenames and new suites can use natural
file names.  Keeping ``tests/`` itself a package also keeps the
subdirectory packages (``core``, ``signal``, ...) from landing on
``sys.path`` as top-level names, where they would shadow stdlib
modules of the same name.
"""
