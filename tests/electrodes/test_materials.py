"""Tests for repro.electrodes.materials."""

import pytest

from repro.electrodes.materials import (
    CARBON_PASTE,
    GLASSY_CARBON,
    GOLD,
    GRAPHITE,
    PLATINUM,
    SILVER,
    ElectrodeMaterial,
    material_by_name,
)


class TestCatalog:
    def test_carbon_beats_gold_for_h2o2(self):
        """Section 3.2.2: 'carbon electrode has better performance than
        metallic electrodes for the detection of H2O2'."""
        for carbon in (GRAPHITE, GLASSY_CARBON, CARBON_PASTE):
            assert carbon.h2o2_activity > GOLD.h2o2_activity

    def test_all_capacitances_physical(self):
        # Double-layer capacitances: 0.1-1 F/m^2 (10-100 uF/cm^2).
        for material in (GOLD, PLATINUM, GRAPHITE, GLASSY_CARBON,
                         CARBON_PASTE, SILVER):
            assert 0.1 <= material.specific_capacitance_f_m2 <= 1.0

    def test_roughness_at_least_unity(self):
        for material in (GOLD, PLATINUM, GRAPHITE):
            assert material.roughness >= 1.0

    def test_paste_rougher_than_gold(self):
        assert CARBON_PASTE.roughness > GOLD.roughness


class TestLookup:
    def test_by_name(self):
        assert material_by_name("gold") is GOLD
        assert material_by_name("glassy carbon") is GLASSY_CARBON

    def test_unknown_lists_options(self):
        with pytest.raises(KeyError, match="available"):
            material_by_name("unobtainium")


class TestValidation:
    def test_rejects_non_positive_capacitance(self):
        with pytest.raises(ValueError):
            ElectrodeMaterial("x", 0.0, 1.0)

    def test_rejects_non_positive_activity(self):
        with pytest.raises(ValueError):
            ElectrodeMaterial("x", 0.2, 0.0)

    def test_rejects_subunity_roughness(self):
        with pytest.raises(ValueError):
            ElectrodeMaterial("x", 0.2, 1.0, roughness=0.5)
