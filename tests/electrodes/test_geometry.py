"""Tests for repro.electrodes.geometry."""

import math

import pytest

from repro.electrodes.geometry import ElectrodeGeometry


class TestConstruction:
    def test_disk_area(self):
        disk = ElectrodeGeometry.disk(2e-3)
        assert disk.area_m2 == pytest.approx(math.pi * 1e-6)

    def test_rectangle_area_perimeter(self):
        rect = ElectrodeGeometry.rectangle(2e-3, 3e-3)
        assert rect.area_m2 == pytest.approx(6e-6)
        assert rect.perimeter_m == pytest.approx(10e-3)

    def test_from_area_roundtrip(self):
        geometry = ElectrodeGeometry.from_area(2.5e-7)
        assert geometry.area_m2 == pytest.approx(2.5e-7, rel=1e-9)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ElectrodeGeometry("triangle", 1e-6, 1e-3)

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            ElectrodeGeometry.disk(0.0)
        with pytest.raises(ValueError):
            ElectrodeGeometry.rectangle(1e-3, -1e-3)


class TestMicroelectrodeRegime:
    def test_paper_microchip_electrode_is_not_ultramicro(self):
        # 0.25 mm^2 -> radius ~282 um: macro-regime diffusion.
        chip_electrode = ElectrodeGeometry.from_area(2.5e-7)
        assert not chip_electrode.is_microelectrode()

    def test_true_microelectrode(self):
        micro = ElectrodeGeometry.disk(10e-6)
        assert micro.is_microelectrode()

    def test_characteristic_length_of_disk_is_radius(self):
        disk = ElectrodeGeometry.disk(20e-6)
        assert disk.characteristic_length_m == pytest.approx(10e-6)


class TestMiniaturizationClaim:
    """Paper section 1: miniaturization increases sensor response speed."""

    def test_smaller_electrode_settles_faster(self):
        small = ElectrodeGeometry.from_area(2.5e-7)   # chip electrode
        large = ElectrodeGeometry.from_area(1.3e-5)   # SPE
        assert small.steady_state_time_s() < large.steady_state_time_s()

    def test_settling_scales_with_area(self):
        a1 = ElectrodeGeometry.from_area(1e-6)
        a4 = ElectrodeGeometry.from_area(4e-6)
        assert a4.steady_state_time_s() == pytest.approx(
            4 * a1.steady_state_time_s(), rel=1e-9)

    def test_rejects_bad_diffusion(self):
        with pytest.raises(ValueError):
            ElectrodeGeometry.disk(1e-3).steady_state_time_s(0.0)
