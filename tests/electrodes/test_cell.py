"""Tests for repro.electrodes.cell, spe and microchip."""

import pytest

from repro.electrodes.cell import (
    AG_AGCL,
    AG_PSEUDO,
    PT_PSEUDO,
    ReferenceElectrode,
    ThreeElectrodeCell,
)
from repro.electrodes.geometry import ElectrodeGeometry
from repro.electrodes.materials import GOLD, GRAPHITE
from repro.electrodes.microchip import (
    MICROCHIP_WORKING_AREA_M2,
    MicrofabricatedChip,
)
from repro.electrodes.spe import SPE_WORKING_AREA_M2, screen_printed_electrode


class TestReferences:
    def test_pseudo_references_less_stable(self):
        assert AG_PSEUDO.stability_mv > AG_AGCL.stability_mv
        assert PT_PSEUDO.stability_mv > AG_AGCL.stability_mv

    def test_rejects_negative_stability(self):
        with pytest.raises(ValueError):
            ReferenceElectrode("bad", 0.2, stability_mv=-1.0)


class TestCell:
    def make_cell(self, counter_ratio: float = 2.0) -> ThreeElectrodeCell:
        geometry = ElectrodeGeometry.from_area(1e-6)
        return ThreeElectrodeCell(
            name="test cell",
            working_geometry=geometry,
            working_material=GOLD,
            counter_material=GOLD,
            counter_area_m2=counter_ratio * 1e-6,
        )

    def test_working_area_from_geometry(self):
        assert self.make_cell().working_area_m2 == pytest.approx(1e-6)

    def test_counter_ratio(self):
        assert self.make_cell(3.0).counter_ratio == pytest.approx(3.0)

    def test_well_designed_requires_counter_dominance(self):
        assert self.make_cell(2.0).is_well_designed()
        assert not self.make_cell(0.5).is_well_designed()

    def test_bare_double_layer_includes_roughness(self):
        cell = self.make_cell()
        expected = GOLD.specific_capacitance_f_m2 * GOLD.roughness
        assert cell.bare_double_layer().capacitance_per_area \
            == pytest.approx(expected)


class TestScreenPrintedElectrode:
    def test_paper_area(self):
        # "Working electrode has an area equal to 13 mm^2."
        assert SPE_WORKING_AREA_M2 == pytest.approx(1.3e-5)
        cell = screen_printed_electrode()
        assert cell.working_area_m2 == pytest.approx(1.3e-5)

    def test_graphite_working_electrode(self):
        assert screen_printed_electrode().working_material is GRAPHITE

    def test_silver_pseudo_reference(self):
        assert screen_printed_electrode().reference is AG_PSEUDO

    def test_rejects_bad_area(self):
        with pytest.raises(ValueError):
            screen_printed_electrode(working_area_m2=0.0)


class TestMicrochip:
    def test_paper_dimensions(self):
        # "five Au microelectrodes ... area equal to 0.25 mm^2".
        chip = MicrofabricatedChip()
        assert chip.n_channels == 5
        assert MICROCHIP_WORKING_AREA_M2 == pytest.approx(2.5e-7)

    def test_channel_cells_share_reference(self):
        chip = MicrofabricatedChip()
        cells = chip.all_cells()
        assert len(cells) == 5
        assert all(cell.reference is PT_PSEUDO for cell in cells)

    def test_gold_working_electrodes(self):
        cell = MicrofabricatedChip().channel_cell(2)
        assert cell.working_material is GOLD

    def test_rejects_out_of_range_channel(self):
        with pytest.raises(ValueError):
            MicrofabricatedChip().channel_cell(5)

    def test_total_sensing_area(self):
        chip = MicrofabricatedChip()
        assert chip.total_sensing_area_m2 == pytest.approx(5 * 2.5e-7)

    def test_small_sample_volume(self):
        # Miniaturization claim: microliter-scale samples suffice.
        volume_l = MicrofabricatedChip().sample_volume_estimate_l()
        assert volume_l < 100e-6

    def test_smaller_than_spe(self):
        chip_cell = MicrofabricatedChip().channel_cell(0)
        spe = screen_printed_electrode()
        assert chip_cell.working_area_m2 < spe.working_area_m2 / 10
