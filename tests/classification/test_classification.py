"""Tests for repro.classification (taxonomy + literature survey)."""


from repro.classification.literature import (
    LITERATURE_SENSORS,
    find_sensors,
    transduction_census,
)
from repro.classification.taxonomy import (
    ElectrodeTechnology,
    NanomaterialKind,
    SensingElement,
    SensorDescriptor,
    TargetKind,
    Transduction,
    describe_platform_sensor,
)


class TestPlatformSelfClassification:
    """Section 3 classifies the paper's own sensor along the five axes."""

    def test_glucose_sensor_descriptor(self, glucose_sensor):
        descriptor = describe_platform_sensor(glucose_sensor)
        assert descriptor.target is TargetKind.METABOLITE
        assert descriptor.sensing_element is SensingElement.ENZYME
        assert descriptor.transduction is Transduction.AMPEROMETRIC
        assert descriptor.nanomaterial is NanomaterialKind.CARBON_NANOTUBE
        assert descriptor.electrode is ElectrodeTechnology.DISPOSABLE_INTEGRATED

    def test_drug_sensor_target(self, cp_sensor):
        descriptor = describe_platform_sensor(cp_sensor)
        assert descriptor.target is TargetKind.DRUG
        assert descriptor.nanomaterial is NanomaterialKind.CARBON_NANOTUBE

    def test_bullets_reproduce_section3_list(self, cp_sensor):
        bullets = describe_platform_sensor(cp_sensor).bullets()
        assert len(bullets) == 5
        assert bullets[0] == "Target: drug"
        assert bullets[1] == "Sensing element: enzyme"
        assert "amperometric" in bullets[2]
        assert "carbon nanotube" in bullets[3]
        assert "disposable, integrated" in bullets[4]

    def test_descriptor_is_plain_dataclass(self):
        descriptor = SensorDescriptor(
            TargetKind.DNA, SensingElement.NUCLEIC_ACID,
            Transduction.OPTICAL, NanomaterialKind.NONE,
            ElectrodeTechnology.DISPOSABLE)
        assert "Target: DNA" in descriptor.bullets()[0]


class TestLiteratureSurvey:
    def test_survey_size(self):
        assert len(LITERATURE_SENSORS) >= 20

    def test_amperometric_most_reported(self):
        """Section 2.3: electrochemical (amperometric) biosensors are
        'by far the most reported devices in literature'."""
        census = transduction_census()
        amperometric = census[Transduction.AMPEROMETRIC]
        for transduction, count in census.items():
            if transduction is not Transduction.AMPEROMETRIC:
                assert amperometric > count

    def test_find_by_target(self):
        dna = find_sensors(target=TargetKind.DNA)
        assert all(s.target is TargetKind.DNA for s in dna)
        assert len(dna) >= 3

    def test_find_by_combined_axes(self):
        cnt_fets = find_sensors(
            transduction=Transduction.FIELD_EFFECT,
            nanomaterial=NanomaterialKind.CARBON_NANOTUBE)
        assert len(cnt_fets) == 1
        assert cnt_fets[0].reference == "[22]"

    def test_guiducci_3d_system_present(self):
        integrated = find_sensors(
            electrode=ElectrodeTechnology.DISPOSABLE_INTEGRATED)
        references = {s.reference for s in integrated}
        assert "[17]" in references

    def test_every_entry_has_reference(self):
        for sensor in LITERATURE_SENSORS:
            assert sensor.reference.startswith("[")

    def test_enzyme_sensors_dominate_metabolites(self):
        metabolite = find_sensors(target=TargetKind.METABOLITE)
        enzymatic = [s for s in metabolite
                     if s.sensing_element is SensingElement.ENZYME]
        assert len(enzymatic) >= len(metabolite) - 1

    def test_empty_filter_returns_everything(self):
        assert len(find_sensors()) == len(LITERATURE_SENSORS)
