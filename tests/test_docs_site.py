"""Docs-site integrity checks that run without the docs toolchain.

CI builds the MkDocs site with ``--strict`` (broken references fail the
build), but that job only runs where mkdocs is installed.  These tests
catch the same failure classes — missing nav pages, dead relative
links, mkdocstrings identifiers that don't import — inside the tier-1
suite, so a refactor that breaks the site fails fast everywhere.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
MKDOCS_YML = REPO / "mkdocs.yml"


def doc_pages() -> list[Path]:
    return sorted(DOCS.rglob("*.md"))


class TestSiteSkeleton:
    def test_config_and_landing_page_exist(self):
        assert MKDOCS_YML.is_file()
        assert (DOCS / "index.md").is_file()

    def test_nav_pages_exist(self):
        """Every .md path referenced from mkdocs.yml must exist (a
        missing nav entry is a --strict build failure)."""
        text = MKDOCS_YML.read_text()
        paths = re.findall(r":\s*([\w./-]+\.md)\b", text)
        assert paths, "mkdocs.yml declares no nav pages"
        for path in paths:
            assert (DOCS / path).is_file(), f"nav page missing: {path}"

    def test_strict_mode_configured(self):
        assert re.search(r"^strict:\s*true", MKDOCS_YML.read_text(),
                         re.MULTILINE)

    def test_mkdocstrings_covers_required_packages(self):
        """The docs satellite's contract: rendered API reference for the
        engine (incl. the monitor), core and instrument layers."""
        identifiers = {
            match
            for page in doc_pages()
            for match in re.findall(r"^::: ([\w.]+)", page.read_text(),
                                    re.MULTILINE)
        }
        for required in ("repro.engine", "repro.engine.monitor",
                         "repro.engine.therapy",
                         "repro.engine.estimation",
                         "repro.engine.core",
                         "repro.engine.core.plan",
                         "repro.engine.core.kernelset",
                         "repro.engine.core.executor",
                         "repro.engine.core.registry",
                         "repro.engine.core.contract",
                         "repro.engine.core.bench",
                         "repro.engine.core.snapshot",
                         "repro.serve", "repro.serve.session",
                         "repro.serve.server", "repro.serve.client",
                         "repro.serve.cli", "repro.pk.models",
                         "repro.pk.population",
                         "repro.therapy.controllers",
                         "repro.scenarios", "repro.scenarios.spec",
                         "repro.scenarios.workloads",
                         "repro.campaigns", "repro.campaigns.spec",
                         "repro.campaigns.store",
                         "repro.campaigns.runner",
                         "repro.campaigns.cli",
                         "repro.campaigns.report",
                         "repro.inference", "repro.inference.kalman",
                         "repro.inference.observation",
                         "repro.inference.fusion",
                         "repro.inference.evaluate",
                         "repro.telemetry", "repro.telemetry.recorder",
                         "repro.telemetry.aggregate",
                         "repro.telemetry.sinks",
                         "repro.telemetry.perfetto",
                         "repro.telemetry.metrics",
                         "repro.telemetry.cli",
                         "repro.core", "repro.instrument"):
            assert required in identifiers, f"no API page renders {required}"


class TestReferences:
    @pytest.mark.parametrize("page", doc_pages(),
                             ids=lambda p: str(p.relative_to(DOCS)))
    def test_mkdocstrings_identifiers_import(self, page):
        for identifier in re.findall(r"^::: ([\w.]+)", page.read_text(),
                                     re.MULTILINE):
            module = importlib.import_module(identifier)
            assert (module.__doc__ or "").strip(), (
                f"{identifier} has no module docstring to render")

    @pytest.mark.parametrize("page", doc_pages(),
                             ids=lambda p: str(p.relative_to(DOCS)))
    def test_relative_links_resolve(self, page):
        for target in re.findall(r"\]\(([^)#]+\.md)(?:#[^)]*)?\)",
                                 page.read_text()):
            if target.startswith(("http://", "https://")):
                continue
            resolved = (page.parent / target).resolve()
            assert resolved.is_file(), (
                f"{page.relative_to(REPO)} links to missing {target}")
